#!/usr/bin/env python3
"""Ring Purge: the one loss CTMSP cannot prevent, and two ways to live with it.

Section 4-5: when a station inserts into the ring, the Active Monitor
purges it -- possibly destroying the frame in flight -- and the stock
adapter gives the host *no indication*.  The paper shipped "code to
recover" (tolerate single-packet gaps at the sink); it also described the
adapter it wished it had, which would interrupt on a purge so the driver
could retransmit "the last packet that is still in the fixed DMA buffer".

This example runs both worlds side by side.

Run:  python examples/ring_purge_recovery.py
"""

from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig, Testbed
from repro.faults import FaultInjector, FaultPlan
from repro.sim.units import MS, SEC

# A station inserts every ~2 seconds: each insertion purges the ring
# (here: single purges, timed to catch CTMSP frames mid-flight).  The
# same declarative plan wounds both worlds identically.
PLAN = FaultPlan()
for i in range(8):
    PLAN.purge((1 + i) * 2 * SEC + 7 * MS)


def run_world(purge_retransmit: bool):
    bed = Testbed(seed=13)
    tx_cfg = HostConfig(name="transmitter")
    tx_cfg.tr.purge_retransmit = purge_retransmit
    tx = bed.add_host(tx_cfg)
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    FaultInjector(bed, PLAN).arm()
    bed.run(18 * SEC)
    return bed, tx, session


print("World 1: the stock adapter (the paper's shipped system)")
print("--------------------------------------------------------")
bed, tx, session = run_world(purge_retransmit=False)
t = session.sink_tracker
lost_on_wire = bed.ring.stats_lost_by_protocol.get("ctmsp", 0)
print(f"frames destroyed by purges : {lost_on_wire}")
print(f"gaps detected at the sink  : {t.gaps} (stream continued through each)")
print(f"stream loss fraction       : {t.loss_fraction() * 100:.2f}% "
      "(the level the paper decided to 'safely ignore')")

print()
print("World 2: the hypothetical purge-interrupt adapter")
print("--------------------------------------------------")
bed, tx, session = run_world(purge_retransmit=True)
t = session.sink_tracker
lost_on_wire = bed.ring.stats_lost_by_protocol.get("ctmsp", 0)
print(f"frames destroyed by purges : {lost_on_wire}")
print(f"driver retransmissions     : {tx.tr_driver.stats_retransmits} "
      "(straight from the fixed DMA buffer, no copy)")
print(f"gaps at the sink           : {t.gaps}")
print(f"duplicates ignored at sink : {t.duplicates}")
assert t.lost_packets == 0
print("\nOK: retransmission closes the gap the stock adapter cannot see.")
