#!/usr/bin/env python3
"""Quickstart: stream continuous media between two machines over the ring.

Builds the smallest complete CTMS system -- a 70-station 4 Mbit Token Ring,
a transmitter and a receiver (each a full IBM RT/PC model with a UNIX
kernel, a Token Ring adapter and a Voice Communications Adapter) -- then
establishes a CTMS point-to-point session exactly the way the paper's
prototype did: a user process wires the two device drivers together with
ioctl calls, and after that the data never touches user space.

Run:  python examples/quickstart.py
"""

from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig, Testbed
from repro.sim.units import MS, SEC

# A laboratory: simulator + ring + Active Monitor (housekeeping traffic).
bed = Testbed(seed=42)

# Two machines on the ring.  Defaults give each the paper's configuration:
# IO Channel Memory fitted, CTMSP priority queueing, ring priority 4.
transmitter = bed.add_host(HostConfig(name="transmitter"))
receiver = bed.add_host(HostConfig(name="receiver"))

# Wire source VCA -> Token Ring -> sink VCA with the paper's new ioctls.
session = CTMSSession(transmitter.kernel, receiver.kernel)
session.establish()

# Let it stream for five simulated seconds (one 2000-byte CTMSP packet
# every 12 ms, approximately 166 KB/s).
bed.run(5 * SEC)

stats = session.stats
tracker = session.sink_tracker
print("CTMS quickstart")
print("---------------")
print(f"packets delivered     : {stats.delivered}")
print(f"throughput            : {stats.throughput_bytes_per_sec() / 1000:.1f} KB/s")
print(f"lost / dup / reordered: {tracker.lost_packets} / "
      f"{tracker.duplicates} / {tracker.reordered}")
print(f"latency (min/max)     : {stats.min_latency_ns() / MS:.2f} / "
      f"{stats.max_latency_ns() / MS:.2f} ms")
gaps = stats.inter_arrival_ns()
print(f"inter-arrival mean    : {sum(gaps) / len(gaps) / MS:.3f} ms "
      "(the VCA's 12 ms period, reproduced at the sink)")

assert tracker.lost_packets == 0, "quiet ring must be lossless"
print("\nOK: continuous-rate delivery with zero loss.")
