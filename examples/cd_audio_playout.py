#!/usr/bin/env python3
"""CD-quality audio with a playout buffer -- the paper's motivating medium.

Streams 176.4 KB/s Compact Disc audio (44.1 kHz x 16 bit x 2 channels,
packetized per the VCA's 12 ms interrupt) across the ring, then plays the
delivery trace out of a playout buffer sized by the Section 6 rule and
checks for "discernible glitches".

Also demonstrates the sizing rule itself: how much buffer a given worst-case
delivery stall demands at different media rates.

Run:  python examples/cd_audio_playout.py
"""

from repro.core.buffering import PlayoutBuffer, required_buffer_bytes
from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig, Testbed
from repro.sim.units import MS, SEC
from repro.workloads.media import CD_AUDIO, COMPRESSED_VIDEO, TELEPHONE_AUDIO

# ---------------------------------------------------------------------------
# 1. The sizing rule (Section 6): buffer = rate x worst-case stall.
# ---------------------------------------------------------------------------
print("Playout buffer sizing (Section 6 rule)")
print("--------------------------------------")
for media in (TELEPHONE_AUDIO, COMPRESSED_VIDEO, CD_AUDIO):
    for stall_ms in (40, 130):
        need = required_buffer_bytes(
            media.bytes_per_sec, stall_ms * MS, packet_bytes=media.packet_bytes
        )
        print(f"{media.name:>16} @ {media.bytes_per_sec/1000:6.1f} KB/s, "
              f"{stall_ms:3d} ms stall -> {need:6d} bytes")
print()

# ---------------------------------------------------------------------------
# 2. Stream CD audio and play it out.
# ---------------------------------------------------------------------------
bed = Testbed(seed=7)
tx = bed.add_host(HostConfig(name="transmitter", vca=CD_AUDIO.vca_config()))
rx = bed.add_host(HostConfig(name="receiver"))
session = CTMSSession(tx.kernel, rx.kernel)
session.establish()
bed.run(20 * SEC)

stats = session.stats
capacity = required_buffer_bytes(
    CD_AUDIO.bytes_per_sec, 60 * MS, packet_bytes=CD_AUDIO.packet_bytes
)
player = PlayoutBuffer(
    capacity_bytes=capacity,
    rate_bytes_per_sec=CD_AUDIO.playout_rate(),
    packet_bytes=CD_AUDIO.bytes_per_period,  # headers are not played out
    prefill_bytes=capacity - 2 * CD_AUDIO.packet_bytes,
)
player.run(stats.arrival_times)
player.finish(stats.arrival_times[-1])

print("CD audio stream")
print("---------------")
print(f"packets delivered : {stats.delivered}")
print(f"achieved rate     : {stats.throughput_bytes_per_sec() / 1000:.1f} KB/s "
      f"(CD audio needs {CD_AUDIO.bytes_per_sec / 1000:.1f})")
print(f"playout buffer    : {capacity} bytes (under the paper's 25 KB)")
print(f"peak occupancy    : {player.peak_occupancy} bytes")
print(f"glitches          : {player.glitches}")
assert player.glitches == 0
print("\nOK: no discernible glitches.")
