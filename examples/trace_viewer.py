#!/usr/bin/env python3
"""Print the span waterfall of the worst-latency packet.

Runs a traced CTMSP stream (the PR 3 observability layer riding in the
model's own probe/listener hook points), finds the packet whose
first-span-start to last-span-end stretch is widest, and renders its
journey layer by layer -- the textual cousin of opening the exported
Chrome trace in Perfetto and clicking the longest slice.

Run:  python examples/trace_viewer.py
"""

from pathlib import Path

from repro.experiments.tracing import run_traced
from repro.obs.export import write_chrome_trace
from repro.sim.units import SEC

run = run_traced("ctmsp", seed=7, duration_ns=2 * SEC)
rec = run.recorder

print(
    f"traced {run.session.sink_tracker.delivered} packets over "
    f"{run.duration_ns / SEC:.1f} s: {len(rec.spans)} spans in "
    f"{len(rec.categories())} categories"
)

(stream_id, packet_no), spans = rec.worst_packet()
t0 = min(s.start_ns for s in spans)
t1 = max(s.end_ns for s in spans)
print()
print(
    f"worst packet: stream {stream_id} packet #{packet_no} "
    f"({(t1 - t0) / 1000:.1f} us end to end)"
)
print()

WIDTH = 56
scale = WIDTH / max(1, t1 - t0)
print(f"{'layer':<24} {'start(us)':>10} {'dur(us)':>9}  waterfall")
for span in spans:
    left = round((span.start_ns - t0) * scale)
    bar = max(1, round(span.duration_ns * scale))
    lane = " " * left + "#" * min(bar, WIDTH - left)
    print(
        f"{span.track:<24} {(span.start_ns - t0) / 1000:>10.1f} "
        f"{span.duration_ns / 1000:>9.1f}  {lane}"
    )

Path("results").mkdir(exist_ok=True)
out = "results/trace_viewer.json"
write_chrome_trace(out, rec)
print()
print(f"full trace written to {out} -- open with https://ui.perfetto.dev")
