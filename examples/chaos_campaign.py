#!/usr/bin/env python3
"""Chaos campaign: the paper's design decisions, stress-tested.

The paper argued (Sections 2-5) that 150 KB/s of continuous media survives
a busy Token Ring only if you remove copies, queue media ahead of datagram
traffic, and use the ring's media priority.  A chaos campaign is the
adversarial version of that argument: generate a seeded random schedule of
faults -- Ring Purge bursts, soft-error storms, hostile high-priority
traffic, adapter stalls, CPU steal -- and apply the *identical* plan to

* ``stock``: the Section 1 starting point (no fixed DMA buffers in IO
  Channel Memory, no priority queueing, ring priority 0), and
* ``ctmsp``: the paper's shipped configuration.

A StreamInvariantMonitor watches each run: loss stays under 1%, no
delivery gap beyond 150 ms, the full 150 KB/s sustained.  Same seed,
same plan, same weather -- only the engineering differs.

With the observability layer (PR 3), the stock run carries a flight
recorder: when its first invariant breaks, the recorder freezes the
telemetry of that instant, so the verdict below comes with the black-box
record of the failure.

Run:  python examples/chaos_campaign.py
"""

from repro.experiments.chaos import build_plan, run_one, run_smoke
from repro.obs.flight import FlightRecorder
from repro.sim.units import SEC

report = run_smoke(seed=1)
print(report.render())
print()

stock = report.runs_for("stock")[0]
ctmsp = report.runs_for("ctmsp")[0]

print("The identical fault plan both configurations faced:")
print(report.plans[report.intensities[0]].describe())
print()

assert not stock.survived(), "stock should buckle under this weather"
assert ctmsp.survived(), "CTMSP should hold every invariant"
assert ctmsp.throughput_bytes_per_sec >= 150_000.0

print("OK: the stock path broke invariants "
      f"({', '.join(stock.violated)}); CTMSP sustained "
      f"{ctmsp.throughput_bytes_per_sec / 1000:.1f} KB/s unharmed.")

print()
print("Replaying the stock run with a flight recorder aboard...")
duration = 4 * SEC
flight = FlightRecorder()
rerun = run_one(
    "stock",
    build_plan(1, 2.0, duration),
    1,
    duration,
    intensity=2.0,
    flight_recorder=flight,
)
assert rerun.violated == stock.violated, "observed rerun must match"
print(flight.render())
