#!/usr/bin/env python3
"""Reproduce the paper's measurement campaign on your own terminal.

Runs Test Case A (private quiet ring) and Test Case B (loaded public ring)
with the PC/AT parallel-port timestamper cabled to the paper's four
measurement points, and renders the seven histograms of Section 5.3 --
including Figure 5-2's bimodal transmit-path histogram and Figure 5-3/5-4's
transmitter-to-receiver distributions.

The observability layer (PR 3) rides along: a DataPathTracer fills a
per-layer metrics registry during Test Case A, and a flight recorder
snapshots the end-of-run telemetry so the campaign's verdicts come with
the distributions behind them.

Run:  python examples/measurement_campaign.py          (about a minute)
"""

from repro.experiments.reporting import (
    figure_5_2_report,
    figure_5_3_report,
    histogram_summary_table,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_a, test_case_b
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import DataPathTracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecorder
from repro.sim.units import SEC

recorder = SpanRecorder()
registry = MetricsRegistry()
tracer = DataPathTracer(recorder, registry)

print("Running Test Case A (private network, no load, stand-alone hosts)...")
result_a = run_scenario(test_case_a(duration_ns=30 * SEC, seed=1), tracer=tracer)
print("Running Test Case B (public network, normal load, multiprocessing)...")
result_b = run_scenario(test_case_b(duration_ns=30 * SEC, seed=1))

print()
print(histogram_summary_table(result_a.histograms, "Test Case A"))
print()
print(histogram_summary_table(result_b.histograms, "Test Case B"))
print()
print(figure_5_3_report(result_a.histograms[7]))
print()
print(figure_5_2_report(result_b.histograms[6]))
print()
print("Delivery check:")
for name, result in (("A", result_a), ("B", result_b)):
    t = result.tracker
    print(f"  Test Case {name}: {result.stream.delivered} packets, "
          f"{t.lost_packets} lost, {t.duplicates} duplicates")

print()
print("Per-layer telemetry for Test Case A (the observability registry):")
print(registry.render_tables())

# An end-of-run flight snapshot: the same record a chaos campaign would
# freeze at the first invariant violation, taken here at campaign end.
flight = FlightRecorder(recorder=recorder, metrics=registry, tail=8)
flight.snapshot(
    "campaign-complete",
    result_a.testbed.sim.now,
    {"delivered": result_a.stream.delivered},
)
print()
print("Flight-recorder output:")
print(flight.render())
