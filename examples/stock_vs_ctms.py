#!/usr/bin/env python3
"""The paper's core comparison: stock UNIX relay vs the CTMS direct path.

Section 1's experiment, replayed: push 16 KB/s and then 150 KB/s through
the unmodified UNIX model (user process reading the VCA device and writing
a UDP socket), then push the 150 KB/s-class stream through the CTMS
prototype on a *loaded* public ring -- and count the copies each path paid
per packet (Section 2's arithmetic).

Run:  python examples/stock_vs_ctms.py
"""

from repro.experiments.baseline import run_stock_relay
from repro.experiments.copies import measure_all
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_b
from repro.sim.units import SEC

print("1. Stock UNIX relay (Figure 2-1: device -> user process -> device)")
print("-------------------------------------------------------------------")
for rate in (16_000, 150_000):
    result = run_stock_relay(rate, duration_ns=15 * SEC, seed=11)
    verdict = "works" if result.works() else "FAILS COMPLETELY"
    print(f"{rate // 1000:>4} KB/s: delivered {result.delivered_fraction * 100:5.1f}%, "
          f"{result.glitch_rate_per_sec():5.2f} glitches/s  -> {verdict}")

print()
print("2. CTMS direct driver-to-driver path, loaded public ring")
print("---------------------------------------------------------")
ctms = run_scenario(test_case_b(duration_ns=15 * SEC, seed=11))
tracker = ctms.tracker
print(f" 166 KB/s: delivered {ctms.stream.delivered} packets, "
      f"lost {tracker.lost_packets}, "
      f"achieved {ctms.stream.throughput_bytes_per_sec() / 1000:.1f} KB/s -> works")

print()
print("3. Why: data copies per packet (Section 2)")
print("-------------------------------------------")
for measured in measure_all(duration_ns=6 * SEC, seed=11):
    print(f"{measured.path.value:>16}: "
          f"{measured.cpu_per_packet:.1f} CPU + {measured.dma_per_packet:.1f} DMA copies "
          f"(model: {measured.model.cpu_copies} + {measured.model.dma_copies})")

print()
print("The stock path pays four CPU copies per packet and rides the")
print("scheduler; the CTMS path pays two (one with pointer passing) and")
print("never leaves interrupt context.  That is the paper, in one script.")
