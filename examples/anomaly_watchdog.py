#!/usr/bin/env python3
"""The measurement campaign's central control point, watching live.

Section 5.2.1: "If a packet was lost, had an extremely long inter-departure
or inter-arrival time, or there was an incorrect ordering of packets on the
transmitter and/or receiver, all machines were halted and a snapshot of the
data was taken.  We then examined the snapshots to decide what error had
occurred."

This example streams CTMSP under the watchdog, injects a Ring Purge burst
mid-run (a station "inserting into the ring"), and prints the snapshot the
controller froze at the moment of the anomaly -- the paper's debugging
workflow, end to end.

Run:  python examples/anomaly_watchdog.py
"""

from repro.core.session import CTMSSession
from repro.experiments.controller import CampaignController
from repro.experiments.testbed import HostConfig, Testbed
from repro.faults import FaultInjector, FaultPlan
from repro.sim.units import MS, SEC

bed = Testbed(seed=31)
tx = bed.add_host(HostConfig(name="transmitter"))
rx = bed.add_host(HostConfig(name="receiver"))
session = CTMSSession(tx.kernel, rx.kernel)
session.establish()

# The station insertion, declared up front: a burst of back-to-back
# purges lands 7 ms into the third second.
FaultInjector(
    bed, FaultPlan().purge_burst(2 * SEC + 7 * MS, count=10)
).arm()

controller = CampaignController(
    bed, tx, rx, session,
    max_interdeparture=40 * MS,   # the paper's worst-case bound
    max_interarrival=40 * MS,
    halt_on_anomaly=True,
)

print("Streaming under the watchdog...")
bed.run(2 * SEC)
assert controller.snapshot is None
print(f"  {session.stats.delivered} packets so far, no anomalies.")

print("\nA station inserts into the ring (burst of back-to-back purges)...")
bed.run(3 * SEC)

snap = controller.snapshot
assert snap is not None, "the watchdog must have tripped"
print()
print(snap.render())
print()
print("All machines halted; deliveries after the halt:",
      session.stats.delivered, "(frozen)")
