#!/usr/bin/env python3
"""A continuous-media file server: disk to network with zero CPU copies.

The paper's deployment story (Section 1: "The source machine must read a
disc and redirect the data flow onto the local area network") assembled
from the reproduction's parts:

* media is read ahead from a late-80s disk model by DMA straight into IO
  Channel Memory staging buffers (never stealing CPU memory cycles);
* a 12 ms pacing timer packetizes it as CTMSP;
* the Token Ring driver transmits by *pointer exchange* -- the Section 2
  extension -- so the media bytes are never touched by the CPU at all;
* stream reads carry disk-queue priority, so a competing batch workload on
  the same spindle cannot starve the stream (watch what happens to the
  shallow-readahead server when the hammering starts).

Run:  python examples/media_server.py
"""

from repro.drivers.disk_source import DiskSourceConfig, DiskStreamSource
from repro.experiments.testbed import HostConfig, Testbed
from repro.hardware.disk import DiskAdapter
from repro.hardware.memory import Region
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


def build(readahead_low, readahead_high, seed=30):
    bed = Testbed(seed=seed)
    server = bed.add_host(HostConfig(name="server"))
    client = bed.add_host(HostConfig(name="client"))
    disk = DiskAdapter(server.machine)
    server.machine.add_adapter("hd0", disk)
    source = DiskStreamSource(
        server.kernel, disk, server.tr_driver,
        DiskSourceConfig(
            readahead_low_water=readahead_low,
            readahead_high_water=readahead_high,
        ),
    )

    def sink_setup(proc):
        yield from proc.ioctl(
            "vca0", "CTMS_ATTACH_SINK", {"tr_driver": client.tr_driver}
        )

    def server_setup(proc):
        yield from source.bind("client", client.vca_driver.device_number)
        source.start()

    UserProcess(client.kernel, "sink-setup").start(sink_setup)
    UserProcess(server.kernel, "server-setup").start(server_setup)

    # A competing batch workload on the same disk (closed loop).
    rng = server.machine.rng.get("batch")

    def batch():
        def next_read():
            bed.sim.schedule(2 * MS, batch)
            yield from iter(())

        disk.read(rng.randrange(0, 10**8), 24_576, Region.SYSTEM, next_read)

    bed.sim.schedule(2 * SEC, batch)
    return bed, server, client, source


print("Disk-backed CTMS media server, 166 KB/s stream + batch disk load")
print("-----------------------------------------------------------------")
for low, high, label in (
    (4_000, 8_000, "shallow read-ahead (4/8 KB)"),
    (48_000, 96_000, "deep read-ahead (48/96 KB)"),
):
    bed, server, client, source = build(low, high)
    bed.run(8 * SEC)
    stats = client.vca_driver.stream_stats
    stalls = [g for g in stats.inter_arrival_ns() if g > 20 * MS]
    ledger = server.kernel.ledger
    bulk_cpu = sum(
        rec.copies for rec in ledger.cpu.values()
        if rec.copies and rec.bytes / rec.copies >= 1000
    )
    print(f"{label}:")
    print(f"  packets delivered : {stats.delivered}")
    print(f"  under-runs        : {source.stats_underruns}")
    print(f"  delivery stalls   : {len(stalls)} (> 20 ms)")
    print(f"  bulk CPU copies   : {bulk_cpu} (pointer passing: the CPU never"
          " touches the media)")
print()
print("Deep read-ahead plus stream-priority disk scheduling rides out the")
print("batch load; shallow read-ahead audibly glitches.")
