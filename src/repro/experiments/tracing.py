"""Traced end-to-end runs: the observability layer's standard experiment.

One :func:`run_traced` call assembles the two-host testbed of a chaos
profile (``stock`` or ``ctmsp``), attaches the full observability stack --
span tracer on every data-path layer, metrics registry, playout model on
the sink -- runs a seeded stream, and returns everything the exporters
need.  :func:`trace_stock_vs_ctmsp` runs both profiles against the same
seed so one Chrome-trace file shows the two configurations side by side,
the Section 5.3 comparison as a timeline instead of a table.

Because the instrumentation rides in hook points only (probes, listeners,
monitors, the delivery handle), a traced run's event calendar is identical
to an untraced one -- the overhead-guard test pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.presentation import PresentationMachine
from repro.core.session import CTMSSession
from repro.experiments.chaos import RX_HOST, TX_HOST, profile_host_config
from repro.experiments.testbed import Host, Testbed
from repro.hardware import calibration
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import DataPathTracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecorder
from repro.sim.units import MS, SEC

#: Playout model sizing: prefill of 4 packets, capacity of 16, against the
#: stream's nominal byte rate.
PLAYOUT_RATE_BYTES_PER_SEC = calibration.CTMSP_STREAM_RATE_BYTES_PER_SEC
PLAYOUT_PREFILL_BYTES = 4 * calibration.CTMSP_PACKET_BYTES
PLAYOUT_CAPACITY_BYTES = 16 * calibration.CTMSP_PACKET_BYTES
PLAYOUT_SKIP_AHEAD_NS = 200 * MS


@dataclass
class TracedRun:
    """One profile's run with the observability stack attached."""

    profile: str
    seed: int
    duration_ns: int
    recorder: SpanRecorder
    metrics: MetricsRegistry
    tracer: DataPathTracer
    flight: FlightRecorder
    testbed: Testbed
    transmitter: Host
    receiver: Host
    session: CTMSSession
    presentation: PresentationMachine
    profile_report: Optional[str] = field(default=None, repr=False)


def run_traced(
    profile: str = "ctmsp",
    seed: int = 7,
    duration_ns: int = 2 * SEC,
    sim_profile: bool = False,
) -> TracedRun:
    """Run one profile with tracing, metrics and a flight recorder on."""
    bed = Testbed(seed=seed, profile=sim_profile)
    recorder = SpanRecorder(bed.sim)
    metrics = MetricsRegistry()
    tracer = DataPathTracer(recorder, metrics)
    flight = FlightRecorder(recorder=recorder, metrics=metrics)
    bed.flight_recorder = flight

    tx = bed.add_host(profile_host_config(profile, TX_HOST))
    rx = bed.add_host(profile_host_config(profile, RX_HOST))

    tracer.attach_transmitter(tx)
    tracer.attach_ring(bed.ring)
    # Receiver attachment wraps the delivery handle; the playout model then
    # wraps on top, so its buffer fill happens before the tracer's playout
    # projection reads the level.  Both must precede session establishment.
    tracer.attach_receiver(rx)
    presentation = PresentationMachine(
        bed.sim,
        PLAYOUT_RATE_BYTES_PER_SEC,
        prefill_bytes=PLAYOUT_PREFILL_BYTES,
        capacity_bytes=PLAYOUT_CAPACITY_BYTES,
        skip_ahead_after_ns=PLAYOUT_SKIP_AHEAD_NS,
    )
    presentation.attach_to_vca(rx.vca_driver)
    tracer.attach_playout(presentation, rx.name)

    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(duration_ns)

    tracer.finalize(duration_ns, session=session, testbed=bed)
    report = bed.sim.profile_report() if sim_profile else None
    return TracedRun(
        profile=profile,
        seed=seed,
        duration_ns=duration_ns,
        recorder=recorder,
        metrics=metrics,
        tracer=tracer,
        flight=flight,
        testbed=bed,
        transmitter=tx,
        receiver=rx,
        session=session,
        presentation=presentation,
        profile_report=report,
    )


def trace_stock_vs_ctmsp(
    seed: int = 7, duration_ns: int = 2 * SEC
) -> list[TracedRun]:
    """Both profiles against the same seed, for one side-by-side trace."""
    return [
        run_traced(profile, seed=seed, duration_ns=duration_ns)
        for profile in ("stock", "ctmsp")
    ]
