"""Scenario runner: reproduce the Section 5.3 measurement campaign.

Builds the testbed for a :class:`~repro.experiments.scenarios.Scenario`,
cables the PC/AT timestamper to the paper's four measurement points, runs,
and computes the seven histograms:

1. inter-occurrence of the VCA's Interrupt Request Line pulses;
2. inter-occurrence of VCA interrupt-handler entries;
3. inter-occurrence of the pre-transmit point (packet copied into the fixed
   DMA buffer, transmit command about to be issued);
4. inter-occurrence of the receive-side CTMSP classification point;
5. per-packet differences between like occurrences of (1) and (2);
6. per-packet differences between (2) and (3)  -- Figure 5-2 for Test B;
7. per-packet differences between (3) and (4)  -- Figures 5-3 and 5-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ctmsp import CTMSPPacket
from repro.core.session import CTMSSession
from repro.experiments.scenarios import Scenario
from repro.experiments.testbed import Host, HostConfig, Testbed
from repro.hardware.parallel_port import PORT_WRITE_CODE_COST, ParallelPort
from repro.measure.histogram import Histogram
from repro.measure.pcat import PcatTimestamper, match_by_packet_number
from repro.measure.tap import TapMonitor
from repro.protocols.stack import NetStack
from repro.ring.frames import Frame
from repro.sim.units import US
from repro.workloads.background import BackgroundTraffic

#: PC/AT channel assignments (the paper's cabling).
CH_VCA_IRQ = 0
CH_HANDLER_ENTRY = 1
CH_PRE_TRANSMIT = 2
CH_RX_CLASSIFIED = 3

HISTOGRAM_NAMES = {
    1: "h1: VCA IRQ inter-occurrence",
    2: "h2: VCA handler entry inter-occurrence",
    3: "h3: pre-transmit inter-occurrence",
    4: "h4: rx-classified inter-occurrence",
    5: "h5: IRQ to handler entry (per packet)",
    6: "h6: handler entry to pre-transmit (per packet)",
    7: "h7: pre-transmit to rx-classified (per packet)",
}


@dataclass
class RunResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    histograms: dict[int, Histogram]
    testbed: Testbed
    transmitter: Host
    receiver: Host
    session: CTMSSession
    tap: Optional[TapMonitor] = None
    background: Optional[BackgroundTraffic] = None

    @property
    def stream(self):
        return self.session.stats

    @property
    def tracker(self):
        return self.session.sink_tracker


def build_scenario(scenario: Scenario, with_tap: bool = False):
    """Assemble (but do not run) a scenario's testbed. Returns pieces."""
    bed = Testbed(
        seed=scenario.seed,
        mac_utilization=scenario.mac_utilization,
        insertions_per_day=scenario.insertions_per_day,
        soft_errors_per_hour=scenario.soft_errors_per_hour,
    )
    tx_tr, tx_vca = scenario.transmitter_config()
    rx_tr, rx_vca = scenario.receiver_config()
    tx = bed.add_host(
        HostConfig(
            name="transmitter",
            multiprogramming=scenario.multiprogramming,
            tr=tx_tr,
            vca=tx_vca,
        )
    )
    rx = bed.add_host(
        HostConfig(
            name="receiver",
            multiprogramming=scenario.multiprogramming,
            tr=rx_tr,
            vca=rx_vca,
        )
    )
    background = None
    if scenario.background_load > 0:
        background = BackgroundTraffic(
            bed, [tx, rx], load=scenario.background_load
        )
    tap = TapMonitor(bed.sim, bed.ring) if with_tap else None
    return bed, tx, rx, background, tap


def run_scenario(
    scenario: Scenario, with_tap: bool = False, tracer=None
) -> RunResult:
    """Run one scenario and compute the seven histograms.

    ``tracer`` (a :class:`repro.obs.instrument.DataPathTracer`) attaches
    span instrumentation to the assembled hosts and the ring.  It rides in
    probe/listener hook points only, so traced runs replay the identical
    event calendar (the overhead-guard test holds this).
    """
    bed, tx, rx, background, tap = build_scenario(scenario, with_tap=with_tap)
    pcat = PcatTimestamper(bed.sim, bed.rng)
    pcat.start()
    _wire_measurement_points(pcat, tx, rx)
    if tracer is not None:
        if tracer.recorder.sim is None:
            tracer.recorder.sim = bed.sim
        # Receiver attachment wraps the delivery handle, which must be in
        # place before session establishment registers it with the driver.
        tracer.attach_transmitter(tx)
        tracer.attach_ring(bed.ring)
        tracer.attach_receiver(rx)

    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    if background is not None:
        background.start()
    bed.run(scenario.duration_ns)

    if tracer is not None:
        tracer.finalize(scenario.duration_ns, session=session, testbed=bed)
    histograms = compute_histograms(pcat)
    return RunResult(
        scenario=scenario,
        histograms=histograms,
        testbed=bed,
        transmitter=tx,
        receiver=rx,
        session=session,
        tap=tap,
        background=background,
    )


def _wire_measurement_points(
    pcat: PcatTimestamper, tx: Host, rx: Host
) -> None:
    """Cable the four points of Section 5.2 to the PC/AT channels."""
    sim = tx.machine.sim

    # Point 1: the VCA IRQ line, probed electrically (no CPU cost, the pulse
    # value is a hardware counter's low 7 bits).
    port_irq = ParallelPort(sim, "tx-irq-line")
    pcat.connect(CH_VCA_IRQ, port_irq)
    pulse_counter = {"n": 0}

    def on_irq_pulse(_t: int) -> None:
        port_irq.emit(pulse_counter["n"] & 0x7F)
        pulse_counter["n"] += 1

    tx.vca_adapter.irq_listeners.append(on_irq_pulse)

    # Point 2: VCA handler entry -- in-line code in the handler.
    port_p2 = ParallelPort(sim, "tx-p2")
    pcat.connect(CH_HANDLER_ENTRY, port_p2)

    def probe_p2(packet_no: int) -> int:
        port_p2.emit(packet_no & 0x7F)
        return PORT_WRITE_CODE_COST

    tx.vca_driver.add_probe("p2", probe_p2)

    # Point 3: just before the transmit command, CTMSP packets only
    # ("the shortest possible test to determine if the packet was an CTMSP
    # packet").
    port_p3 = ParallelPort(sim, "tx-p3")
    pcat.connect(CH_PRE_TRANSMIT, port_p3)

    def probe_p3(frame: Frame) -> int:
        if isinstance(frame.payload, CTMSPPacket):
            port_p3.emit(frame.payload.wire_packet_number)
            return PORT_WRITE_CODE_COST
        return 2 * US  # the test itself, for non-CTMSP packets

    tx.tr_driver.add_probe("p3", probe_p3)

    # Point 4: receive-side classification, on the receiver machine.
    port_p4 = ParallelPort(sim, "rx-p4")
    pcat.connect(CH_RX_CLASSIFIED, port_p4)

    def probe_p4(frame: Frame) -> int:
        if isinstance(frame.payload, CTMSPPacket):
            port_p4.emit(frame.payload.wire_packet_number)
            return PORT_WRITE_CODE_COST
        return 2 * US

    rx.tr_driver.add_probe("p4", probe_p4)


def compute_histograms(pcat: PcatTimestamper) -> dict[int, Histogram]:
    """The paper's seven histograms from the reconstructed channel data."""
    channels = pcat.reconstruct()
    irq = channels[CH_VCA_IRQ]
    entry = channels[CH_HANDLER_ENTRY]
    pre_tx = channels[CH_PRE_TRANSMIT]
    classified = channels[CH_RX_CLASSIFIED]

    def inter(events: list[tuple[int, int]]) -> list[int]:
        times = [t for t, _v in events]
        return [b - a for a, b in zip(times, times[1:])]

    histograms = {
        1: Histogram(inter(irq), name=HISTOGRAM_NAMES[1]),
        2: Histogram(inter(entry), name=HISTOGRAM_NAMES[2]),
        3: Histogram(inter(pre_tx), name=HISTOGRAM_NAMES[3]),
        4: Histogram(inter(classified), name=HISTOGRAM_NAMES[4]),
        5: Histogram(
            [d for d, _n in match_by_packet_number(irq, entry)],
            name=HISTOGRAM_NAMES[5],
        ),
        6: Histogram(
            [d for d, _n in match_by_packet_number(entry, pre_tx)],
            name=HISTOGRAM_NAMES[6],
        ),
        7: Histogram(
            [d for d, _n in match_by_packet_number(pre_tx, classified)],
            name=HISTOGRAM_NAMES[7],
        ),
    }
    return histograms
