"""Supervised parallel campaign fleet: shard, retry, journal, merge.

Chaos campaigns, ablation matrices, and model-validation sweeps are
embarrassingly parallel across ``(seed, profile, intensity)`` points, but a
naive pool dies wholesale on the first worker exception and loses hours of
completed results to one Ctrl-C.  This module is the robust runner the
robustness stack deserves:

* **sharding** -- a :class:`FleetSpec` enumerates every point of a campaign
  in a deterministic order; workers execute points in whatever order the
  scheduler dictates;
* **supervision** -- worker processes are watched with per-point deadlines;
  a crashed worker (SIGKILL, OOM) or a hung worker (killed by the
  supervisor at the deadline) costs one attempt, never the campaign;
* **bounded-backoff retry** -- failed or hung points are re-dispatched with
  the doubling-to-a-cap backoff shape of
  :meth:`repro.core.session.CTMSSession.establish`;
* **crash-safe journal** -- every completed point is appended (flushed and
  fsynced) to an on-disk JSONL journal keyed by ``(plan_hash, seed)``;
  ``resume=True`` replays nothing that already finished, so a killed
  campaign continues where it stopped;
* **graceful degradation** -- a point that exhausts its retries becomes an
  explicit ``FAILED POINTS`` section with a replayable command per point;
  the campaign still completes and still renders;
* **deterministic merge** -- the report is assembled from the spec's point
  order and the journalled result dicts, never from completion order, so
  ``jobs=1``, ``jobs=4``, and a killed-then-resumed run render
  byte-identical reports (a golden test pins this).

This is deliberately the *one* module in ``repro`` that may touch process
machinery and the host clock -- ctms-lint rule CTMS303 confines
``multiprocessing``/``subprocess``/``threading``/``signal`` imports and
wall-clock reads to this file.  Everything below the fleet remains on the
simulated clock.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.experiments.reporting import failed_points_section, format_table
from repro.faults.workers import WorkerFaultError, WorkerFaultSpec
from repro.obs import fleetstats
from repro.obs import telemetry as obs_telemetry
from repro.obs.metrics import MetricsRegistry
from repro.sim.units import SEC, from_sec, to_ms

#: Journal schema version (bump on incompatible record changes).
JOURNAL_VERSION = 1

#: Campaign kinds the fleet knows how to run.
KINDS = ("chaos", "ablation", "validation", "failover")


# ----------------------------------------------------------------------
# points and specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetPoint:
    """One unit of campaign work.

    ``key`` -- ``"<task_hash>:<seed>"`` -- is the journal key: stable
    across processes, runs, and resumes.  For chaos points ``task_hash``
    is the fault plan's content hash plus the profile, so a result is
    reused exactly when the same weather would hit the same configuration
    with the same seed.  ``params`` must stay JSON- and pickle-safe; the
    worker rebuilds everything heavy (plans, testbeds) from them.
    """

    kind: str
    key: str
    task_hash: str
    seed: int
    params: dict[str, Any]
    label: str
    replay: str
    #: Profile name for worker-fault matching ("" when not applicable).
    profile: str = ""


@dataclass
class FleetSpec:
    """A full campaign: ordered points plus render metadata."""

    kind: str
    points: list[FleetPoint]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fleet kind {self.kind!r}; known: {KINDS}")
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate point keys in fleet spec")

    def campaign_id(self) -> str:
        """Content hash naming this campaign's journal directory."""
        h = hashlib.sha256(self.kind.encode())
        for point in self.points:
            h.update(point.key.encode())
            h.update(b"\0")
        return h.hexdigest()[:12]


def chaos_fleet_spec(
    seeds: list[int] | range,
    duration_ns: int = 8 * SEC,
    intensities: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> FleetSpec:
    """Chaos survival over a seed population instead of one anecdote."""
    from repro.experiments.chaos import PROFILES, build_plan

    seeds = list(seeds)
    if not seeds:
        raise ValueError("chaos fleet needs at least one seed")
    points: list[FleetPoint] = []
    for intensity in intensities:
        for seed in seeds:
            plan_hash = build_plan(seed, intensity, duration_ns).stable_hash()
            for profile in PROFILES:
                task_hash = f"{plan_hash}.{profile}"
                points.append(
                    FleetPoint(
                        kind="chaos",
                        key=f"{task_hash}:{seed}",
                        task_hash=task_hash,
                        seed=seed,
                        profile=profile,
                        params={
                            "seed": seed,
                            "profile": profile,
                            "intensity": intensity,
                            "duration_ns": duration_ns,
                        },
                        label=(
                            f"chaos plan {plan_hash} seed {seed} "
                            f"profile {profile} intensity {intensity:.2f}"
                        ),
                        replay=(
                            f"python -m repro chaos --seed {seed} "
                            f"--seconds {max(1, duration_ns // SEC)} "
                            f"--intensities {intensity:g}"
                        ),
                    )
                )
    return FleetSpec(
        kind="chaos",
        points=points,
        meta={
            "seeds": seeds,
            "duration_ns": duration_ns,
            "intensities": list(intensities),
        },
    )


def ablation_fleet_spec(
    duration_ns: int,
    seeds: list[int] | range = (1,),
    variants: Optional[list[str]] = None,
) -> FleetSpec:
    """The Section 5.3 one-switch-at-a-time matrix, sharded per variant."""
    from repro.experiments.ablations import matrix_variants

    seeds = list(seeds)
    names = variants or list(matrix_variants(duration_ns, seeds[0]))
    points: list[FleetPoint] = []
    for name in names:
        task_hash = hashlib.sha256(
            f"ablation\0{name}\0{duration_ns}".encode()
        ).hexdigest()[:12]
        for seed in seeds:
            points.append(
                FleetPoint(
                    kind="ablation",
                    key=f"{task_hash}:{seed}",
                    task_hash=task_hash,
                    seed=seed,
                    params={
                        "variant": name,
                        "duration_ns": duration_ns,
                        "seed": seed,
                    },
                    label=f"ablation {name!r} seed {seed}",
                    replay=(
                        f"python -m repro ablate "
                        f"--seconds {max(1, duration_ns // SEC)} --seed {seed}"
                    ),
                )
            )
    return FleetSpec(
        kind="ablation",
        points=points,
        meta={"duration_ns": duration_ns, "seeds": seeds, "variants": names},
    )


def validation_fleet_spec(
    seeds: list[int] | range, n_frames: int = 60
) -> FleetSpec:
    """Lazy-vs-detailed ring agreement over a seed population."""
    seeds = list(seeds)
    task_hash = hashlib.sha256(
        f"validation\0{n_frames}".encode()
    ).hexdigest()[:12]
    points = [
        FleetPoint(
            kind="validation",
            key=f"{task_hash}:{seed}",
            task_hash=task_hash,
            seed=seed,
            params={"seed": seed, "n_frames": n_frames},
            label=f"validation seed {seed} ({n_frames} frames)",
            replay=(
                "python -c \"from repro.experiments.validation import "
                f"validate; print(validate({seed}, {n_frames}))\""
            ),
        )
        for seed in seeds
    ]
    return FleetSpec(
        kind="validation",
        points=points,
        meta={"seeds": seeds, "n_frames": n_frames},
    )


def failover_fleet_spec(
    seeds: list[int] | range,
    duration_ns: int = 6 * SEC,
    modes: Optional[tuple[str, ...]] = None,
) -> FleetSpec:
    """The control-plane failover campaign over a seed population.

    One point per (mode, seed): every mode faces the identical churn and
    the identical mid-run server crash, so the per-seed triple renders a
    direct survival comparison.
    """
    from repro.experiments.failover import (
        MODES,
        build_churn,
        build_crash_plan,
    )

    seeds = list(seeds)
    if not seeds:
        raise ValueError("failover fleet needs at least one seed")
    mode_list = tuple(modes) if modes else MODES
    churn_hash = build_churn(duration_ns).stable_hash()
    plan_hash = build_crash_plan(duration_ns).stable_hash()
    points: list[FleetPoint] = []
    for seed in seeds:
        for mode in mode_list:
            task_hash = f"{plan_hash}.{churn_hash}.{mode}"
            points.append(
                FleetPoint(
                    kind="failover",
                    key=f"{task_hash}:{seed}",
                    task_hash=task_hash,
                    seed=seed,
                    profile=mode,
                    params={
                        "mode": mode,
                        "seed": seed,
                        "duration_ns": duration_ns,
                    },
                    label=f"failover mode {mode} seed {seed}",
                    replay=(
                        f"python -m repro chaos --scenario failover "
                        f"--seed {seed} "
                        f"--seconds {max(1, duration_ns // SEC)}"
                    ),
                )
            )
    return FleetSpec(
        kind="failover",
        points=points,
        meta={
            "seeds": seeds,
            "duration_ns": duration_ns,
            "modes": list(mode_list),
        },
    )


# ----------------------------------------------------------------------
# point runners (executed inside workers -- must import lazily enough to
# stay cheap, and must return JSON-safe dicts)
# ----------------------------------------------------------------------
def _run_chaos_point(params: dict[str, Any]) -> dict[str, Any]:
    from repro.experiments.chaos import build_plan, run_one

    plan = build_plan(
        params["seed"], params["intensity"], params["duration_ns"]
    )
    run = run_one(
        params["profile"],
        plan,
        params["seed"],
        params["duration_ns"],
        intensity=params["intensity"],
    )
    return run.as_dict()


def _run_ablation_point(params: dict[str, Any]) -> dict[str, Any]:
    from repro.experiments.ablations import run_variant

    entry = run_variant(
        params["variant"], params["duration_ns"], params["seed"]
    )
    return {"seed": params["seed"], **asdict(entry)}


def _run_validation_point(params: dict[str, Any]) -> dict[str, Any]:
    from repro.experiments.validation import validate

    result = validate(params["seed"], params["n_frames"])
    return {"seed": params["seed"], **result.as_dict()}


def _run_failover_point(params: dict[str, Any]) -> dict[str, Any]:
    from repro.experiments.failover import run_failover_one

    run = run_failover_one(
        params["mode"], params["seed"], params["duration_ns"]
    )
    return run.as_dict()


_POINT_RUNNERS: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
    "chaos": _run_chaos_point,
    "ablation": _run_ablation_point,
    "validation": _run_validation_point,
    "failover": _run_failover_point,
}


# ----------------------------------------------------------------------
# retry policy (the establish() backoff shape, on the host clock)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with doubling backoff, capped.

    The same policy shape :meth:`CTMSSession.establish` uses against lost
    control frames, lifted to the host clock: attempt ``n`` failing waits
    ``min(backoff_s * 2**(n-1), backoff_cap_s)`` before re-dispatch, and
    ``max_attempts`` bounds the budget before the point is declared failed.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s <= 0:
            raise ValueError("backoff must be positive")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        return min(self.backoff_s * (2 ** (attempt - 1)), self.backoff_cap_s)


# ----------------------------------------------------------------------
# the crash-safe journal
# ----------------------------------------------------------------------
class Journal:
    """Append-only JSONL result journal with a torn-tail-tolerant loader.

    Line 1 is a header identifying the campaign; every further line is one
    point outcome (``status`` ``"ok"`` or ``"failed"``).  Appends are
    flushed and fsynced, so a SIGKILL can lose at most the record being
    written -- and the loader simply skips an undecodable final line.
    Re-recorded keys (a resumed run retrying a failed point) follow
    last-writer-wins.
    """

    def __init__(self, path: Path, fh) -> None:
        self.path = path
        self._fh = fh

    # -- creation ------------------------------------------------------
    @classmethod
    def create(cls, path: Path, spec: FleetSpec) -> "Journal":
        path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(path, "w")
        journal = cls(path, fh)
        journal._append(
            {
                "v": JOURNAL_VERSION,
                "campaign": spec.campaign_id(),
                "kind": spec.kind,
                "total_points": len(spec.points),
                "meta": spec.meta,
            }
        )
        return journal

    @classmethod
    def append_to(cls, path: Path) -> "Journal":
        # A mid-write kill can leave a torn final line with no newline;
        # terminate it first so the next append starts a fresh record
        # instead of extending the fragment into a second corrupt line.
        with open(path, "rb") as check:
            check.seek(0, os.SEEK_END)
            torn = check.tell() > 0 and (
                check.seek(-1, os.SEEK_END) or check.read(1) != b"\n"
            )
        fh = open(path, "a")
        if torn:
            fh.write("\n")
            fh.flush()
        return cls(path, fh)

    @staticmethod
    def load(path: Path) -> tuple[dict[str, Any], dict[str, dict[str, Any]]]:
        """Header plus the last record per key (undecodable lines skipped).

        Telemetry records are invisible here by construction: they carry
        ``"telemetry"``/``"point"`` but never ``"key"``, so the merge reads
        the same result set whether telemetry was on or off.
        """
        header, records, _telemetry = Journal.load_full(path)
        return header, records

    @staticmethod
    def load_full(
        path: Path,
    ) -> tuple[dict[str, Any], dict[str, dict[str, Any]], list[dict[str, Any]]]:
        """Header, last record per key, and telemetry records in order.

        The loader is torn-tail tolerant line by line: a record mid-append
        by a concurrent writer (or truncated by a SIGKILL) is skipped while
        every complete record -- before *and* after it on a later read --
        is returned.
        """
        header: dict[str, Any] = {}
        records: dict[str, dict[str, Any]] = {}
        telemetry: list[dict[str, Any]] = []
        # Binary reads, decoded per line: a tail torn *inside* a multi-byte
        # UTF-8 sequence must skip that line, not blow up the whole load
        # with a UnicodeDecodeError the way a text-mode stream would.
        with open(path, "rb") as fh:
            for i, raw in enumerate(fh):
                if not raw.endswith(b"\n"):
                    # A complete record is exactly one newline-terminated
                    # line; a flushed-but-unfinished tail may parse as
                    # valid JSON (e.g. a number) and must not count.
                    continue
                try:
                    obj = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue  # torn tail from a mid-write kill
                if not isinstance(obj, dict):
                    continue
                if obs_telemetry.is_telemetry(obj):
                    telemetry.append(obj)
                elif i == 0 and "campaign" in obj and "key" not in obj:
                    header = obj
                elif "key" in obj:
                    records[obj["key"]] = obj
        return header, records, telemetry

    # -- writes --------------------------------------------------------
    def record_ok(
        self, point: FleetPoint, attempts: int, result: dict[str, Any]
    ) -> None:
        self._append(
            {
                "key": point.key,
                "status": "ok",
                "seed": point.seed,
                "attempts": attempts,
                "result": result,
            }
        )

    def record_failed(
        self, point: FleetPoint, attempts: int, error: str
    ) -> None:
        self._append(
            {
                "key": point.key,
                "status": "failed",
                "seed": point.seed,
                "attempts": attempts,
                "error": error,
                "label": point.label,
                "replay": point.replay,
            }
        )

    def record_telemetry(self, obj: dict[str, Any]) -> None:
        """Append one telemetry record (same flush+fsync as results)."""
        self._append(obj)

    def _append(self, obj: dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True, separators=(",", ":")))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def journal_path(spec: FleetSpec, state_dir: str | Path) -> Path:
    return Path(state_dir) / f"campaign-{spec.campaign_id()}" / "journal.jsonl"


class _TelemetryWriter:
    """Stamps and journals telemetry records for one campaign.

    The schema and all downstream arithmetic live in
    :mod:`repro.obs.telemetry` (observe-only); this writer is the fleet's
    side of the bargain -- it reads the host clock (sanctioned here by
    CTMS303) and appends to the fsynced journal.  Disabled, it writes
    nothing, and a golden test pins that the merged report cannot tell.
    """

    def __init__(self, journal: Journal, enabled: bool) -> None:
        self._journal = journal
        self.enabled = enabled

    def emit(self, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self._journal.record_telemetry(
            obs_telemetry.record(event, ts=round(time.time(), 3), **fields)
        )

    def point_started(self, point: FleetPoint, attempt: int, worker: int) -> None:
        self.emit(
            obs_telemetry.EVENT_POINT_STARTED,
            point=point.key,
            seed=point.seed,
            attempt=attempt,
            worker=worker,
        )

    def point_finished(
        self,
        point: FleetPoint,
        attempt: int,
        worker: int,
        status: str,
        wall_ms: float,
        result: Optional[dict[str, Any]] = None,
    ) -> None:
        events = (result or {}).get("events")
        self.emit(
            obs_telemetry.EVENT_POINT_FINISHED,
            point=point.key,
            seed=point.seed,
            attempt=attempt,
            worker=worker,
            status=status,
            wall_ms=round(wall_ms, 3),
            events=events if isinstance(events, int) else None,
        )


# ----------------------------------------------------------------------
# interruption
# ----------------------------------------------------------------------
class FleetInterrupted(KeyboardInterrupt):
    """Ctrl-C mid-campaign: the journal survived; here is how to continue.

    Subclasses :class:`KeyboardInterrupt` so callers that only handle the
    stock interrupt still unwind correctly, but carries everything a CLI
    needs to tell the user their completed points are safe.
    """

    def __init__(
        self, completed: int, total: int, journal: Path, resume_hint: str
    ) -> None:
        super().__init__(
            f"campaign interrupted: {completed}/{total} points journalled "
            f"at {journal}"
        )
        self.completed = completed
        self.total = total
        self.journal = journal
        self.resume_hint = resume_hint


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _self_injure(fault: WorkerFaultSpec) -> None:
    """Apply a matched worker fault *inside the worker process*."""
    if fault.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if fault.kind == "hang":
        time.sleep(fault.hang_s)
    raise WorkerFaultError(f"injected worker fault: {fault.kind}")


def _worker_main(
    worker_id: int,
    kind: str,
    inbox,
    results,
    fault_dict: Optional[dict[str, Any]],
) -> None:
    """Worker loop: pull a point, run it, report; ``None`` means retire."""
    fault = WorkerFaultSpec.from_dict(fault_dict) if fault_dict else None
    runner = _POINT_RUNNERS[kind]
    while True:
        msg = inbox.get()
        if msg is None:
            return
        key, seed, profile, attempt, params = msg
        try:
            if fault is not None and fault.matches(seed, profile, attempt):
                _self_injure(fault)
            result = runner(params)
        except BaseException as exc:  # a point must never kill the loop
            results.put(
                ("error", worker_id, key, f"{type(exc).__name__}: {exc}")
            )
        else:
            results.put(("done", worker_id, key, result))


class _WorkerHandle:
    """Supervisor-side state for one worker process."""

    def __init__(self, ctx, worker_id: int, kind: str, results, fault_dict):
        self.worker_id = worker_id
        self.inbox = ctx.Queue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, kind, self.inbox, results, fault_dict),
            daemon=True,
            name=f"fleet-worker-{worker_id}",
        )
        self.spawned_ns = time.monotonic_ns()
        #: (point, attempt, started_ns) while busy, else None.
        self.current: Optional[tuple[FleetPoint, int, int]] = None
        self.proc.start()

    def assign(self, point: FleetPoint, attempt: int) -> None:
        self.current = (point, attempt, time.monotonic_ns())
        self.inbox.put(
            (point.key, point.seed, point.profile, attempt, point.params)
        )

    def lifetime_ns(self) -> int:
        return time.monotonic_ns() - self.spawned_ns


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class FleetResult:
    """Everything one campaign produced, merge-ready."""

    spec: FleetSpec
    #: key -> journal "ok" record (``record["result"]`` is the point dict).
    results: dict[str, dict[str, Any]]
    #: key -> journal "failed" record for points that exhausted retries.
    failures: dict[str, dict[str, Any]]
    registry: MetricsRegistry
    journal: Path
    jobs: int

    def ok(self) -> bool:
        return not self.failures and len(self.results) == len(self.spec.points)

    def result_for(self, key: str) -> Optional[dict[str, Any]]:
        record = self.results.get(key)
        return record["result"] if record else None

    def render(self) -> str:
        """Deterministic merged report.

        Assembled strictly from the spec's point order and the journalled
        result dicts -- completion order, job count, and resume history
        are invisible here by construction.
        """
        renderer = _RENDERERS[self.spec.kind]
        text = renderer(self.spec, self.results)
        if self.failures:
            ordered = [
                self.failures[p.key]
                for p in self.spec.points
                if p.key in self.failures
            ]
            text += "\n\n" + failed_points_section(
                [
                    {
                        "label": rec.get("label", rec["key"]),
                        "attempts": rec.get("attempts", "?"),
                        "error": rec.get("error", "unknown error"),
                        "replay": rec.get("replay", "(no replay command)"),
                    }
                    for rec in ordered
                ]
            )
        return text


# ----------------------------------------------------------------------
# renderers (one per kind; all order by spec, never by completion)
# ----------------------------------------------------------------------
def _render_chaos(
    spec: FleetSpec, results: dict[str, dict[str, Any]]
) -> str:
    from repro.experiments.chaos import (
        PROFILES,
        SURVIVAL_MAX_INTERARRIVAL_NS,
        SURVIVAL_MAX_LOSS_FRACTION,
        SURVIVAL_THROUGHPUT_BYTES_PER_SEC,
    )
    from repro.sim.units import MS

    duration_ns = spec.meta["duration_ns"]
    seeds = spec.meta["seeds"]
    lines = [
        "Fleet chaos survival: identical fault plans vs stock and CTMSP",
        f"{len(seeds)} seed(s), {duration_ns / SEC:.3f} s per run, "
        f"invariants: loss <= {SURVIVAL_MAX_LOSS_FRACTION * 100:.2f}%, "
        f"gap <= {SURVIVAL_MAX_INTERARRIVAL_NS / MS:.0f} ms, "
        f">= {SURVIVAL_THROUGHPUT_BYTES_PER_SEC / 1000:.1f} KB/s",
    ]
    totals = {profile: [0, 0] for profile in PROFILES}  # survived, counted
    for intensity in spec.meta["intensities"]:
        lines.append("")
        rows = []
        for profile in PROFILES:
            runs = []
            for point in spec.points:
                if (
                    point.profile == profile
                    and point.params["intensity"] == intensity
                    and point.key in results
                ):
                    runs.append(results[point.key]["result"])
            if not runs:
                rows.append([profile, "0", "-", "-", "-", "-", "-"])
                continue
            survived = sum(
                1
                for r in runs
                if r["established"] and not r["violated"]
            )
            established = sum(1 for r in runs if r["established"])
            delivered = sum(r["delivered"] for r in runs)
            lost = sum(r["lost_packets"] for r in runs)
            mean_kbs = (
                sum(r["throughput_bytes_per_sec"] for r in runs)
                / len(runs)
                / 1000
            )
            totals[profile][0] += survived
            totals[profile][1] += len(runs)
            rows.append(
                [
                    profile,
                    str(len(runs)),
                    str(established),
                    str(survived),
                    str(delivered),
                    str(lost),
                    f"{mean_kbs:.1f}",
                ]
            )
        lines.append(
            format_table(
                f"intensity {intensity:.2f}",
                [
                    "profile",
                    "points",
                    "established",
                    "survived",
                    "delivered",
                    "lost",
                    "mean KB/s",
                ],
                rows,
            )
        )
    lines.append("")
    lines.append(
        "survived: "
        + ", ".join(
            f"{profile} {totals[profile][0]}/{totals[profile][1]}"
            for profile in PROFILES
        )
    )
    return "\n".join(lines)


def _render_ablation(
    spec: FleetSpec, results: dict[str, dict[str, Any]]
) -> str:
    from repro.experiments.ablations import TABLE_HEADERS, AblationEntry

    rows = []
    for point in spec.points:
        record = results.get(point.key)
        if record is None:
            continue
        data = dict(record["result"])
        seed = data.pop("seed")
        entry = AblationEntry(**data)
        rows.append([str(seed)] + entry.as_row())
    return format_table(
        "Fleet ablation matrix (one switch flipped at a time)",
        ["seed"] + TABLE_HEADERS,
        rows,
    )


def _render_validation(
    spec: FleetSpec, results: dict[str, dict[str, Any]]
) -> str:
    rows = []
    agree = total = 0
    for point in spec.points:
        record = results.get(point.key)
        if record is None:
            continue
        r = record["result"]
        total += 1
        agree += 1 if r["agrees"] else 0
        rows.append(
            [
                str(r["seed"]),
                str(r["frames"]),
                str(r["max_delivery_skew_ns"]),
                f"{r['mean_delivery_skew_ns']:.1f}",
                str(r["detailed_token_hops"]),
                "agree" if r["agrees"] else "DIVERGED",
            ]
        )
    table = format_table(
        "Fleet model validation: lazy vs hop-level token ring",
        ["seed", "frames", "max skew(ns)", "mean skew(ns)", "token hops", "verdict"],
        rows,
    )
    return table + f"\n\nagreement: {agree}/{total} seeds"


def _render_failover(
    spec: FleetSpec, results: dict[str, dict[str, Any]]
) -> str:
    from repro.experiments.failover import FailoverRun

    modes = spec.meta["modes"]
    duration_ns = spec.meta["duration_ns"]
    lines = [
        "Fleet failover chaos: control modes vs a mid-campaign crash",
        f"{len(spec.meta['seeds'])} seed(s), {duration_ns / SEC:.3f} s "
        f"per run, crash at {duration_ns / 2 / SEC:.3f} s",
        "",
    ]
    rows = []
    totals = {mode: [0, 0] for mode in modes}  # survived, admitted
    for point in spec.points:
        record = results.get(point.key)
        if record is None:
            continue
        run = FailoverRun.from_dict(record["result"])
        admitted = run.admitted()
        totals[run.mode][0] += run.survived_count()
        totals[run.mode][1] += len(admitted)
        stranded = sum(
            1 for s in admitted if not s.survived()
        )
        rows.append(
            [
                str(run.seed),
                run.mode,
                str(len(run.sessions)),
                str(len(admitted)),
                run.survival_line(),
                str(stranded),
                str(sum(s.failovers for s in run.sessions)),
                str(sum(s.lost_packets for s in run.sessions)),
            ]
        )
    lines.append(
        format_table(
            "per-seed survival",
            [
                "seed",
                "mode",
                "requests",
                "admitted",
                "survived",
                "lost streams",
                "failovers",
                "lost pkts",
            ],
            rows,
        )
    )
    lines.append("")
    lines.append(
        "admitted sessions surviving: "
        + ", ".join(
            f"{mode} {totals[mode][0]}/{totals[mode][1]}" for mode in modes
        )
    )
    return "\n".join(lines)


_RENDERERS: dict[str, Callable[[FleetSpec, dict], str]] = {
    "chaos": _render_chaos,
    "ablation": _render_ablation,
    "validation": _render_validation,
    "failover": _render_failover,
}


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def run_fleet(
    spec: FleetSpec,
    jobs: int = 1,
    state_dir: str | Path = ".fleet",
    resume: bool = False,
    retry: RetryPolicy = RetryPolicy(),
    point_timeout_s: float = 120.0,
    worker_faults: Optional[WorkerFaultSpec] = None,
    registry: Optional[MetricsRegistry] = None,
    resume_hint: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    telemetry: bool = True,
) -> FleetResult:
    """Run (or resume) a campaign; returns the merge-ready result set.

    ``jobs=1`` executes points serially in-process (the reference the
    golden test compares everything against); ``jobs>=2`` runs the
    supervised worker pool.  Both paths share the journal, the retry
    policy, and the metrics registry, and both produce results exclusively
    as journalled dicts -- the merge cannot tell them apart.

    ``telemetry=True`` (the default) interleaves structured telemetry
    records (:mod:`repro.obs.telemetry`) with the point results in the
    same journal: point started/finished/retried/killed with wall-clock
    and sim-event counts, plus campaign start/finish markers carrying a
    metrics snapshot.  Telemetry is observe-only -- the result loader
    skips it, so the merged report is byte-identical either way (pinned
    by a golden test) and ``--resume`` works across the mix.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    registry = registry or MetricsRegistry()
    emit = log or (lambda _msg: None)
    path = journal_path(spec, state_dir)
    hint = resume_hint or (
        f"resume with: run_fleet(spec, jobs={jobs}, "
        f"state_dir={str(state_dir)!r}, resume=True)"
    )

    results: dict[str, dict[str, Any]] = {}
    if resume and path.exists():
        header, records = Journal.load(path)
        if header and header.get("campaign") != spec.campaign_id():
            raise ValueError(
                f"journal {path} belongs to campaign "
                f"{header.get('campaign')}, not {spec.campaign_id()}"
            )
        spec_keys = {p.key for p in spec.points}
        results = {
            key: rec
            for key, rec in records.items()
            if key in spec_keys and rec.get("status") == "ok"
        }
        registry.counter(fleetstats.POINTS_RESUMED).incr(len(results))
        journal = Journal.append_to(path)
        emit(
            f"resuming campaign {spec.campaign_id()}: "
            f"{len(results)}/{len(spec.points)} points already journalled"
        )
    else:
        journal = Journal.create(path, spec)

    pending = [p for p in spec.points if p.key not in results]
    failures: dict[str, dict[str, Any]] = {}
    tw = _TelemetryWriter(journal, enabled=telemetry)
    tw.emit(
        obs_telemetry.EVENT_CAMPAIGN_STARTED,
        campaign=spec.campaign_id(),
        kind=spec.kind,
        total_points=len(spec.points),
        resumed=len(results),
        jobs=jobs,
    )

    def finish() -> FleetResult:
        tw.emit(
            obs_telemetry.EVENT_CAMPAIGN_FINISHED,
            campaign=spec.campaign_id(),
            completed=len(results),
            failed=len(failures),
            metrics=registry.as_dict(),
        )
        journal.close()
        return FleetResult(
            spec=spec,
            results=results,
            failures=failures,
            registry=registry,
            journal=path,
            jobs=jobs,
        )

    def interrupted() -> FleetInterrupted:
        journal.close()
        return FleetInterrupted(
            completed=len(results),
            total=len(spec.points),
            journal=path,
            resume_hint=hint,
        )

    if jobs == 1:
        try:
            _run_serial(
                spec, pending, journal, results, failures, retry,
                worker_faults, registry, emit, tw,
            )
        except KeyboardInterrupt:
            raise interrupted() from None
        return finish()

    try:
        _run_supervised(
            spec, pending, journal, results, failures, retry,
            point_timeout_s, worker_faults, registry, jobs, emit, tw,
        )
    except KeyboardInterrupt:
        raise interrupted() from None
    return finish()


def _record_outcome(
    point: FleetPoint,
    attempt: int,
    error: str,
    retry: RetryPolicy,
    journal: Journal,
    failures: dict[str, dict[str, Any]],
    registry: MetricsRegistry,
    emit: Callable[[str], None],
    tw: _TelemetryWriter,
) -> bool:
    """Handle one failed attempt; True when the point should be retried."""
    if attempt < retry.max_attempts:
        registry.counter(fleetstats.POINTS_RETRIED).incr()
        tw.emit(
            obs_telemetry.EVENT_POINT_RETRIED,
            point=point.key,
            seed=point.seed,
            attempt=attempt,
            error=error,
            backoff_s=retry.backoff_for(attempt),
        )
        emit(
            f"{point.label}: attempt {attempt} failed ({error}); "
            f"retrying in {retry.backoff_for(attempt):.2f}s"
        )
        return True
    registry.counter(fleetstats.POINTS_FAILED).incr()
    journal.record_failed(point, attempt, error)
    failures[point.key] = {
        "key": point.key,
        "status": "failed",
        "seed": point.seed,
        "attempts": attempt,
        "error": error,
        "label": point.label,
        "replay": point.replay,
    }
    emit(f"{point.label}: FAILED after {attempt} attempt(s): {error}")
    return False


def _run_serial(
    spec: FleetSpec,
    pending: list[FleetPoint],
    journal: Journal,
    results: dict[str, dict[str, Any]],
    failures: dict[str, dict[str, Any]],
    retry: RetryPolicy,
    worker_faults: Optional[WorkerFaultSpec],
    registry: MetricsRegistry,
    emit: Callable[[str], None],
    tw: _TelemetryWriter,
) -> None:
    """The in-process reference path (also the no-multiprocessing fallback).

    Only ``fail``-kind worker faults can fire here: crashing or hanging
    the sole process would take the supervisor down with it, which is
    exactly what the parallel path exists to survive.
    """
    runner = _POINT_RUNNERS[spec.kind]
    for point in pending:
        attempt = 0
        while True:
            attempt += 1
            registry.counter(fleetstats.POINTS_DISPATCHED).incr()
            tw.point_started(point, attempt, worker=0)
            started_ns = time.monotonic_ns()
            try:
                if (
                    worker_faults is not None
                    and worker_faults.kind == "fail"
                    and worker_faults.matches(
                        point.seed, point.profile, attempt
                    )
                ):
                    raise WorkerFaultError("injected worker fault: fail")
                result = runner(point.params)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                tw.point_finished(
                    point, attempt, 0, "error",
                    to_ms(time.monotonic_ns() - started_ns),
                )
                if _record_outcome(
                    point, attempt, error, retry, journal, failures,
                    registry, emit, tw,
                ):
                    time.sleep(retry.backoff_for(attempt))
                    continue
                break
            else:
                tw.point_finished(
                    point, attempt, 0, "ok",
                    to_ms(time.monotonic_ns() - started_ns),
                    result,
                )
                journal.record_ok(point, attempt, result)
                results[point.key] = {
                    "key": point.key,
                    "status": "ok",
                    "seed": point.seed,
                    "attempts": attempt,
                    "result": result,
                }
                registry.counter(fleetstats.POINTS_COMPLETED).incr()
                break


def _run_supervised(
    spec: FleetSpec,
    pending: list[FleetPoint],
    journal: Journal,
    results: dict[str, dict[str, Any]],
    failures: dict[str, dict[str, Any]],
    retry: RetryPolicy,
    point_timeout_s: float,
    worker_faults: Optional[WorkerFaultSpec],
    registry: MetricsRegistry,
    jobs: int,
    emit: Callable[[str], None],
    tw: _TelemetryWriter,
) -> None:
    """The supervised worker pool."""
    ctx = _mp_context()
    result_q = ctx.Queue()
    fault_dict = worker_faults.as_dict() if worker_faults else None
    timeout_ns = from_sec(point_timeout_s)

    workers: list[_WorkerHandle] = []
    next_worker_id = 0
    ready: deque[tuple[FleetPoint, int]] = deque(
        (point, 1) for point in pending
    )
    delayed: list[tuple[int, FleetPoint, int]] = []  # (ready_at_ns, point, n)

    def spawn_worker() -> _WorkerHandle:
        nonlocal next_worker_id
        next_worker_id += 1
        handle = _WorkerHandle(
            ctx, next_worker_id, spec.kind, result_q, fault_dict
        )
        registry.counter(fleetstats.WORKERS_SPAWNED).incr()
        workers.append(handle)
        return handle

    def retire_worker(handle: _WorkerHandle) -> None:
        registry.histogram(
            fleetstats.WORKER_LIFETIME_NS, unit="ns"
        ).record(handle.lifetime_ns())
        workers.remove(handle)

    def attempt_failed(point: FleetPoint, attempt: int, error: str) -> None:
        if _record_outcome(
            point, attempt, error, retry, journal, failures, registry, emit,
            tw,
        ):
            ready_at = time.monotonic_ns() + int(
                retry.backoff_for(attempt) * 1_000_000_000
            )
            delayed.append((ready_at, point, attempt + 1))

    def outstanding() -> int:
        busy = sum(1 for w in workers if w.current is not None)
        return len(ready) + len(delayed) + busy

    try:
        while outstanding() > 0:
            now = time.monotonic_ns()
            # Promote due retries (sorted so equal-time retries keep a
            # stable order; merge order never depends on this).
            if delayed:
                delayed.sort(key=lambda item: item[0])
                while delayed and delayed[0][0] <= now:
                    _at, point, attempt = delayed.pop(0)
                    ready.append((point, attempt))
            # Keep the pool at strength while there is work to hand out.
            live = [w for w in workers if w.proc.is_alive()]
            want = min(jobs, outstanding())
            while len(live) < want:
                live.append(spawn_worker())
            # Hand ready points to idle workers.
            for worker in live:
                if not ready:
                    break
                if worker.current is None:
                    point, attempt = ready.popleft()
                    worker.assign(point, attempt)
                    registry.counter(fleetstats.POINTS_DISPATCHED).incr()
                    tw.point_started(point, attempt, worker=worker.worker_id)
            # Drain results.
            try:
                kind_msg = result_q.get(timeout=0.05)
            except Exception:
                kind_msg = None
            while kind_msg is not None:
                tag, worker_id, key, payload = kind_msg
                worker = next(
                    (w for w in workers if w.worker_id == worker_id), None
                )
                if worker is not None and worker.current is not None:
                    point, attempt, started = worker.current
                    if point.key == key:
                        worker.current = None
                        wall_ms = to_ms(time.monotonic_ns() - started)
                        tw.point_finished(
                            point,
                            attempt,
                            worker.worker_id,
                            "ok" if tag == "done" else "error",
                            wall_ms,
                            payload if tag == "done" else None,
                        )
                        if tag == "done":
                            journal.record_ok(point, attempt, payload)
                            results[point.key] = {
                                "key": point.key,
                                "status": "ok",
                                "seed": point.seed,
                                "attempts": attempt,
                                "result": payload,
                            }
                            registry.counter(
                                fleetstats.POINTS_COMPLETED
                            ).incr()
                        else:
                            attempt_failed(point, attempt, payload)
                try:
                    kind_msg = result_q.get_nowait()
                except Exception:
                    kind_msg = None
            # Crashed and hung workers.
            for worker in list(workers):
                if not worker.proc.is_alive():
                    if worker.current is not None:
                        point, attempt, started = worker.current
                        worker.current = None
                        registry.counter(fleetstats.WORKERS_CRASHED).incr()
                        tw.point_finished(
                            point,
                            attempt,
                            worker.worker_id,
                            "error",
                            to_ms(time.monotonic_ns() - started),
                        )
                        attempt_failed(
                            point,
                            attempt,
                            f"worker {worker.worker_id} died "
                            f"(exitcode {worker.proc.exitcode})",
                        )
                    retire_worker(worker)
                    continue
                if worker.current is not None:
                    point, attempt, started = worker.current
                    if time.monotonic_ns() - started > timeout_ns:
                        worker.proc.kill()
                        worker.proc.join(timeout=5.0)
                        worker.current = None
                        registry.counter(fleetstats.WORKERS_KILLED).incr()
                        registry.counter(fleetstats.POINTS_TIMED_OUT).incr()
                        tw.emit(
                            obs_telemetry.EVENT_POINT_KILLED,
                            point=point.key,
                            seed=point.seed,
                            attempt=attempt,
                            worker=worker.worker_id,
                            timeout_s=point_timeout_s,
                        )
                        attempt_failed(
                            point,
                            attempt,
                            f"hung: no result within {point_timeout_s:.1f}s",
                        )
                        retire_worker(worker)
    finally:
        for worker in list(workers):
            if worker.proc.is_alive():
                try:
                    worker.inbox.put_nowait(None)
                except Exception:
                    pass
        for worker in list(workers):
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            retire_worker(worker)


# ----------------------------------------------------------------------
# status and live watch
# ----------------------------------------------------------------------
def _campaign_journals(root: Path) -> list[Path]:
    """Every campaign journal under a fleet state dir, name-sorted."""
    if not root.is_dir():
        return []
    return [
        campaign_dir / "journal.jsonl"
        for campaign_dir in sorted(root.iterdir())
        if (campaign_dir / "journal.jsonl").is_file()
    ]


def fleet_status(state_dir: str | Path = ".fleet") -> str:
    """Human-readable progress of every journalled campaign under a dir.

    Everything is computed from journal record *timestamps* -- elapsed
    wall time, completed/failed/pending counts, and points/sec -- so the
    report is identical no matter when it is asked for (no live clock
    read, no simulated clock anywhere near this path).
    """
    root = Path(state_dir)
    lines = []
    for path in _campaign_journals(root):
        header, records, telemetry = Journal.load_full(path)
        total = header.get("total_points", "?")
        ok = sum(1 for r in records.values() if r.get("status") == "ok")
        failed = sum(
            1 for r in records.values() if r.get("status") == "failed"
        )
        remaining = (total - ok) if isinstance(total, int) else "?"
        state = "complete" if remaining == 0 else f"{remaining} remaining"
        lines.append(
            f"{path.parent.name} ({header.get('kind', '?')}): "
            f"{ok}/{total} ok, {failed} failed, {state}"
        )
        prog = obs_telemetry.progress(header, records, telemetry)
        pending = (
            max(0, total - ok - failed) if isinstance(total, int) else "?"
        )
        if prog.elapsed_s > 0:
            lines.append(
                f"  elapsed {prog.elapsed_s:.1f}s, completed {ok}, "
                f"failed {failed}, pending {pending}, "
                f"{prog.points_per_sec:.2f} points/s"
            )
        elif prog.has_telemetry:
            lines.append(
                f"  completed {ok}, failed {failed}, pending {pending} "
                "(telemetry window too narrow for a rate)"
            )
        else:
            lines.append(
                f"  completed {ok}, failed {failed}, pending {pending} "
                "(no telemetry timestamps journalled)"
            )
        lines.append(f"  journal: {path}")
    if not lines:
        return f"no fleet state under {root} (nothing journalled yet)"
    return "\n".join(lines)


def fleet_watch(
    state_dir: str | Path = ".fleet",
    campaign: Optional[str] = None,
    interval_s: float = 1.0,
    max_updates: Optional[int] = None,
    emit: Optional[Callable[[str], None]] = None,
    follow: bool = True,
) -> Optional["obs_telemetry.CampaignProgress"]:
    """Tail a campaign journal and render a live progress line.

    Observe-only by construction: the watcher opens the journal read-only
    from a separate process (or the same one) and never writes a byte --
    the supervised run it observes is unaffected, and the torn-tail
    loader returns every *complete* record even while the supervisor is
    mid-append.  Returns the last computed progress (None when there is
    no journal to watch).

    ``campaign`` selects a journal by directory-name substring; default
    is the most recently modified journal under ``state_dir``.  The loop
    ends when the campaign finishes, ``max_updates`` renders have been
    emitted, or ``follow=False`` (one shot).  Lives in ``fleet.py``
    because tailing needs the host clock and a sleep (CTMS303).
    """
    emit = emit or print
    root = Path(state_dir)
    prog: Optional[obs_telemetry.CampaignProgress] = None
    updates = 0
    while True:
        journals = _campaign_journals(root)
        if campaign is not None:
            journals = [p for p in journals if campaign in p.parent.name]
        if not journals:
            emit(f"no campaign journal under {root}")
            return None
        # Watch the journal most recently appended to (the live one).
        path = max(journals, key=lambda p: p.stat().st_mtime)
        header, records, telemetry = Journal.load_full(path)
        prog = obs_telemetry.progress(
            header, records, telemetry, now_ts=time.time()
        )
        emit(prog.render_line())
        updates += 1
        if prog.finished or not follow:
            return prog
        if max_updates is not None and updates >= max_updates:
            return prog
        time.sleep(interval_s)
