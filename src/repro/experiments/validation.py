"""Model validation: the lazy token ring against the hop-level reference.

Exposes the cross-validation used by the ring test suite as a library so
the VALIDATE benchmark can report agreement statistics the way the paper
reports measurements.  The detailed model costs one event per token hop
while traffic is pending; the lazy model costs ~3 events per frame -- this
module also quantifies that speedup, which is what makes the 117-minute
Test Case B runs tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ring.detailed import DetailedTokenRing
from repro.ring.frames import Frame
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import MS

N_STATIONS = 8
#: One rotation of token-phase uncertainty plus token times.
AGREEMENT_TOLERANCE_NS = N_STATIONS * 300 + 4 * 6_000


@dataclass
class ValidationResult:
    """Agreement statistics between the two ring models."""

    frames: int
    max_delivery_skew_ns: int
    mean_delivery_skew_ns: float
    lazy_events_estimate: int
    detailed_token_hops: int

    @property
    def agrees(self) -> bool:
        return self.max_delivery_skew_ns <= AGREEMENT_TOLERANCE_NS

    def as_dict(self) -> dict:
        """JSON-safe view (fields plus the derived verdict) for journals."""
        return {
            "frames": self.frames,
            "max_delivery_skew_ns": self.max_delivery_skew_ns,
            "mean_delivery_skew_ns": self.mean_delivery_skew_ns,
            "lazy_events_estimate": self.lazy_events_estimate,
            "detailed_token_hops": self.detailed_token_hops,
            "agrees": self.agrees,
        }


def random_plan(seed: int, n_frames: int = 60):
    """A mixed random workload over four stations."""
    rng = RandomStreams(seed).get("validation")
    plan = []
    for i in range(n_frames):
        sender = rng.randrange(4)
        receiver = (sender + 1 + rng.randrange(3)) % 4
        plan.append(
            (
                sender,
                receiver,
                rng.randint(1, 2500),
                rng.choice([0, 0, 0, 4]),
                rng.randint(0, 400),
                i,
            )
        )
    return plan


def _run(model: str, plan, horizon_ns: int):
    sim = Simulator()
    if model == "lazy":
        ring = TokenRing(sim, total_stations=N_STATIONS)
        stations = [RingStation(ring, f"s{i}") for i in range(4)]
        hops = None
    else:
        ring = DetailedTokenRing(sim, total_stations=N_STATIONS)
        stations = [ring.attach(f"s{i}") for i in range(4)]
        ring.start()
    deliveries: dict[int, int] = {}
    for s in stations:
        s.receive = lambda f: deliveries.__setitem__(f.payload, sim.now)
    for sender, receiver, nbytes, priority, delay_ms, tag in plan:
        sim.schedule(
            delay_ms * MS,
            stations[sender].transmit,
            Frame(src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
                  priority=priority, payload=tag),
        )
    sim.run(until=horizon_ns)
    hops = getattr(ring, "stats_token_hops", None)
    return deliveries, hops


def validate(seed: int = 1, n_frames: int = 60) -> ValidationResult:
    """Run one random workload through both models and compare."""
    plan = random_plan(seed, n_frames)
    horizon = (max(p[4] for p in plan) + 600) * MS
    lazy, _ = _run("lazy", plan, horizon)
    detailed, hops = _run("detailed", plan, horizon)
    if set(lazy) != set(detailed):
        raise AssertionError("delivery sets diverged")
    skews = [
        abs(a - b)
        for a, b in zip(sorted(lazy.values()), sorted(detailed.values()))
    ]
    # mean_delivery_skew_ns is a float *statistic* about ns values, not
    # calendar input; CTMS201 anchors to the call's opening line.
    return ValidationResult(  # ctms-lint: disable=CTMS201
        frames=len(lazy),
        max_delivery_skew_ns=max(skews) if skews else 0,
        mean_delivery_skew_ns=sum(skews) / len(skews) if skews else 0.0,
        lazy_events_estimate=3 * len(lazy),
        detailed_token_hops=hops or 0,
    )
