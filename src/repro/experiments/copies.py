"""The COPIES experiment: measure Section 2's copy arithmetic.

Pushes a stream through each of the three transfer disciplines and reads the
per-machine copy ledgers, counting *bulk* copies (those moving at least half
a packet's payload -- header stamps and bookkeeping copies are excluded,
as the paper's figures count data movement, not control bytes).  The
measured counts are then checked against :mod:`repro.core.direct`'s model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.direct import CopyCountModel, TransferPath, predicted_copies
from repro.core.session import CTMSSession
from repro.drivers.token_ring import TokenRingDriverConfig
from repro.drivers.vca import VCADriverConfig
from repro.experiments.testbed import HostConfig, Testbed
from repro.hardware import calibration
from repro.protocols.stack import NetStack
from repro.sim.units import SEC
from repro.unix.copy import CopyLedger
from repro.unix.process import UserProcess


@dataclass
class MeasuredCopies:
    """Measured per-packet copy counts for one transfer path."""

    path: TransferPath
    packets: int
    cpu_per_packet: float
    dma_per_packet: float
    model: CopyCountModel

    @property
    def total_per_packet(self) -> float:
        return self.cpu_per_packet + self.dma_per_packet

    def matches_model(self, slack: float = 0.25) -> bool:
        """Within ``slack`` copies/packet of the Section 2 prediction."""
        return (
            abs(self.cpu_per_packet - self.model.cpu_copies) <= slack
            and abs(self.dma_per_packet - self.model.dma_copies) <= slack
        )


def _bulk_counts(ledger: CopyLedger, threshold_bytes: int) -> tuple[int, int]:
    cpu = sum(
        rec.copies
        for rec in ledger.cpu.values()
        if rec.copies and rec.bytes / rec.copies >= threshold_bytes
    )
    dma = sum(
        rec.copies
        for rec in ledger.dma.values()
        if rec.copies and rec.bytes / rec.copies >= threshold_bytes
    )
    return cpu, dma


def measure_user_process_path(
    duration_ns: int = 10 * SEC, seed: int = 5
) -> MeasuredCopies:
    """Stock relay: VCA -> read() -> sendto() on the transmitter machine.

    Section 2 frames the count as device-to-device *within one machine*
    (Figures 2-1/2-2), so only the transmitter's ledger is read.
    """
    from repro.experiments.baseline import run_stock_relay

    packet = calibration.CTMSP_PACKET_BYTES
    bed_result = _run_stock_and_grab_ledger(duration_ns, seed)
    ledger, packets = bed_result
    cpu, dma = _bulk_counts(ledger, packet // 2)
    model = predicted_copies(
        TransferPath.USER_PROCESS, source_has_dma=False, sink_has_dma=True
    )
    return MeasuredCopies(
        TransferPath.USER_PROCESS, packets, cpu / packets, dma / packets, model
    )


def _run_stock_and_grab_ledger(duration_ns: int, seed: int):
    bytes_per_period = calibration.CTMSP_PACKET_BYTES
    bed = Testbed(seed=seed, mac_utilization=0.0)
    vca_cfg = VCADriverConfig(
        packet_bytes=bytes_per_period,
        device_bytes_per_period=bytes_per_period,
    )
    tx = bed.add_host(HostConfig(name="transmitter", vca=vca_cfg))
    rx = bed.add_host(HostConfig(name="receiver", vca=vca_cfg))
    tx.stack = NetStack(tx.kernel, tx.tr_driver)
    rx.stack = NetStack(rx.kernel, rx.tr_driver)
    rx.stack.udp_socket(5501)
    sent = [0]

    def sender(proc: UserProcess) -> Generator:
        sock = tx.stack.udp_socket(5501)
        yield from proc.ioctl("vca0", "STOCK_START")
        while True:
            got = yield from proc.read("vca0", bytes_per_period)
            yield from sock.sendto("receiver", 5501, got)
            sent[0] += 1

    UserProcess(tx.kernel, "relay").start(sender)
    bed.run(duration_ns)
    return tx.kernel.ledger, max(1, sent[0])


def measure_direct_driver_path(
    duration_ns: int = 10 * SEC, seed: int = 5
) -> MeasuredCopies:
    """The paper's change: VCA handler hands packets straight to the driver."""
    ledger, packets = _run_ctms_and_grab_ledger(
        duration_ns, seed, direct_to_buffer=False
    )
    cpu, dma = _bulk_counts(ledger, calibration.CTMSP_PACKET_BYTES // 2)
    model = predicted_copies(
        TransferPath.DIRECT_DRIVER, source_has_dma=False, sink_has_dma=True
    )
    return MeasuredCopies(
        TransferPath.DIRECT_DRIVER, packets, cpu / packets, dma / packets, model
    )


def measure_pointer_passing_path(
    duration_ns: int = 10 * SEC, seed: int = 5
) -> MeasuredCopies:
    """The extension: exchange DMA buffer pointers instead of copying."""
    ledger, packets = _run_ctms_and_grab_ledger(
        duration_ns, seed, direct_to_buffer=True
    )
    cpu, dma = _bulk_counts(ledger, calibration.CTMSP_PACKET_BYTES // 2)
    model = predicted_copies(
        TransferPath.POINTER_PASSING, source_has_dma=False, sink_has_dma=True
    )
    return MeasuredCopies(
        TransferPath.POINTER_PASSING, packets, cpu / packets, dma / packets, model
    )


def _run_ctms_and_grab_ledger(
    duration_ns: int, seed: int, direct_to_buffer: bool
):
    bed = Testbed(seed=seed, mac_utilization=0.0)
    packet = calibration.CTMSP_PACKET_BYTES
    vca_cfg = VCADriverConfig(
        packet_bytes=packet,
        # All packet data comes off the device: the copy census must count
        # real data movement, not synthetic filler.
        device_bytes_per_period=packet,
        copy_vca_data_to_mbufs=True,
        source_direct_to_buffer=direct_to_buffer,
    )
    tx = bed.add_host(HostConfig(name="transmitter", vca=vca_cfg))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(duration_ns)
    packets = tx.vca_driver.stats_packets_built
    return tx.kernel.ledger, max(1, packets)


def measure_all(duration_ns: int = 10 * SEC, seed: int = 5) -> list[MeasuredCopies]:
    """All three disciplines, for the COPIES report."""
    return [
        measure_user_process_path(duration_ns, seed),
        measure_direct_driver_path(duration_ns, seed),
        measure_pointer_passing_path(duration_ns, seed),
    ]
