"""Paper-style report tables.

Each benchmark prints (and writes under ``results/``) a table comparing the
paper's reported numbers with what the reproduction measured, in the paper's
own phrasing ("68% of the data points within 500 microseconds of 2600
microseconds", ...).
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.measure.histogram import Histogram
from repro.sim.units import MS, US

#: Where reports are written (next to the repo's bench outputs).
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


def format_table(
    title: str, headers: list[str], rows: list[list[str]]
) -> str:
    """A fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    parts = [title, bar, line(headers), bar]
    parts += [line(r) for r in rows]
    parts.append(bar)
    return "\n".join(parts)


def emit(name: str, text: str) -> None:
    """Print a report and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")


def row(label: str, paper: str, measured: str) -> list[str]:
    return [label, paper, measured]


def failed_points_section(records: list[dict]) -> str:
    """The explicit casualty list a degraded campaign report carries.

    A fleet campaign that lost points after exhausting retries must say
    so -- loudly, with a replayable command per point -- rather than
    silently rendering a smaller report.  Each record carries ``label``
    (the point's coordinates), ``attempts``, ``error``, and ``replay``
    (the exact CLI invocation that re-runs just that point).
    """
    lines = [f"FAILED POINTS ({len(records)}) -- completed campaign is "
             "missing these runs:"]
    for rec in records:
        lines.append(
            f"  {rec['label']}  after {rec['attempts']} attempt(s): "
            f"{rec['error']}"
        )
        lines.append(f"    replay: {rec['replay']}")
    return "\n".join(lines)


def figure_5_2_report(h6: Histogram) -> str:
    """Test Case B, histogram 6 -- the bimodal transmit-path figure."""
    mean_main = 2600 * US
    rows = [
        row(
            "within 500us of 2600us",
            "68%",
            f"{h6.fraction_within(mean_main, 500 * US) * 100:.1f}%",
        ),
        row(
            "within 500us of 9400us",
            "15%",
            f"{h6.fraction_within(9400 * US, 500 * US) * 100:.1f}%",
        ),
        row(
            "secondary concentration 8.4-10.4ms",
            "~15% (paper band 8.9-9.9ms)",
            f"{h6.fraction_between(8400 * US, 10400 * US) * 100:.1f}%",
        ),
        row(
            "between 2800us and 9300us",
            "16.5%",
            f"{h6.fraction_between(2800 * US, 9300 * US) * 100:.1f}%",
        ),
        row(
            "tails beyond 14000us",
            "~2% total tails to 14000us",
            f"{(1 - h6.fraction_between(0, 14_000 * US)) * 100:.2f}%",
        ),
        row("primary mode", "2600us", f"{h6.primary_mode() / US:.0f}us"),
        row("samples", "(117-minute run)", str(h6.count)),
    ]
    table = format_table(
        "Figure 5-2: VCA handler entered to just prior to transmission "
        "(Test Case B)",
        ["quantity", "paper", "measured"],
        rows,
    )
    return table + "\n\n" + Histogram(
        h6.samples, name="histogram 6 (Test B)", bin_width=500 * US
    ).to_ascii(width=48, max_rows=30)


def figure_5_3_report(h7: Histogram) -> str:
    """Test Case A, histogram 7 -- transmitter-to-receiver, quiet ring."""
    mean = round(h7.mean())
    rows = [
        row("minimum latency", "10740us", f"{h7.min() / US:.0f}us"),
        row("mean", "10894us", f"{mean / US:.0f}us"),
        row(
            "within 160us of mean",
            "98%",
            f"{h7.fraction_within(mean, 160 * US) * 100:.1f}%",
        ),
        row("right tail extends to", "14600us", f"{h7.max() / US:.0f}us"),
        row("samples", "-", str(h7.count)),
    ]
    table = format_table(
        "Figure 5-3: Transmitter to Receiver Times, Test Case A",
        ["quantity", "paper", "measured"],
        rows,
    )
    return table + "\n\n" + Histogram(
        h7.samples, name="histogram 7 (Test A)", bin_width=100 * US
    ).to_ascii(width=48, max_rows=25)


def figure_5_4_report(h7: Histogram, insertions: int, duration_min: float) -> str:
    """Test Case B, histogram 7 -- loaded ring, with ring-insertion outliers."""
    peak = h7.primary_mode()
    outliers = h7.count_between(100 * MS, 140 * MS)
    rows = [
        row("minimum latency", "10750us", f"{h7.min() / US:.0f}us"),
        row("peak", "10900us", f"{peak / US:.0f}us"),
        row(
            "within 160us of peak",
            "76%",
            f"{h7.fraction_within(peak, 160 * US) * 100:.1f}%",
        ),
        row(
            "in 11060-15000us",
            "21.5%",
            f"{h7.fraction_between(11_060 * US, 15_000 * US) * 100:.1f}%",
        ),
        row(
            "in 15000-40050us",
            "2.49%",
            f"{h7.fraction_between(15_000 * US, 40_050 * US) * 100:.2f}%",
        ),
        row(
            "points in 100-140ms (ring insertions)",
            "2 in 117 min",
            f"{outliers} in {duration_min:.0f} min ({insertions} insertions)",
        ),
        row("samples", "-", str(h7.count)),
    ]
    table = format_table(
        "Figure 5-4: Transmitter to Receiver Times, Test Case B",
        ["quantity", "paper", "measured"],
        rows,
    )
    return table + "\n\n" + Histogram(
        h7.samples, name="histogram 7 (Test B)", bin_width=500 * US
    ).to_ascii(width=48, max_rows=30)


def histogram_summary_table(histograms: dict[int, Histogram], case: str) -> str:
    """Histograms 1..7 summary for one test case."""
    rows = []
    for i in sorted(histograms):
        h = histograms[i]
        if h.count == 0:
            rows.append([h.name, "0", "-", "-", "-", "-"])
            continue
        s = h.summary()
        rows.append(
            [
                h.name,
                str(h.count),
                f"{s['mean_us']:.0f}",
                f"{s['std_us']:.0f}",
                f"{s['min_us']:.0f}",
                f"{s['max_us']:.0f}",
            ]
        )
    return format_table(
        f"Histograms 1-7, {case}",
        ["histogram", "n", "mean(us)", "std(us)", "min(us)", "max(us)"],
        rows,
    )
