"""Cross-journal rollups: many campaigns, one deterministic summary.

A fleet campaign answers one question for one seed population; the
paper-scale question -- *can the necessary data rates be supported?* --
is answered by the aggregate: survival **surfaces** over every journalled
intensity/profile cell, violation and playout-underrun counts per
invariant, and delivered-quality summaries (the Media-TCP-style metric
that lets stock and adaptive CTMSP be judged across campaigns rather than
per-run).

This module reads journals and produces text/JSON; it drives nothing.
ctms-lint holds it to that by name: CTMS302 forbids
``experiments/rollup.py`` from importing any actuator or model layer
(``core``/``drivers``/``faults``/...), exactly like ``repro.obs``.

Determinism contract: every aggregate iterates campaigns in
campaign-id order and records in point-key order, never journal
(completion) order -- so ``jobs=1`` and ``jobs=4`` runs of the same spec
roll up byte-identically (pinned by a golden test).  Telemetry records
(wall-clock timestamps, worker ids) are deliberately excluded from the
rollup output for the same reason.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.experiments.fleet import Journal, _campaign_journals
from repro.experiments.reporting import format_table

#: Profile render order for survival surfaces (stock first, like every
#: stock-vs-CTMSP table in the repo).
PROFILE_ORDER = ("stock", "ctmsp")


@dataclass
class CampaignData:
    """One journal, loaded: the unit every rollup aggregates over."""

    path: Path
    header: dict[str, Any]
    #: Point-key -> last journalled record (``status`` ok/failed).
    records: dict[str, dict[str, Any]]
    telemetry: list[dict[str, Any]] = field(default_factory=list)

    @property
    def campaign(self) -> str:
        return str(self.header.get("campaign", "?"))

    @property
    def kind(self) -> str:
        return str(self.header.get("kind", "?"))

    def ok_results(self) -> list[dict[str, Any]]:
        """The ``result`` dicts of completed points, in point-key order."""
        return [
            rec["result"]
            for _key, rec in sorted(self.records.items())
            if rec.get("status") == "ok" and isinstance(rec.get("result"), dict)
        ]

    def counts(self) -> tuple[int, int, int]:
        """(total, ok, failed) for the overview table."""
        total = int(self.header.get("total_points") or 0)
        ok = sum(1 for r in self.records.values() if r.get("status") == "ok")
        failed = sum(
            1 for r in self.records.values() if r.get("status") == "failed"
        )
        return total, ok, failed


def load_campaigns(
    state_dirs: Iterable[str | Path] | str | Path,
) -> list[CampaignData]:
    """Load every campaign journal under one or more fleet state dirs.

    Ordered by (kind, campaign id, path name) so a rollup over the same
    journals renders identically no matter how the dirs were listed.
    """
    if isinstance(state_dirs, (str, Path)):
        state_dirs = [state_dirs]
    campaigns: list[CampaignData] = []
    for root in state_dirs:
        for path in _campaign_journals(Path(root)):
            header, records, telemetry = Journal.load_full(path)
            campaigns.append(
                CampaignData(
                    path=path,
                    header=header,
                    records=records,
                    telemetry=telemetry,
                )
            )
    campaigns.sort(key=lambda c: (c.kind, c.campaign, c.path.name))
    return campaigns


# ----------------------------------------------------------------------
# aggregations (pure arithmetic over result dicts, key-ordered)
# ----------------------------------------------------------------------
def survival_surface(
    campaigns: list[CampaignData],
) -> list[dict[str, Any]]:
    """The chaos survival surface: one cell per (intensity, profile).

    Each cell aggregates every chaos run at that intensity/profile across
    *all* campaigns: run count, sessions established, invariant survivors,
    delivered/lost packet totals, and mean throughput.  Rows are ordered
    intensity-ascending, profile in :data:`PROFILE_ORDER` -- never by
    completion.
    """
    cells: dict[tuple[float, str], dict[str, Any]] = {}
    for campaign in campaigns:
        if campaign.kind != "chaos":
            continue
        for result in campaign.ok_results():
            key = (float(result["intensity"]), str(result["profile"]))
            cell = cells.setdefault(
                key,
                {
                    "intensity": key[0],
                    "profile": key[1],
                    "runs": 0,
                    "established": 0,
                    "survived": 0,
                    "delivered": 0,
                    "lost": 0,
                    "throughput_sum": 0.0,
                },
            )
            cell["runs"] += 1
            cell["established"] += 1 if result.get("established") else 0
            survived = result.get("established") and not result.get("violated")
            cell["survived"] += 1 if survived else 0
            cell["delivered"] += int(result.get("delivered", 0))
            cell["lost"] += int(result.get("lost_packets", 0))
            cell["throughput_sum"] += float(
                result.get("throughput_bytes_per_sec", 0.0)
            )
    ordered = []
    profile_rank = {name: i for i, name in enumerate(PROFILE_ORDER)}
    for key in sorted(
        cells, key=lambda k: (k[0], profile_rank.get(k[1], len(profile_rank)), k[1])
    ):
        cell = cells[key]
        cell["survival_rate"] = cell["survived"] / cell["runs"]
        cell["mean_throughput_bytes_per_sec"] = (
            cell["throughput_sum"] / cell["runs"]
        )
        del cell["throughput_sum"]
        ordered.append(cell)
    return ordered


def violation_counts(campaigns: list[CampaignData]) -> dict[str, int]:
    """How often each invariant broke, across every chaos run.

    Keys are the invariant names of
    :mod:`repro.faults.invariants` (``loss_fraction``, ``inter_arrival``,
    ``throughput``, ``playout_underrun``, ``no_reordering``); a run that
    broke an invariant counts once per invariant.  Sorted by name.
    """
    counts: dict[str, int] = {}
    for campaign in campaigns:
        if campaign.kind != "chaos":
            continue
        for result in campaign.ok_results():
            for name in result.get("violated", ()):
                counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def quality_summary(
    campaigns: list[CampaignData],
) -> list[dict[str, Any]]:
    """Delivered-quality per profile: the cross-campaign judging metric.

    Media-TCP's question -- which configuration *delivers* under
    contention -- needs totals across campaigns, not per-run traces:
    delivered/lost packets, loss fraction, mean and worst-case
    throughput, and the playout-underrun count, per profile.
    """
    rows: dict[str, dict[str, Any]] = {}
    for campaign in campaigns:
        if campaign.kind != "chaos":
            continue
        for result in campaign.ok_results():
            profile = str(result["profile"])
            row = rows.setdefault(
                profile,
                {
                    "profile": profile,
                    "runs": 0,
                    "delivered": 0,
                    "lost": 0,
                    "underruns": 0,
                    "throughput_sum": 0.0,
                    "min_throughput_bytes_per_sec": None,
                },
            )
            row["runs"] += 1
            row["delivered"] += int(result.get("delivered", 0))
            row["lost"] += int(result.get("lost_packets", 0))
            if "playout_underrun" in result.get("violated", ()):
                row["underruns"] += 1
            tput = float(result.get("throughput_bytes_per_sec", 0.0))
            row["throughput_sum"] += tput
            low = row["min_throughput_bytes_per_sec"]
            row["min_throughput_bytes_per_sec"] = (
                tput if low is None else min(low, tput)
            )
    profile_rank = {name: i for i, name in enumerate(PROFILE_ORDER)}
    ordered = []
    for profile in sorted(
        rows, key=lambda p: (profile_rank.get(p, len(profile_rank)), p)
    ):
        row = rows[profile]
        total = row["delivered"] + row["lost"]
        row["loss_fraction"] = row["lost"] / total if total else 0.0
        row["mean_throughput_bytes_per_sec"] = (
            row["throughput_sum"] / row["runs"] if row["runs"] else 0.0
        )
        del row["throughput_sum"]
        ordered.append(row)
    return ordered


def ablation_summary(campaigns: list[CampaignData]) -> list[dict[str, Any]]:
    """Per-variant aggregate over every ablation campaign, name-ordered."""
    rows: dict[str, dict[str, Any]] = {}
    for campaign in campaigns:
        if campaign.kind != "ablation":
            continue
        for result in campaign.ok_results():
            name = str(result.get("name", "?"))
            row = rows.setdefault(
                name,
                {"variant": name, "seeds": 0, "delivered": 0, "lost": 0},
            )
            row["seeds"] += 1
            row["delivered"] += int(result.get("delivered", 0))
            row["lost"] += int(result.get("lost", 0))
    return [rows[name] for name in sorted(rows)]


def validation_summary(
    campaigns: list[CampaignData],
) -> Optional[dict[str, Any]]:
    """Agreement totals over every validation campaign (None when none)."""
    seeds = agree = 0
    max_skew = 0
    for campaign in campaigns:
        if campaign.kind != "validation":
            continue
        for result in campaign.ok_results():
            seeds += 1
            agree += 1 if result.get("agrees") else 0
            max_skew = max(max_skew, int(result.get("max_delivery_skew_ns", 0)))
    if seeds == 0:
        return None
    return {"seeds": seeds, "agree": agree, "max_delivery_skew_ns": max_skew}


def quality_summary_line(campaigns: list[CampaignData]) -> Optional[str]:
    """One line of delivered quality for progress output and logs."""
    rows = quality_summary(campaigns)
    if not rows:
        return None
    parts = [
        f"{r['profile']} {r['delivered']} delivered/"
        f"{r['lost']} lost ({r['loss_fraction'] * 100:.2f}%), "
        f"{r['mean_throughput_bytes_per_sec'] / 1000:.1f} KB/s mean"
        for r in rows
    ]
    return "quality: " + "; ".join(parts)


# ----------------------------------------------------------------------
# the rollup report
# ----------------------------------------------------------------------
@dataclass
class RollupReport:
    """Everything the aggregated journals say, render- and JSON-ready."""

    campaigns: list[CampaignData]

    def as_dict(self) -> dict[str, Any]:
        """Deterministic plain-data view (the ``--json`` output)."""
        overview = []
        for campaign in self.campaigns:
            total, ok, failed = campaign.counts()
            overview.append(
                {
                    "campaign": campaign.campaign,
                    "kind": campaign.kind,
                    "total": total,
                    "ok": ok,
                    "failed": failed,
                }
            )
        out: dict[str, Any] = {"campaigns": overview}
        surface = survival_surface(self.campaigns)
        if surface:
            out["survival_surface"] = surface
            out["violations"] = violation_counts(self.campaigns)
            out["quality"] = quality_summary(self.campaigns)
        ablations = ablation_summary(self.campaigns)
        if ablations:
            out["ablations"] = ablations
        validation = validation_summary(self.campaigns)
        if validation is not None:
            out["validation"] = validation
        return out

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        """Deterministic text rollup across every loaded journal."""
        if not self.campaigns:
            return "no campaign journals found (nothing to roll up)"
        sections: list[str] = []
        total_points = ok_points = failed_points = 0
        overview_rows = []
        for campaign in self.campaigns:
            total, ok, failed = campaign.counts()
            total_points += total
            ok_points += ok
            failed_points += failed
            overview_rows.append(
                [campaign.campaign, campaign.kind, str(total), str(ok), str(failed)]
            )
        sections.append(
            format_table(
                f"Campaign rollup: {len(self.campaigns)} journal(s), "
                f"{ok_points}/{total_points} points ok, "
                f"{failed_points} failed",
                ["campaign", "kind", "points", "ok", "failed"],
                overview_rows,
            )
        )
        surface = survival_surface(self.campaigns)
        if surface:
            sections.append(
                format_table(
                    "Survival surface (all chaos campaigns)",
                    [
                        "intensity",
                        "profile",
                        "runs",
                        "established",
                        "survived",
                        "rate",
                        "delivered",
                        "lost",
                        "mean KB/s",
                    ],
                    [
                        [
                            f"{cell['intensity']:.2f}",
                            cell["profile"],
                            str(cell["runs"]),
                            str(cell["established"]),
                            str(cell["survived"]),
                            f"{cell['survival_rate'] * 100:.0f}%",
                            str(cell["delivered"]),
                            str(cell["lost"]),
                            f"{cell['mean_throughput_bytes_per_sec'] / 1000:.1f}",
                        ]
                        for cell in surface
                    ],
                )
            )
            violations = violation_counts(self.campaigns)
            sections.append(
                format_table(
                    "Invariant violations (runs that broke each invariant)",
                    ["invariant", "runs"],
                    [[name, str(count)] for name, count in violations.items()]
                    or [["(none)", "0"]],
                )
            )
            sections.append(
                format_table(
                    "Delivered quality by profile",
                    [
                        "profile",
                        "runs",
                        "delivered",
                        "lost",
                        "loss",
                        "underruns",
                        "mean KB/s",
                        "min KB/s",
                    ],
                    [
                        [
                            row["profile"],
                            str(row["runs"]),
                            str(row["delivered"]),
                            str(row["lost"]),
                            f"{row['loss_fraction'] * 100:.2f}%",
                            str(row["underruns"]),
                            f"{row['mean_throughput_bytes_per_sec'] / 1000:.1f}",
                            f"{(row['min_throughput_bytes_per_sec'] or 0) / 1000:.1f}",
                        ]
                        for row in quality_summary(self.campaigns)
                    ],
                )
            )
        ablations = ablation_summary(self.campaigns)
        if ablations:
            sections.append(
                format_table(
                    "Ablation rollup (totals across seeds)",
                    ["configuration", "seeds", "delivered", "lost"],
                    [
                        [
                            row["variant"],
                            str(row["seeds"]),
                            str(row["delivered"]),
                            str(row["lost"]),
                        ]
                        for row in ablations
                    ],
                )
            )
        validation = validation_summary(self.campaigns)
        if validation is not None:
            sections.append(
                "Model validation rollup: "
                f"{validation['agree']}/{validation['seeds']} seeds agree, "
                f"max delivery skew {validation['max_delivery_skew_ns']} ns"
            )
        return "\n\n".join(sections)


def rollup(
    state_dirs: Iterable[str | Path] | str | Path = ".fleet",
) -> RollupReport:
    """Aggregate every campaign journal under the given state dir(s)."""
    return RollupReport(campaigns=load_campaigns(state_dirs))
