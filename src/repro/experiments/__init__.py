"""Experiment harnesses reproducing the paper's evaluation.

* :mod:`~repro.experiments.testbed` -- assembles machines, ring, kernels,
  adapters and drivers into the paper's testbed;
* :mod:`~repro.experiments.scenarios` -- Test Case A and Test Case B plus
  the full Section 5.3 toggle matrix;
* :mod:`~repro.experiments.runner` -- runs a scenario and collects the seven
  histograms of Section 5.3;
* :mod:`~repro.experiments.baseline` -- the stock-UNIX relay at 16 and
  150 KB/s (Section 1);
* :mod:`~repro.experiments.copies` -- the Section 2 copy-count measurement;
* :mod:`~repro.experiments.reporting` -- paper-style text tables.
"""

from repro.experiments.scenarios import Scenario, test_case_a, test_case_b
from repro.experiments.testbed import Host, Testbed

__all__ = [
    "Host",
    "Scenario",
    "Testbed",
    "test_case_a",
    "test_case_b",
]
