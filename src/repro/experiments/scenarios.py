"""Scenario definitions: the Section 5.3 measurement matrix.

The paper enumerates eleven dimensions that "will alter the results" and
picks two points in that space for presentation:

* **Test Case A** -- private ring, no load, stand-alone hosts, transmitter
  in IO Channel Memory copying header+data, no VCA-data copy, receiver
  copies into mbufs then drops, driver and ring priority on, remote (PC/AT)
  measurement.
* **Test Case B** -- public ring under normal load, multiprogramming hosts,
  full copying on both ends, otherwise as A.

A :class:`Scenario` captures the whole matrix so ablation benches can flip
one switch at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.drivers.token_ring import TokenRingDriverConfig
from repro.drivers.vca import VCADriverConfig
from repro.hardware import calibration
from repro.sim.units import SEC


@dataclass
class Scenario:
    """One point in the Section 5.3 measurement space."""

    name: str
    # -- transmitter ----------------------------------------------------
    tx_use_io_channel_memory: bool = True
    tx_copy_header_only: bool = False
    tx_copy_vca_data_to_mbufs: bool = True
    tx_precompute_header: bool = True
    # -- receiver -------------------------------------------------------
    rx_copy_to_mbufs: bool = True
    rx_copy_to_device: bool = False
    rx_use_io_channel_memory: bool = True
    # -- driver / ring priority ------------------------------------------
    driver_priority_queueing: bool = True
    ctmsp_ring_priority: int = 4
    # -- environment ------------------------------------------------------
    private_network: bool = True
    multiprogramming: bool = False
    mac_utilization: float = calibration.MAC_TRAFFIC_UTILIZATION_LOW
    insertions_per_day: float = 0.0
    #: Isolated single-purge soft errors (Section 5's "soft error on the
    #: Token Ring"), per hour.
    soft_errors_per_hour: float = 0.0
    #: Background traffic intensity multiplier (0 disables; 1 is the
    #: paper's "normal loading").
    background_load: float = 0.0
    # -- run --------------------------------------------------------------
    duration_ns: int = 30 * SEC
    seed: int = 1

    def transmitter_config(self) -> tuple[TokenRingDriverConfig, VCADriverConfig]:
        tr = TokenRingDriverConfig(
            use_io_channel_memory=self.tx_use_io_channel_memory,
            ctmsp_priority_queueing=self.driver_priority_queueing,
            ctmsp_ring_priority=self.ctmsp_ring_priority,
            tx_copy_header_only=self.tx_copy_header_only,
        )
        vca = VCADriverConfig(
            copy_vca_data_to_mbufs=self.tx_copy_vca_data_to_mbufs,
            precomputed_header=self.tx_precompute_header,
        )
        return tr, vca

    def receiver_config(self) -> tuple[TokenRingDriverConfig, VCADriverConfig]:
        tr = TokenRingDriverConfig(
            use_io_channel_memory=self.rx_use_io_channel_memory,
            ctmsp_priority_queueing=self.driver_priority_queueing,
            ctmsp_ring_priority=self.ctmsp_ring_priority,
            rx_copy_to_mbufs=self.rx_copy_to_mbufs,
        )
        vca = VCADriverConfig(
            sink_copy_to_device=self.rx_copy_to_device,
        )
        return tr, vca

    def variant(self, name_suffix: str, **changes) -> "Scenario":
        """A copy of this scenario with some switches flipped (ablations)."""
        return replace(self, name=f"{self.name}/{name_suffix}", **changes)


def test_case_a(duration_ns: int = 30 * SEC, seed: int = 1) -> Scenario:
    """The paper's Test Case A (Figure 5-3)."""
    return Scenario(
        name="test-case-A",
        tx_copy_vca_data_to_mbufs=False,
        rx_copy_to_mbufs=True,
        rx_copy_to_device=False,
        private_network=True,
        multiprogramming=False,
        mac_utilization=calibration.MAC_TRAFFIC_UTILIZATION_LOW,
        background_load=0.0,
        insertions_per_day=0.0,
        duration_ns=duration_ns,
        seed=seed,
    )


def test_case_b(
    duration_ns: int = 30 * SEC,
    seed: int = 1,
    insertions_per_day: float = 0.0,
) -> Scenario:
    """The paper's Test Case B (Figures 5-2 and 5-4).

    "public network; normal loading of network; transmitter and receiver in
    multiprocessing mode but not heavily loaded."  Insertions default to off
    because Figure 5-4's two outliers correspond to a 117-minute run; the
    PURGE bench turns them on explicitly.
    """
    return Scenario(
        name="test-case-B",
        tx_copy_vca_data_to_mbufs=True,
        rx_copy_to_mbufs=True,
        rx_copy_to_device=True,
        private_network=False,
        multiprogramming=True,
        mac_utilization=0.006,  # mid paper band for the loaded public ring
        background_load=1.0,
        insertions_per_day=insertions_per_day,
        duration_ns=duration_ns,
        seed=seed,
    )
