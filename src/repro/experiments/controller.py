"""The central control point of the measurement campaign (Section 5.2.1).

"We were able to coordinate the activities of the transmitter, receiver and
the TAP tool under a centralized control point.  The end result was a set
of computers that recorded and analyzed data in real time.  If a packet was
lost, had an extremely long inter-departure or inter-arrival time, or there
was an incorrect ordering of packets on the transmitter and/or receiver,
all machines were halted and a snapshot of the data was taken.  We then
examined the snapshots to decide what error had occurred."

:class:`CampaignController` reproduces that rig: it taps the transmitter's
pre-transmit point and the receiver's classification point, tracks packet
ordering on both, applies inter-departure / inter-arrival deadlines, and on
the first anomaly halts the stream and captures a :class:`Snapshot` with
the recent event window and every machine's counters -- the debugging
artifact the paper calls "extremely good at helping to find bugs".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.ctmsp import CTMSPPacket
from repro.ring.frames import Frame
from repro.sim.units import MS, format_time

#: Anomaly kinds (the paper's three triggers).
LOST_PACKET = "lost_packet"
LONG_INTERVAL = "long_interval"
OUT_OF_ORDER = "out_of_order"


@dataclass(frozen=True)
class TraceEvent:
    """One observed event in the rolling window."""

    time_ns: int
    point: str  # "tx" (pre-transmit) or "rx" (classified)
    packet_no: int


@dataclass
class Snapshot:
    """Everything frozen at the moment of the halt."""

    anomaly: str
    detail: str
    halted_at: int
    recent_events: list[TraceEvent]
    transmitter_stats: dict[str, Any]
    receiver_stats: dict[str, Any]
    ring_stats: dict[str, Any]

    def render(self) -> str:
        lines = [
            f"SNAPSHOT at {format_time(self.halted_at)}: {self.anomaly}",
            f"  {self.detail}",
            "  recent events:",
        ]
        for ev in self.recent_events[-12:]:
            lines.append(
                f"    {format_time(ev.time_ns):>12}  {ev.point:>2}  "
                f"packet {ev.packet_no}"
            )
        for title, stats in (
            ("transmitter", self.transmitter_stats),
            ("receiver", self.receiver_stats),
            ("ring", self.ring_stats),
        ):
            lines.append(f"  {title}:")
            for key, value in stats.items():
                lines.append(f"    {key} = {value}")
        return "\n".join(lines)


class CampaignController:
    """Real-time anomaly watchdog over one CTMS stream."""

    def __init__(
        self,
        testbed,
        transmitter,
        receiver,
        session,
        max_interdeparture: int = 40 * MS,
        max_interarrival: int = 40 * MS,
        window: int = 64,
        halt_on_anomaly: bool = True,
    ) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.transmitter = transmitter
        self.receiver = receiver
        self.session = session
        self.max_interdeparture = max_interdeparture
        self.max_interarrival = max_interarrival
        self.halt_on_anomaly = halt_on_anomaly
        self.events: deque[TraceEvent] = deque(maxlen=window)
        self.snapshot: Optional[Snapshot] = None
        self.halted = False
        self._last_tx: Optional[tuple[int, int]] = None  # (time, packet_no)
        self._last_rx: Optional[tuple[int, int]] = None
        transmitter.tr_driver.add_probe("p3", self._on_tx)
        receiver.tr_driver.add_probe("p4", self._on_rx)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def _on_tx(self, frame: Frame) -> Optional[int]:
        packet = frame.payload
        if not isinstance(packet, CTMSPPacket) or self.halted:
            return None
        now = self.sim.now
        self.events.append(TraceEvent(now, "tx", packet.packet_no))
        if self._last_tx is not None:
            t_prev, n_prev = self._last_tx
            if packet.packet_no < n_prev:
                self._trip(
                    OUT_OF_ORDER,
                    f"transmit order broke: {n_prev} then {packet.packet_no}",
                )
            elif now - t_prev > self.max_interdeparture:
                self._trip(
                    LONG_INTERVAL,
                    f"inter-departure {format_time(now - t_prev)} exceeded "
                    f"{format_time(self.max_interdeparture)} before packet "
                    f"{packet.packet_no}",
                )
        self._last_tx = (now, packet.packet_no)
        return None

    def _on_rx(self, frame: Frame) -> Optional[int]:
        packet = frame.payload
        if not isinstance(packet, CTMSPPacket) or self.halted:
            return None
        now = self.sim.now
        self.events.append(TraceEvent(now, "rx", packet.packet_no))
        if self._last_rx is not None:
            t_prev, n_prev = self._last_rx
            if packet.packet_no < n_prev:
                self._trip(
                    OUT_OF_ORDER,
                    f"receive order broke: {n_prev} then {packet.packet_no}",
                )
            elif packet.packet_no > n_prev + 1:
                self._trip(
                    LOST_PACKET,
                    f"packets {n_prev + 1}..{packet.packet_no - 1} never "
                    "arrived",
                )
            elif now - t_prev > self.max_interarrival:
                self._trip(
                    LONG_INTERVAL,
                    f"inter-arrival {format_time(now - t_prev)} exceeded "
                    f"{format_time(self.max_interarrival)} before packet "
                    f"{packet.packet_no}",
                )
        self._last_rx = (now, packet.packet_no)
        return None

    # ------------------------------------------------------------------
    # halt and snapshot
    # ------------------------------------------------------------------
    def _trip(self, anomaly: str, detail: str) -> None:
        if self.halted:
            return
        self.snapshot = Snapshot(
            anomaly=anomaly,
            detail=detail,
            halted_at=self.sim.now,
            recent_events=list(self.events),
            transmitter_stats=self._host_stats(self.transmitter),
            receiver_stats=self._host_stats(self.receiver),
            ring_stats={
                "frames_sent": self.testbed.ring.stats_frames_sent,
                "lost_to_purge": self.testbed.ring.stats_frames_lost_to_purge,
                "purges": self.testbed.ring.stats_purges,
                "pending": self.testbed.ring.pending_count(),
            },
        )
        if self.halt_on_anomaly:
            self.halted = True
            self.session.stop()

    @staticmethod
    def _host_stats(host) -> dict[str, Any]:
        return {
            "tx_packets": host.tr_driver.stats_tx_packets,
            "tx_queue_peak": host.tr_driver.stats_tx_queue_peak,
            "rx_ctmsp": host.tr_driver.stats_rx_ctmsp,
            "rx_dropped_no_mbufs": host.tr_driver.stats_rx_dropped_no_mbufs,
            "vca_packets_built": host.vca_driver.stats_packets_built,
            "vca_drops_no_mbufs": host.vca_driver.stats_drops_no_mbufs,
            "mbuf_peak_bytes": host.kernel.mbufs.peak_bytes_in_use(),
        }
