"""Chaos campaigns: stock vs CTMS under seeded random fault weather.

The paper hardened one stream against one environment (Ring Purges every
couple of minutes, the occasional station insertion).  A chaos campaign
asks the stronger question: across *randomly generated but reproducible*
fault schedules of increasing intensity, which configuration keeps its
invariants?  Two profiles face identical plans:

* ``stock`` -- the Section 1 starting point: no IO Channel Memory fixed
  buffers, no driver priority queueing, ring priority 0, headers rebuilt
  per packet;
* ``ctmsp`` -- the paper's shipped configuration (all of the above on).

Each (intensity, profile) run gets a fresh testbed with the same seed, the
same :class:`~repro.faults.plan.FaultPlan` (built once per intensity), a
:class:`~repro.faults.invariants.StreamInvariantMonitor`, and a survival
verdict.  Everything is derived from the seed -- two campaigns with the
same seed render byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig, Testbed
from repro.faults.injectors import FaultInjector
from repro.faults.invariants import StreamInvariantMonitor
from repro.faults.plan import FaultPlan
from repro.sim.rng import seeded_stream
from repro.sim.units import MS, SEC

#: The paper's Section 6 target rate the survivors must sustain.
SURVIVAL_THROUGHPUT_BYTES_PER_SEC = 150_000.0

#: Delivery-gap bound (comfortably above the 120-130 ms insertion outliers
#: the paper tolerated, well below anything perceptually catastrophic).
SURVIVAL_MAX_INTERARRIVAL_NS = 150 * MS

#: Loss bound: the level the paper "decided that we could safely ignore".
SURVIVAL_MAX_LOSS_FRACTION = 0.01

PROFILES = ("stock", "ctmsp")

DEFAULT_INTENSITIES = (0.5, 1.0, 2.0)

#: Hosts every campaign testbed assembles (and plans may wound).
TX_HOST = "transmitter"
RX_HOST = "receiver"


def profile_host_config(profile: str, name: str) -> HostConfig:
    """Host configuration for one campaign profile."""
    if profile == "ctmsp":
        return HostConfig(name=name)
    if profile == "stock":
        config = HostConfig(name=name, has_io_channel_memory=False)
        config.tr.use_io_channel_memory = False
        config.tr.ctmsp_priority_queueing = False
        config.tr.ctmsp_ring_priority = 0
        config.vca.precomputed_header = False
        return config
    raise ValueError(f"unknown profile {profile!r}; known: {PROFILES}")


def plan_seed(seed: int, intensity: float) -> int:
    """Derive the per-intensity plan seed (stable across profiles)."""
    return seed * 100_003 + round(intensity * 1000)


def build_plan(seed: int, intensity: float, duration_ns: int) -> FaultPlan:
    """The one plan both profiles face at this intensity.

    ``seeded_stream`` wraps the same ``random.Random(plan_seed(...))``
    construction this module used before the lint rules landed, so
    campaign output is seed-for-seed identical (see the golden-report
    test) while keeping raw RNG construction inside ``sim/rng.py``.
    """
    rng = seeded_stream(plan_seed(seed, intensity))
    return FaultPlan.random(
        rng,
        duration_ns=duration_ns,
        intensity=intensity,
        hosts=[TX_HOST, RX_HOST],
    )


class ChaosPointError(RuntimeError):
    """A chaos point died mid-run.

    Raised by :func:`run_one` in place of whatever the testbed threw, so a
    worker's failure always names the *replayable coordinates* of the point
    -- ``(plan_hash, seed)`` plus profile and intensity -- rather than
    surfacing a bare traceback with no way back to the run that caused it.
    The original exception rides along as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        plan_hash: str,
        seed: int,
        profile: str,
        intensity: float,
    ) -> None:
        super().__init__(message)
        self.plan_hash = plan_hash
        self.seed = seed
        self.profile = profile
        self.intensity = intensity


@dataclass
class ChaosRun:
    """One profile's fate under one plan."""

    profile: str
    intensity: float
    delivered: int = 0
    lost_packets: int = 0
    throughput_bytes_per_sec: float = 0.0
    setup_attempts: int = 0
    established: bool = False
    #: Invariant names broken, in first-detection order.
    violated: list[str] = field(default_factory=list)
    #: Full violation records (first-violation snapshots).
    violations: list = field(default_factory=list)
    #: Replay coordinates: the testbed seed and the plan's content hash.
    seed: int = 0
    plan_hash: str = ""
    #: Calendar entries the run's simulator dispatched (perf trajectory).
    events: int = 0

    def survived(self) -> bool:
        return self.established and not self.violated

    def verdict(self) -> str:
        if not self.established:
            return "FAILED: session never established"
        if self.violated:
            return "VIOLATED: " + ", ".join(self.violated)
        return "survived"

    def as_dict(self) -> dict:
        """JSON-safe view for the fleet journal.

        The full ``violations`` records (which hold snapshot objects) stay
        behind; ``violated`` carries the invariant names, which is all any
        report renders.
        """
        return {
            "profile": self.profile,
            "intensity": self.intensity,
            "delivered": self.delivered,
            "lost_packets": self.lost_packets,
            "throughput_bytes_per_sec": self.throughput_bytes_per_sec,
            "setup_attempts": self.setup_attempts,
            "established": self.established,
            "violated": list(self.violated),
            "seed": self.seed,
            "plan_hash": self.plan_hash,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosRun":
        return cls(
            profile=data["profile"],
            intensity=data["intensity"],
            delivered=data["delivered"],
            lost_packets=data["lost_packets"],
            throughput_bytes_per_sec=data["throughput_bytes_per_sec"],
            setup_attempts=data["setup_attempts"],
            established=data["established"],
            violated=list(data["violated"]),
            seed=data.get("seed", 0),
            plan_hash=data.get("plan_hash", ""),
            events=data.get("events", 0),
        )


def run_one(
    profile: str,
    plan: FaultPlan,
    seed: int,
    duration_ns: int,
    intensity: float = 0.0,
    flight_recorder=None,
) -> ChaosRun:
    """Run one profile under one fault plan on a fresh testbed.

    ``flight_recorder`` (a :class:`repro.obs.flight.FlightRecorder`) rides
    on the testbed; the invariant monitor snapshots through it at the first
    violation of each invariant.  It never alters the run itself.

    Any exception out of the testbed is re-raised as
    :class:`ChaosPointError` carrying the point's replayable
    ``(plan_hash, seed)`` coordinates, so a campaign worker's failure
    report always says *which run* to replay.
    """
    plan_hash = plan.stable_hash()
    try:
        bed = Testbed(seed=seed)
        bed.flight_recorder = flight_recorder
        tx = bed.add_host(profile_host_config(profile, TX_HOST))
        rx = bed.add_host(profile_host_config(profile, RX_HOST))
        session = CTMSSession(tx.kernel, rx.kernel)
        session.establish()
        monitor = StreamInvariantMonitor(
            bed,
            session,
            max_loss_fraction=SURVIVAL_MAX_LOSS_FRACTION,
            max_interarrival_ns=SURVIVAL_MAX_INTERARRIVAL_NS,
            min_throughput_bytes_per_sec=SURVIVAL_THROUGHPUT_BYTES_PER_SEC,
        ).start()
        FaultInjector(bed, plan).arm()
        bed.run(duration_ns)
        violations = monitor.finish()
    except Exception as exc:
        raise ChaosPointError(
            f"chaos point (plan {plan_hash}, seed {seed}) failed: "
            f"profile {profile}, intensity {intensity:.2f}: "
            f"{type(exc).__name__}: {exc}",
            plan_hash=plan_hash,
            seed=seed,
            profile=profile,
            intensity=intensity,
        ) from exc
    run = ChaosRun(
        profile=profile, intensity=intensity, seed=seed, plan_hash=plan_hash
    )
    run.established = bool(
        session.established is not None
        and session.established.triggered
        and session.error is None
    )
    run.setup_attempts = session.setup_attempts
    run.delivered = session.sink_tracker.delivered
    run.lost_packets = session.sink_tracker.lost_packets
    run.throughput_bytes_per_sec = session.stats.throughput_bytes_per_sec()
    run.violations = violations
    run.violated = monitor.violated()
    run.events = bed.sim.stats_events
    return run


@dataclass
class SurvivalReport:
    """A full campaign: every profile at every intensity."""

    seed: int
    duration_ns: int
    intensities: tuple[float, ...]
    plans: dict[float, FaultPlan] = field(default_factory=dict)
    runs: list[ChaosRun] = field(default_factory=list)

    def runs_for(self, profile: str) -> list[ChaosRun]:
        return [r for r in self.runs if r.profile == profile]

    def survived_count(self, profile: str) -> int:
        return sum(1 for r in self.runs_for(profile) if r.survived())

    def render(self) -> str:
        """Deterministic text report (same seed -> identical bytes)."""
        lines = [
            "Chaos survival: identical fault plans vs stock and CTMSP",
            f"seed {self.seed}, {self.duration_ns / SEC:.3f} s per run, "
            f"invariants: loss <= {SURVIVAL_MAX_LOSS_FRACTION * 100:.2f}%, "
            f"gap <= {SURVIVAL_MAX_INTERARRIVAL_NS / MS:.0f} ms, "
            f">= {SURVIVAL_THROUGHPUT_BYTES_PER_SEC / 1000:.1f} KB/s",
        ]
        for intensity in self.intensities:
            plan = self.plans[intensity]
            lines.append("")
            lines.append(
                f"intensity {intensity:.2f}  ({len(plan)} fault events)"
            )
            for run in self.runs:
                if run.intensity != intensity:
                    continue
                lines.append(
                    f"  {run.profile:<6} delivered {run.delivered:>5}  "
                    f"lost {run.lost_packets:>4}  "
                    f"{run.throughput_bytes_per_sec / 1000:6.1f} KB/s  "
                    f"{run.verdict()}"
                )
        lines.append("")
        totals = ", ".join(
            f"{p} {self.survived_count(p)}/{len(self.intensities)}"
            for p in PROFILES
        )
        lines.append(f"survived: {totals}")
        return "\n".join(lines)


def run_campaign(
    seed: int = 1,
    duration_ns: int = 8 * SEC,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
) -> SurvivalReport:
    """Sweep the intensity axis; both profiles face identical plans."""
    report = SurvivalReport(
        seed=seed, duration_ns=duration_ns, intensities=tuple(intensities)
    )
    for intensity in report.intensities:
        plan = build_plan(seed, intensity, duration_ns)
        report.plans[intensity] = plan
        for profile in PROFILES:
            report.runs.append(
                run_one(profile, plan, seed, duration_ns, intensity=intensity)
            )
    return report


def run_smoke(seed: int = 1, duration_ns: int = 4 * SEC) -> SurvivalReport:
    """A fast single-intensity campaign for test suites and `make chaos`."""
    return run_campaign(
        seed=seed, duration_ns=duration_ns, intensities=(2.0,)
    )
