"""The Section 5.3 ablation matrix as a library.

Runs Test Case B with one of the paper's modifications switched off at a
time, each paired with a memory-intensive compute process on the
transmitter (the paper's own framing of the IOCC contention problem: "If
the CPU is executing a memory intensive computation at the time, the
arbitration between the DMA and the CPU access will degrade the execution
speed of both").  Used by ``benchmarks/test_ablations.py`` and the
``python -m repro ablate`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.session import CTMSSession
from repro.experiments.runner import build_scenario, run_scenario
from repro.experiments.scenarios import Scenario, test_case_b
from repro.sim.units import MS, SEC, US
from repro.unix.process import UserProcess

DEFAULT_DURATION = 25 * SEC


@dataclass
class AblationEntry:
    """Measured effects of one configuration."""

    name: str
    h6_min: int
    h6_p95: int
    h7_p95: int
    lost: int
    delivered: int
    compute_chunks: int
    token_wait_per_frame: float

    def as_row(self) -> list[str]:
        return [
            self.name,
            f"{self.h6_min / US:.0f}",
            f"{self.h6_p95 / US:.0f}",
            f"{self.h7_p95 / US:.0f}",
            str(self.compute_chunks),
            f"{self.token_wait_per_frame / US:.0f}",
            str(self.lost),
        ]


def matrix_variants(duration_ns: int = DEFAULT_DURATION, seed: int = 1):
    """The default one-switch-at-a-time variant set."""
    base = test_case_b(duration_ns=duration_ns, seed=seed)
    return {
        "baseline (Test B)": base,
        "fixed DMA buffers in system memory": base.variant(
            "sysmem",
            tx_use_io_channel_memory=False,
            rx_use_io_channel_memory=False,
        ),
        "recompute TR header per packet": base.variant(
            "header", tx_precompute_header=False
        ),
        "no driver priority for CTMSP": base.variant(
            "noprio", driver_priority_queueing=False
        ),
        "no ring media priority": base.variant("noring", ctmsp_ring_priority=0),
    }


def run_matrix(
    duration_ns: int = DEFAULT_DURATION, seed: int = 1
) -> dict[str, AblationEntry]:
    """Run every variant and summarize."""
    entries: dict[str, AblationEntry] = {}
    for name, scenario in matrix_variants(duration_ns, seed).items():
        entries[name] = run_one(name, scenario)
    return entries


def run_variant(
    name: str, duration_ns: int = DEFAULT_DURATION, seed: int = 1
) -> AblationEntry:
    """Run a single named variant from primitive, picklable arguments.

    The fleet runner's ablation workers call this: a campaign point
    carries only ``(variant, duration_ns, seed)`` across the process
    boundary and the worker rebuilds the scenario here, exactly as
    :func:`run_matrix` would have.
    """
    variants = matrix_variants(duration_ns, seed)
    if name not in variants:
        raise ValueError(
            f"unknown ablation variant {name!r}; known: {sorted(variants)}"
        )
    return run_one(name, variants[name])


def run_one(name: str, scenario: Scenario) -> AblationEntry:
    """One variant with the attached compute-progress probe."""
    result = run_scenario(scenario)

    # Re-run the identical scenario with a memory-intensive computation on
    # the transmitter; its completed work measures DMA cycle stealing.
    progress = {"chunks": 0}

    def compute(proc: UserProcess) -> Generator:
        while True:
            yield from proc.compute(1 * MS)
            progress["chunks"] += 1

    bed, tx, rx, background, _tap = build_scenario(scenario)
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    if background is not None:
        background.start()
    UserProcess(tx.kernel, "memhog").start(compute)
    bed.run(scenario.duration_ns)

    h6 = result.histograms[6]
    h7 = result.histograms[7]
    ring = result.testbed.ring
    frames = ring.stats_by_protocol.get("ctmsp", {"frames": 1})["frames"]
    return AblationEntry(
        name=name,
        h6_min=h6.min(),
        h6_p95=h6.percentile(95),
        h7_p95=h7.percentile(95),
        lost=result.tracker.lost_packets,
        delivered=result.tracker.delivered,
        compute_chunks=progress["chunks"],
        token_wait_per_frame=(
            ring.stats_token_wait_ns.get("ctmsp", 0) / max(1, frames)
        ),
    )


TABLE_HEADERS = [
    "configuration",
    "h6 min(us)",
    "h6 p95(us)",
    "h7 p95(us)",
    "compute done",
    "token wait(us)",
    "lost",
]
