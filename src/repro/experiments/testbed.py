"""Testbed assembly: machines on a ring, kernels on machines.

One :class:`Testbed` is the paper's laboratory: a 70-station 4 Mbit Token
Ring with an Active Monitor (MAC housekeeping traffic, Ring Purges), a
station-insertion process, fully modeled hosts (CPU, kernel, Token Ring and
VCA adapters/drivers), and room for lightweight background-traffic stations
(:mod:`repro.workloads`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.drivers.token_ring import TokenRingDriver, TokenRingDriverConfig
from repro.drivers.vca import VCADriver, VCADriverConfig
from repro.hardware import calibration
from repro.hardware.machine import Machine
from repro.hardware.token_ring_adapter import TokenRingAdapter
from repro.hardware.vca import VoiceCommunicationsAdapter
from repro.ring.monitor import ActiveMonitor, InsertionProcess
from repro.ring.network import TokenRing
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.unix.kernel import Kernel


@dataclass
class HostConfig:
    """Everything configurable about one fully modeled host."""

    name: str
    has_io_channel_memory: bool = True
    multiprogramming: bool = False
    tr: TokenRingDriverConfig = field(default_factory=TokenRingDriverConfig)
    vca: VCADriverConfig = field(default_factory=VCADriverConfig)
    vca_device_number: int = 7
    #: Number of VCA source devices on this host (``vca0``..``vcaN-1``).
    #: A replicated media server carries one slot per concurrent session it
    #: can source; presentation machines keep the single default slot.
    vca_slots: int = 1


class Host:
    """One assembled machine: hardware, kernel, adapters, drivers."""

    def __init__(self, testbed: "Testbed", config: HostConfig) -> None:
        self.config = config
        self.machine = Machine(
            testbed.sim,
            config.name,
            testbed.rng,
            has_io_channel_memory=config.has_io_channel_memory,
        )
        self.kernel = Kernel(
            self.machine, multiprogramming=config.multiprogramming
        )
        self.tr_adapter = TokenRingAdapter(
            self.machine,
            testbed.ring,
            address=config.name,
            ledger=self.kernel.ledger,
            rx_buffer_count=config.tr.rx_buffer_count,
        )
        self.machine.add_adapter("tr0", self.tr_adapter)
        self.tr_driver = TokenRingDriver(self.kernel, self.tr_adapter, config.tr)
        #: VCA adapters/drivers by device name (``vca0``..``vcaN-1``).  The
        #: first slot keeps the historical adapter name ``"vca"`` so its
        #: jitter RNG stream is unchanged on single-slot hosts.
        self.vca_adapters: dict[str, VoiceCommunicationsAdapter] = {}
        self.vca_drivers: dict[str, VCADriver] = {}
        self.kernel.register_device("tr0", self.tr_driver)
        for slot in range(max(1, config.vca_slots)):
            device = f"vca{slot}"
            adapter = VoiceCommunicationsAdapter(
                testbed.sim,
                self.machine.cpu.raise_irq,
                self.machine.rng,
                name="vca" if slot == 0 else device,
            )
            self.machine.add_adapter(device, adapter)
            driver = VCADriver(
                self.kernel,
                adapter,
                config.vca,
                device_number=config.vca_device_number + slot,
            )
            self.kernel.register_device(device, driver)
            self.vca_adapters[device] = adapter
            self.vca_drivers[device] = driver
        self.vca_adapter = self.vca_adapters["vca0"]
        self.vca_driver = self.vca_drivers["vca0"]
        #: Set by the ``server_crash`` fault injector: this host is dead.
        self.crashed = False
        self.kernel.start()

    @property
    def name(self) -> str:
        return self.config.name


class Testbed:
    """The shared laboratory."""

    def __init__(
        self,
        seed: int = 0,
        total_stations: int = calibration.TOKEN_RING_DEFAULT_STATIONS,
        mac_utilization: float = calibration.MAC_TRAFFIC_UTILIZATION_LOW,
        insertions_per_day: float = 0.0,
        soft_errors_per_hour: float = 0.0,
        profile: bool = False,
        scheduler: object = "calendar",
    ) -> None:
        # ``scheduler`` passes straight through to :class:`Simulator` --
        # "heapq" or a constructed backend for A/B and tuning runs.
        self.sim = Simulator(profile=profile, scheduler=scheduler)
        #: Optional observability flight recorder (``repro.obs.flight``).
        #: Invariant monitors snapshot through it, duck-typed, when set.
        self.flight_recorder = None
        self.rng = RandomStreams(seed)
        self.ring = TokenRing(self.sim, total_stations=total_stations)
        self.monitor = ActiveMonitor(
            self.sim, self.ring, self.rng,
            mac_utilization=mac_utilization,
            soft_errors_per_hour=soft_errors_per_hour,
        )
        self.inserter = InsertionProcess(
            self.sim, self.monitor, self.rng,
            insertions_per_day=insertions_per_day,
        )
        self.hosts: dict[str, Host] = {}
        self._started = False

    def add_host(self, config: HostConfig) -> Host:
        """Attach one fully modeled machine to the ring."""
        if config.name in self.hosts:
            raise ValueError(f"duplicate host {config.name!r}")
        host = Host(self, config)
        self.hosts[config.name] = host
        return host

    def start_environment(self) -> None:
        """Start MAC housekeeping traffic and station insertions."""
        if self._started:
            return
        self._started = True
        self.monitor.start()
        self.inserter.start()

    def run(self, duration_ns: int) -> None:
        """Advance the laboratory clock."""
        self.start_environment()
        self.sim.run(until=self.sim.now + duration_ns)
