"""The BASELINE experiment: the stock UNIX path at 16 vs 150 KB/s.

Section 1: "The initial test was to transport 16KBytes/sec of audio data
(8K samples/sec, 12 bit/sample).  This worked extremely well within the
current UNIX model.  We then tested the use of 150KBytes/sec to simulate
compressed video or Compact Disc quality audio.  This test of data transport
failed completely."

The stock path is the Figure 2-1 relay: a user process reads the VCA
character device and writes a UDP socket; on the receiver another process
reads the socket and writes the sink device.  Both machines run in
multiprocessing mode with a competing compute-bound process, so the relay
is exposed to scheduler quantum delays -- together with the per-packet copy
bill, what sinks the 150 KB/s case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.experiments.testbed import Host, HostConfig, Testbed
from repro.drivers.vca import VCADriverConfig
from repro.hardware import calibration
from repro.protocols.stack import NetStack
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess

#: UDP port the relay streams to.
STREAM_PORT = 5500


@dataclass
class BaselineResult:
    """What one stock-UNIX run produced."""

    rate_bytes_per_sec: int
    bytes_per_period: int
    duration_ns: int
    periods_produced: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    device_overruns: int = 0
    socket_drops: int = 0
    sink_write_times: list[int] = field(default_factory=list)

    @property
    def delivered_fraction(self) -> float:
        if self.periods_produced == 0:
            return 0.0
        return self.packets_delivered / self.periods_produced

    @property
    def glitches(self) -> int:
        """Lost device periods: overruns at the source plus socket drops."""
        return self.device_overruns + self.socket_drops

    def glitch_rate_per_sec(self) -> float:
        return self.glitches / (self.duration_ns / SEC)

    def achieved_bytes_per_sec(self) -> float:
        return (
            self.packets_delivered
            * self.bytes_per_period
            / (self.duration_ns / SEC)
        )

    def works(self) -> bool:
        """The paper's pass criterion: essentially no glitches."""
        return self.delivered_fraction > 0.99 and self.glitch_rate_per_sec() < 0.1


def run_stock_relay(
    rate_bytes_per_sec: int,
    duration_ns: int = 20 * SEC,
    seed: int = 3,
    competing_load: bool = True,
) -> BaselineResult:
    """Stream ``rate_bytes_per_sec`` through the stock UNIX relay."""
    bytes_per_period = max(
        1, round(rate_bytes_per_sec * calibration.VCA_INTERRUPT_PERIOD / SEC)
    )
    bed = Testbed(seed=seed, mac_utilization=0.002)
    vca_cfg = VCADriverConfig(
        packet_bytes=bytes_per_period,
        device_bytes_per_period=bytes_per_period,
    )
    tx = bed.add_host(
        HostConfig(name="transmitter", multiprogramming=True, vca=vca_cfg)
    )
    rx = bed.add_host(
        HostConfig(name="receiver", multiprogramming=True, vca=vca_cfg)
    )
    tx.stack = NetStack(tx.kernel, tx.tr_driver)
    rx.stack = NetStack(rx.kernel, rx.tr_driver)
    result = BaselineResult(
        rate_bytes_per_sec=rate_bytes_per_sec,
        bytes_per_period=bytes_per_period,
        duration_ns=duration_ns,
    )

    rx_sock = rx.stack.udp_socket(STREAM_PORT)

    def sender(proc: UserProcess) -> Generator:
        sock = tx.stack.udp_socket(STREAM_PORT)
        yield from proc.ioctl("vca0", "STOCK_START")
        while True:
            got = yield from proc.read("vca0", bytes_per_period)
            yield from sock.sendto("receiver", STREAM_PORT, got)
            result.packets_sent += 1

    def receiver(proc: UserProcess) -> Generator:
        while True:
            dgram = yield from rx_sock.recvfrom()
            yield from proc.write("vca0", dgram.data_bytes)
            result.packets_delivered += 1
            result.sink_write_times.append(bed.sim.now)

    def hog(proc: UserProcess) -> Generator:
        # A competing compute-bound process ("multiprocessing mode"): it
        # never blocks, so the relay shares the CPU round-robin.
        while True:
            yield from proc.compute(50 * MS)

    UserProcess(rx.kernel, "relay-rx").start(receiver)
    UserProcess(tx.kernel, "relay-tx").start(sender)
    if competing_load:
        UserProcess(tx.kernel, "hog-tx").start(hog)
        UserProcess(rx.kernel, "hog-rx").start(hog)
    bed.run(duration_ns)

    result.periods_produced = tx.vca_adapter.stats_interrupts
    result.device_overruns = tx.vca_driver.stats_stock_overruns
    result.socket_drops = rx_sock.stats_drops_full_buffer
    return result


def run_rate_comparison(
    duration_ns: int = 20 * SEC, seed: int = 3
) -> dict[int, BaselineResult]:
    """The Section 1 pair: 16 KB/s (works) vs 150 KB/s (fails)."""
    return {
        16_000: run_stock_relay(16_000, duration_ns, seed),
        150_000: run_stock_relay(150_000, duration_ns, seed),
    }
