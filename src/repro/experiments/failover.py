"""The failover chaos campaign: does a control plane save the streams?

The survival campaign (:mod:`repro.experiments.chaos`) hardens one stream
against fault weather; this campaign asks the scale-out question the
paper's single-server prototype left open.  Four clients ask three
replicated media servers for streams on a ring that can carry *two* of
them (each CTMSP stream's gross wire rate is ~167 KB/s against a 4 Mbit
segment), and halfway through the run ``server-a`` fail-stops.  Three
control modes face that identical demand and identical crash:

* ``none`` -- no control plane at all: every request lands first-fit on
  ``server-a`` (the naive deployment), oversubscribing both the ring and
  the station, then losing every stream when the server dies;
* ``admission`` -- the bandwidth-ledger control plane admits what fits
  (one stream per server station, two per ring segment) and queues the
  rest, but has no failover: the crash strands the session on the dead
  server;
* ``failover`` -- admission plus the watchdog: the stranded session
  re-establishes on the idle replica ``server-c`` from its sequence
  high-water mark, with a bounded delivery glitch.

The one-stream-per-station ledger budget is not arbitrary: a station's
per-frame service time (DMA fetch, token capture, circulation) is ~10 ms
against the 12 ms CTMSP period, so a second stream on the same adapter
oversubscribes the *station* even when the ring has headroom.  That is
why the deployment keeps a hot-spare replica instead of doubling up.

Every run is derived from the seed, so a campaign renders byte-identical
reports across repeats and across ``--jobs`` levels (the fleet harness
re-renders from journaled results in spec order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.control import ControlPlaneConfig, SessionControlPlane
from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig, Testbed
from repro.faults.injectors import FaultInjector
from repro.faults.invariants import StreamInvariantMonitor
from repro.faults.plan import FaultPlan
from repro.sim.units import MS, SEC
from repro.workloads.churn import HOLD_FOREVER, ChurnDriver, ChurnSchedule

#: Control modes, in render order.
MODES = ("none", "admission", "failover")

#: The replicated media servers and the client population.
SERVERS = ("server-a", "server-b", "server-c")
CLIENTS = ("client-1", "client-2", "client-3", "client-4")

#: Source slots per server: enough for the whole client population, so the
#: ``none`` mode can physically pin every stream to one server.
SERVER_SLOTS = len(CLIENTS)

#: Slots the *control plane* will use per server: one.  A station's
#: per-frame service time is ~10 ms against the 12 ms CTMSP period, so a
#: second concurrent stream from the same adapter builds an unbounded
#: transmit backlog regardless of ring headroom.
CONTROL_SLOTS_PER_SERVER = 1

#: Invariants shared with the survival campaign.
MAX_INTERARRIVAL_NS = 150 * MS
MAX_LOSS_FRACTION = 0.01

#: The failover glitch budget: detection (~100 ms worst case) plus the
#: jittered backoff plus one establish handshake, with slack.
FAILOVER_GAP_BUDGET_NS = 600 * MS

#: Monitor-side storm budget: one establish round per failover.
MAX_FAILOVER_ROUNDS = 1


def build_churn(duration_ns: int) -> ChurnSchedule:
    """The demand every mode faces: four staggered arrivals, held forever.

    Hand-built rather than random so the scenario is legible: the point of
    the campaign is the *crash*, and a fixed arrival ramp makes the three
    modes' admission decisions directly comparable.
    """
    schedule = ChurnSchedule()
    for i, client in enumerate(CLIENTS):
        schedule.add(
            at_ns=(150 + 100 * i) * MS,
            client=client,
            duration_ns=HOLD_FOREVER,
        )
    return schedule


def build_crash_plan(duration_ns: int) -> FaultPlan:
    """One fail-stop crash of ``server-a`` halfway through the run."""
    return FaultPlan().server_crash(at_ns=duration_ns // 2, host=SERVERS[0])


def _build_testbed(seed: int) -> Testbed:
    bed = Testbed(seed=seed)
    for server in SERVERS:
        bed.add_host(HostConfig(name=server, vca_slots=SERVER_SLOTS))
    for client in CLIENTS:
        bed.add_host(HostConfig(name=client))
    return bed


def control_plane_config(mode: str) -> Optional[ControlPlaneConfig]:
    """The control plane each mode runs (``None`` for the baseline)."""
    if mode == "none":
        return None
    if mode == "admission":
        return ControlPlaneConfig(failover_enabled=False)
    if mode == "failover":
        return ControlPlaneConfig()
    raise ValueError(f"unknown mode {mode!r}; known: {MODES}")


@dataclass
class SessionOutcome:
    """One session's fate, JSON-safe for the fleet journal."""

    client: str
    decision: str
    state: str
    established: bool = False
    delivered: int = 0
    lost_packets: int = 0
    failovers: int = 0
    violated: list[str] = field(default_factory=list)

    def survived(self) -> bool:
        return self.established and not self.violated

    def verdict(self) -> str:
        if self.decision in ("queue", "reject"):
            return self.decision + "d"
        if not self.established:
            return "FAILED: never established"
        if self.violated:
            return "VIOLATED: " + ", ".join(self.violated)
        return "survived"

    def as_dict(self) -> dict:
        return {
            "client": self.client,
            "decision": self.decision,
            "state": self.state,
            "established": self.established,
            "delivered": self.delivered,
            "lost_packets": self.lost_packets,
            "failovers": self.failovers,
            "violated": list(self.violated),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionOutcome":
        return cls(
            client=data["client"],
            decision=data["decision"],
            state=data["state"],
            established=data["established"],
            delivered=data["delivered"],
            lost_packets=data["lost_packets"],
            failovers=data["failovers"],
            violated=list(data["violated"]),
        )


@dataclass
class FailoverRun:
    """One mode's fate under the shared churn and crash."""

    mode: str
    seed: int = 0
    churn_hash: str = ""
    plan_hash: str = ""
    sessions: list[SessionOutcome] = field(default_factory=list)
    #: Control-plane counter snapshot (empty for mode ``none``).
    control: dict = field(default_factory=dict)
    #: Calendar entries dispatched (the observe-only guard pins this).
    events: int = 0

    def admitted(self) -> list[SessionOutcome]:
        return [s for s in self.sessions if s.decision == "admit"]

    def survived_count(self) -> int:
        return sum(1 for s in self.admitted() if s.survived())

    def survival_line(self) -> str:
        admitted = self.admitted()
        return f"{self.survived_count()}/{len(admitted)}"

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "churn_hash": self.churn_hash,
            "plan_hash": self.plan_hash,
            "sessions": [s.as_dict() for s in self.sessions],
            "control": dict(self.control),
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailoverRun":
        return cls(
            mode=data["mode"],
            seed=data["seed"],
            churn_hash=data["churn_hash"],
            plan_hash=data["plan_hash"],
            sessions=[
                SessionOutcome.from_dict(s) for s in data["sessions"]
            ],
            control=dict(data["control"]),
            events=data["events"],
        )


class _MonitorPool:
    """Attaches an invariant monitor to each session as it materializes.

    Control-plane sessions come into being lazily (on admission, or on a
    queue drain), so the pool sweeps on the control tick cadence and arms
    a monitor the first time a managed session carries a real
    :class:`~repro.core.session.CTMSSession`.  Managed sessions serve as
    the monitor's ``session`` (they delegate ``stats``/``sink_tracker``)
    *and* as its ``failover_source``, so delivery accounting stays
    continuous across server moves.
    """

    def __init__(self, bed: Testbed, plane: SessionControlPlane) -> None:
        self.bed = bed
        self.plane = plane
        self.monitors: dict[int, StreamInvariantMonitor] = {}

    def start(self) -> "_MonitorPool":
        self.bed.sim.schedule(self.plane.config.tick_ns, self._sweep)
        return self

    def _sweep(self) -> None:
        for ms in self.plane.sessions:
            if ms.session is None or ms.control_id in self.monitors:
                continue
            self.monitors[ms.control_id] = StreamInvariantMonitor(
                self.bed,
                ms,
                max_loss_fraction=MAX_LOSS_FRACTION,
                max_interarrival_ns=MAX_INTERARRIVAL_NS,
                failover_source=ms,
                failover_gap_budget_ns=FAILOVER_GAP_BUDGET_NS,
                max_failover_rounds=MAX_FAILOVER_ROUNDS,
            ).start()
        self.bed.sim.schedule(self.plane.config.tick_ns, self._sweep)


def _run_controlled(
    mode: str, bed: Testbed, duration_ns: int, observer
) -> tuple[list[SessionOutcome], dict, "SessionControlPlane"]:
    """Run a control-plane mode; returns per-session outcomes."""
    plane = SessionControlPlane(
        bed, config=control_plane_config(mode), observer=observer
    )
    for server in SERVERS:
        plane.register_server(server, slots=CONTROL_SLOTS_PER_SERVER)
    plane.start()
    driver = ChurnDriver(bed, plane, build_churn(duration_ns)).arm()
    pool = _MonitorPool(bed, plane).start()
    bed.run(duration_ns)
    plane.stop()
    plane.finish()
    outcomes = []
    for ms in plane.sessions:
        outcome = SessionOutcome(
            client=ms.client, decision=ms.decision, state=ms.state
        )
        monitor = pool.monitors.get(ms.control_id)
        if ms.session is not None:
            outcome.established = bool(
                ms.session.established is not None
                and ms.session.established.triggered
                and ms.session.established.ok
            )
            outcome.delivered = ms.sink_tracker.delivered
            outcome.lost_packets = ms.sink_tracker.lost_packets
        outcome.failovers = len(ms.failovers)
        if monitor is not None:
            monitor.finish()
            outcome.violated = monitor.violated()
        outcomes.append(outcome)
    return outcomes, plane.snapshot(), plane


def _run_uncontrolled(
    bed: Testbed, duration_ns: int
) -> list[SessionOutcome]:
    """The ``none`` baseline: first-fit everything onto the first server.

    Deliberately policy-free (this is the *absence* of a control plane):
    each arrival takes the next source slot on ``server-a`` in arrival
    order, establishes, and is never watched, shed, or failed over.
    """
    source = bed.hosts[SERVERS[0]]
    sessions: list[tuple[str, CTMSSession]] = []
    monitors: list[StreamInvariantMonitor] = []

    def arrive(slot: int, client: str) -> None:
        session = CTMSSession(
            source.kernel,
            bed.hosts[client].kernel,
            source_vca_device=f"vca{slot}",
            sink_vca_device="vca0",
        )
        session.establish()
        sessions.append((client, session))
        monitors.append(
            StreamInvariantMonitor(
                bed,
                session,
                max_loss_fraction=MAX_LOSS_FRACTION,
                max_interarrival_ns=MAX_INTERARRIVAL_NS,
            ).start()
        )

    for slot, request in enumerate(build_churn(duration_ns).sorted_requests()):
        bed.sim.schedule(request.at_ns, arrive, slot, request.client)
    bed.run(duration_ns)
    outcomes = []
    for (client, session), monitor in zip(sessions, monitors):
        monitor.finish()
        outcomes.append(
            SessionOutcome(
                client=client,
                decision="admit",  # nothing said no
                state="streaming" if monitor.ok() else "stranded",
                established=bool(
                    session.established is not None
                    and session.established.triggered
                    and session.established.ok
                ),
                delivered=session.sink_tracker.delivered,
                lost_packets=session.sink_tracker.lost_packets,
                violated=monitor.violated(),
            )
        )
    return outcomes


def run_failover_one(
    mode: str,
    seed: int,
    duration_ns: int,
    observer=None,
) -> FailoverRun:
    """Run one mode under the shared churn + crash on a fresh testbed.

    ``observer`` (a :class:`repro.obs.controlstats.ControlPlaneMetrics`)
    receives the control plane's counters/decisions; it is observe-only
    and must not perturb a single event (the guard test pins this).
    """
    churn = build_churn(duration_ns)
    plan = build_crash_plan(duration_ns)
    bed = _build_testbed(seed)
    FaultInjector(bed, plan).arm()
    run = FailoverRun(
        mode=mode,
        seed=seed,
        churn_hash=churn.stable_hash(),
        plan_hash=plan.stable_hash(),
    )
    if mode == "none":
        run.sessions = _run_uncontrolled(bed, duration_ns)
    else:
        run.sessions, run.control, _ = _run_controlled(
            mode, bed, duration_ns, observer
        )
    run.events = bed.sim.stats_events
    return run


@dataclass
class FailoverReport:
    """A full campaign: every control mode against the same crash."""

    seed: int
    duration_ns: int
    modes: tuple[str, ...] = MODES
    runs: list[FailoverRun] = field(default_factory=list)

    def run_for(self, mode: str) -> Optional[FailoverRun]:
        for run in self.runs:
            if run.mode == mode:
                return run
        return None

    def render(self) -> str:
        """Deterministic text report (same seed -> identical bytes)."""
        lines = [
            "Failover chaos: identical churn + server crash vs control modes",
            f"seed {self.seed}, {self.duration_ns / SEC:.3f} s per run, "
            f"crash at {self.duration_ns / 2 / SEC:.3f} s, "
            f"glitch budget {FAILOVER_GAP_BUDGET_NS / MS:.0f} ms",
        ]
        for mode in self.modes:
            run = self.run_for(mode)
            if run is None:
                continue
            lines.append("")
            lines.append(f"mode {mode}  (plan {run.plan_hash})")
            for s in run.sessions:
                lines.append(
                    f"  {s.client:<10} {s.decision:<7} "
                    f"delivered {s.delivered:>5}  lost {s.lost_packets:>4}  "
                    f"failovers {s.failovers}  {s.verdict()}"
                )
            if run.control:
                c = run.control
                lines.append(
                    f"  control: admitted {c['admitted']} "
                    f"queued {c['queued']} rejected {c['rejected']} "
                    f"failovers {c['failovers']} stranded {c['stranded']}"
                )
        lines.append("")
        totals = ", ".join(
            f"{mode} {run.survival_line()}"
            for mode in self.modes
            for run in [self.run_for(mode)]
            if run is not None
        )
        lines.append(f"admitted sessions surviving the crash: {totals}")
        return "\n".join(lines)


def run_failover_campaign(
    seed: int = 1,
    duration_ns: int = 6 * SEC,
    modes: tuple[str, ...] = MODES,
) -> FailoverReport:
    """Sweep the control-mode axis; all modes face the identical crash."""
    report = FailoverReport(
        seed=seed, duration_ns=duration_ns, modes=tuple(modes)
    )
    for mode in report.modes:
        report.runs.append(run_failover_one(mode, seed, duration_ns))
    return report


def run_failover_smoke(seed: int = 1, duration_ns: int = 4 * SEC) -> FailoverReport:
    """A fast campaign for test suites and ``make chaos``."""
    return run_failover_campaign(seed=seed, duration_ns=duration_ns)
