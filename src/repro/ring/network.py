"""The token-passing medium.

Access mechanics modeled:

* one token; a station may capture it only for a frame whose priority is at
  least the token's priority;
* one frame per capture; the transmitter releases a new token after its frame
  has circulated back (release = capture + serialization + ring latency);
* the released token's priority is raised to the highest priority waiting
  anywhere on the ring (the 802.5 reservation mechanism, simplified: we skip
  the stacking-station bookkeeping but keep its observable effect -- a
  waiting CTMSP frame gets the very next token, and the priority decays to 0
  as soon as nothing high-priority is waiting);
* Ring Purge makes the ring unusable for its duration and loses the frame in
  flight, *without telling the transmitter* -- the paper's sole uncorrectable
  loss (the stock adapter gives no Ring Purge interrupt, Section 4).

The token's position advances analytically while the ring is idle, so an
idle ring costs zero simulation events.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware import calibration
from repro.ring.frames import BROADCAST, Frame, FrameClass
from repro.sim.engine import Handle, SimulationError, Simulator

#: Time for the 3-byte token itself to pass a station.
TOKEN_TIME_NS = calibration.TOKEN_BYTES * calibration.TOKEN_RING_NS_PER_BYTE

#: Transmit-completion status values passed to ``on_complete`` callbacks.
TX_OK = "ok"
TX_LOST_IN_PURGE = "lost_in_purge"


class _Request:
    __slots__ = ("station", "frame", "on_complete", "enqueued_at")

    def __init__(self, station, frame, on_complete, enqueued_at):
        self.station = station
        self.frame = frame
        self.on_complete = on_complete
        self.enqueued_at = enqueued_at


class TokenRing:
    """A 4 Mbit token ring shared by all attached stations.

    Parameters
    ----------
    sim:
        The simulator.
    total_stations:
        Physical ring size used for latency computation; the paper's ring had
        70 stations even though only a handful are modeled in software.
    """

    def __init__(
        self,
        sim: Simulator,
        total_stations: int = calibration.TOKEN_RING_DEFAULT_STATIONS,
    ) -> None:
        if total_stations < 2:
            raise ValueError("a ring needs at least two stations")
        self.sim = sim
        self.total_stations = total_stations
        self.hop_ns = calibration.STATION_LATENCY_NS
        self.stations: list = []
        self._by_address: dict[str, object] = {}
        #: Wire observers (TAP): called as fn(frame, t_wire_start, status).
        self.monitors: list[Callable[[Frame, int, str], None]] = []
        #: Fault-injection hooks: each is called with the frame at capture
        #: time; if any returns True the frame is corrupted on the wire --
        #: it occupies the medium normally and the transmitter sees a normal
        #: completion (the paper's silent-loss semantics, Section 4), but no
        #: station receives it.  Installed by
        #: :class:`repro.faults.injectors.FaultInjector`.
        self.fault_filters: list[Callable[[Frame], bool]] = []

        # token state.  Capture/release/delivery are scheduled with the
        # allocation-free tier and cancelled *logically*: each carries the
        # epoch counter current when it was queued, and a bump (purge,
        # capture retarget) makes in-flight entries identify themselves as
        # stale and return.  Only the rare purge-resume keeps a Handle.
        self._token_priority = 0
        self._token_ref_pos = 0.0
        self._token_ref_time = 0
        self._holder: Optional[_Request] = None
        self._capture_epoch = 0
        self._capture_time = -1  # arrival of the pending capture, -1 if none
        self._capture_target: Optional[_Request] = None
        self._release_epoch = 0
        self._delivery_epoch = 0
        self._down_until = 0
        self._purge_resume: Optional[Handle] = None
        self._requests: list[_Request] = []

        # --- statistics ---
        self.stats_frames_sent = 0
        self.stats_frames_lost_to_purge = 0
        self.stats_frames_lost_to_fault = 0
        self.stats_lost_by_protocol: dict[str, int] = {}
        self.stats_busy_ns = 0
        self.stats_purges = 0
        self.stats_by_protocol: dict[str, dict[str, int]] = {}
        self.stats_token_wait_ns: dict[str, int] = {}

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, station) -> int:
        """Attach ``station``; returns its ring position."""
        if station.address in self._by_address:
            raise ValueError(f"duplicate ring address {station.address!r}")
        position = len(self.stations)
        if position >= self.total_stations:
            raise SimulationError(
                "more modeled stations than physical ring positions"
            )
        self.stations.append(station)
        self._by_address[station.address] = station
        return position

    @property
    def ring_latency_ns(self) -> int:
        """One full circulation of the quiescent ring."""
        return self.total_stations * self.hop_ns

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def request_transmit(
        self,
        station,
        frame: Frame,
        on_complete: Optional[Callable[[Frame, str], None]] = None,
    ) -> None:
        """Queue ``frame`` for transmission from ``station``.

        ``on_complete(frame, status)`` fires when the transmitting adapter
        sees its transmission finish.  ``status`` is :data:`TX_LOST_IN_PURGE`
        when a Ring Purge destroyed the frame -- information the *ring* has
        but which stock adapter firmware does not surface to the driver
        (Section 4); adapter models decide what to do with it.
        """
        self._requests.append(
            _Request(station, frame, on_complete, self.sim.now)
        )
        self._evaluate()

    # ------------------------------------------------------------------
    # token mechanics
    # ------------------------------------------------------------------
    def _token_position(self, at_time: int) -> float:
        elapsed = at_time - self._token_ref_time
        return (self._token_ref_pos + elapsed / self.hop_ns) % self.total_stations

    def _evaluate(self) -> None:
        """(Re)schedule the next token capture if the ring is free."""
        if self._holder is not None or not self._requests:
            return
        now = self.sim.now
        if now < self._down_until:
            self._schedule_purge_resume()
            return
        requests = self._requests
        if len(requests) == 1:
            # Dominant case on a clean ring: one waiting frame.  The general
            # path below reduces to "lower the token to its priority if
            # needed and capture at its station" -- skip the comprehensions.
            request = requests[0]
            if request.frame.priority < self._token_priority:
                self._token_priority = request.frame.priority
            pos = self._token_position(now)
            hops = (request.station.position - pos) % self.total_stations
            arrival = now + round(hops * self.hop_ns) + TOKEN_TIME_NS
        else:
            eligible = [
                r for r in requests if r.frame.priority >= self._token_priority
            ]
            if not eligible:
                # Nothing may take the token at its current priority; in real
                # 802.5 the stacking station lowers it after one rotation.
                self._token_priority = max(r.frame.priority for r in requests)
                eligible = [
                    r
                    for r in requests
                    if r.frame.priority >= self._token_priority
                ]
            pos = self._token_position(now)
            best: Optional[tuple[tuple[int, int], _Request]] = None
            for request in eligible:
                hops = (request.station.position - pos) % self.total_stations
                arrival = now + round(hops * self.hop_ns) + TOKEN_TIME_NS
                # Tie-break equal arrivals (same station) by priority: a
                # station that captures the token sends its most urgent frame
                # first (pinned by the hop-level reference model).
                key = (arrival, -request.frame.priority)
                if best is None or key < best[0]:
                    best = (key, request)
            assert best is not None
            (arrival, _neg_priority), request = best
        if self._capture_time >= 0:
            if self._capture_target is request and self._capture_time <= arrival:
                return
            self._capture_epoch += 1  # invalidate the pending capture
        self._capture_target = request
        self._capture_time = arrival
        self.sim.at_fast(arrival, self._capture, request, self._capture_epoch)

    def _capture(self, request: _Request, epoch: int) -> None:
        if epoch != self._capture_epoch:
            return  # retargeted or purged since this entry was queued
        self._capture_time = -1
        self._capture_target = None
        if request not in self._requests:  # pragma: no cover - defensive
            self._evaluate()
            return
        self._requests.remove(request)
        self._holder = request
        frame = request.frame
        now = self.sim.now
        self.stats_token_wait_ns[frame.protocol] = (
            self.stats_token_wait_ns.get(frame.protocol, 0)
            + (now - request.enqueued_at)
        )
        wire = frame.wire_time_ns
        self.stats_busy_ns += wire
        # Per-protocol accounting, inline: this runs once per frame on the
        # wire and is the hottest non-CPU dispatch in the tree.
        entry = self.stats_by_protocol.get(frame.protocol)
        if entry is None:
            entry = self.stats_by_protocol[frame.protocol] = {
                "frames": 0, "bytes": 0, "wire_ns": 0
            }
        entry["frames"] += 1
        entry["bytes"] += frame.info_bytes + frame.framing_bytes
        entry["wire_ns"] += wire
        faulted = bool(self.fault_filters) and any(
            flt(frame) for flt in self.fault_filters
        )
        for monitor in self.monitors:
            monitor(frame, now, "lost" if faulted else "wire")
        # Deliveries: each destination sees the full frame after it has
        # traveled the intervening hops and been fully serialized.  A frame
        # corrupted by an injected fault still occupies the wire for its
        # full serialization but reaches no one; the transmitter is not
        # told (status stays TX_OK at release).
        if faulted:
            self.stats_frames_lost_to_fault += 1
            self.stats_lost_by_protocol[frame.protocol] = (
                self.stats_lost_by_protocol.get(frame.protocol, 0) + 1
            )
        else:
            src_pos = request.station.position
            delivery_epoch = self._delivery_epoch
            for dst in self._destinations(frame):
                hops = (dst.position - src_pos) % self.total_stations
                t_rx = wire + round(hops * self.hop_ns)
                self.sim.schedule_fast(
                    t_rx, self._deliver, dst, frame, delivery_epoch
                )
        release_after = wire + self.ring_latency_ns
        self.sim.schedule_fast(
            release_after, self._release, request, TX_OK, self._release_epoch
        )

    def _destinations(self, frame: Frame) -> list:
        if frame.dst == BROADCAST:
            return [s for s in self.stations if s.address != frame.src]
        dst = self._by_address.get(frame.dst)
        return [dst] if dst is not None else []

    def _deliver(self, dst, frame: Frame, epoch: int) -> None:
        if epoch != self._delivery_epoch:
            return  # the frame was lost to a purge while in flight
        dst.on_frame(frame)

    def _release(self, request: _Request, status: str, epoch: int) -> None:
        if epoch != self._release_epoch:
            return  # the holder lost its frame to a purge
        self._holder = None
        # Reservation: the released token carries the highest waiting
        # priority; 0 when nothing waits.
        priority = 0
        for r in self._requests:
            if r.frame.priority > priority:
                priority = r.frame.priority
        self._token_priority = priority
        # The released token departs *downstream*: the releasing station
        # cannot recapture it until it circulates the whole ring (caught by
        # cross-validation against the hop-level reference model).
        self._token_ref_pos = (
            request.station.position + 0.001
        ) % self.total_stations
        self._token_ref_time = self.sim.now
        self.stats_frames_sent += 1
        if request.on_complete is not None:
            request.on_complete(request.frame, status)
        self._evaluate()

    # ------------------------------------------------------------------
    # Ring Purge
    # ------------------------------------------------------------------
    def purge(self, duration: int = calibration.RING_PURGE_DURATION) -> None:
        """The Active Monitor purges the ring.

        The ring is unusable until the purge completes; a frame in flight is
        lost.  The transmitter still sees a normal transmit completion at the
        time its serialization would have ended (stock firmware surfaces no
        purge indication), but with status :data:`TX_LOST_IN_PURGE` so that
        *optional* recovery models (Section 4's hypothetical purge-interrupt
        mode) can be built on top.
        """
        now = self.sim.now
        self.stats_purges += 1
        self._down_until = max(self._down_until, now + duration)
        if self._capture_time >= 0:
            self._capture_epoch += 1
            self._capture_time = -1
            self._capture_target = None
        if self._holder is not None:
            lost = self._holder
            self._holder = None
            # Logically cancel the in-flight deliveries and the pending
            # release: bump their epochs so the queued entries no-op.
            self._delivery_epoch += 1
            self._release_epoch += 1
            self.stats_frames_lost_to_purge += 1
            proto = lost.frame.protocol
            self.stats_lost_by_protocol[proto] = (
                self.stats_lost_by_protocol.get(proto, 0) + 1
            )
            for monitor in self.monitors:
                monitor(lost.frame, now, "lost")
            # The adapter believes the transmit completed normally at the
            # time serialization would have finished.
            tx_end = max(now + 1, now)  # serialization truncated by the purge
            self.sim.at(
                tx_end, self._notify_lost_transmitter, lost
            )
        self._schedule_purge_resume()

    def _notify_lost_transmitter(self, request: _Request) -> None:
        if request.on_complete is not None:
            request.on_complete(request.frame, TX_LOST_IN_PURGE)

    def _schedule_purge_resume(self) -> None:
        if self._purge_resume is not None:
            if self._purge_resume.time >= self._down_until:
                return
            self._purge_resume.cancel()
        self._purge_resume = self.sim.at(self._down_until, self._purge_done)

    def _purge_done(self) -> None:
        self._purge_resume = None
        if self.sim.now < self._down_until:
            self._schedule_purge_resume()
            return
        # Fresh token from the Active Monitor at priority 0, position 0.
        self._token_priority = 0
        self._token_ref_pos = 0.0
        self._token_ref_time = self.sim.now
        self._evaluate()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` the wire carried frames."""
        return self.stats_busy_ns / elapsed_ns if elapsed_ns else 0.0

    def pending_count(self) -> int:
        """Frames queued ring-wide awaiting the token."""
        return len(self._requests) + (1 if self._holder else 0)
