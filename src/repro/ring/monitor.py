"""The Active Monitor and the station-insertion process.

Section 4/5: Ring Purges "occur on the network primarily due to new stations
inserting into the network or old stations reinserting"; measurement put them
at ~20 a day (about one an hour), and a single insertion was observed to
cause "on the order of 10 Ring Purges back to back" -- the explanation for
the two 120-130 ms outliers in Figure 5-4.

The Active Monitor also sources the ring's MAC housekeeping traffic, which
the paper measured at 0.2-1.0 % of the 4 Mbit ring (50-250 frames/s of
~20-byte frames).
"""

from __future__ import annotations

from typing import Optional

from repro.hardware import calibration
from repro.ring.frames import mac_frame, ring_purge_frame
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import DAY, SEC


class ActiveMonitor:
    """The ring's Active Monitor station.

    Generates MAC housekeeping frames at a configurable ring utilization and
    executes Ring Purges on demand (the :class:`InsertionProcess` calls in).
    """

    def __init__(
        self,
        sim: Simulator,
        ring: TokenRing,
        rng: RandomStreams,
        mac_utilization: float = calibration.MAC_TRAFFIC_UTILIZATION_LOW,
        address: str = "active-monitor",
        soft_errors_per_hour: float = 0.0,
    ) -> None:
        if not 0.0 <= mac_utilization < 0.5:
            raise ValueError(f"implausible MAC utilization {mac_utilization}")
        if soft_errors_per_hour < 0:
            raise ValueError("negative soft-error rate")
        self.sim = sim
        self.ring = ring
        self.station = RingStation(ring, address)
        self.mac_utilization = mac_utilization
        #: Section 5: "a soft error on the Token Ring and the Token Ring
        #: timing out and resetting of the network" -- isolated single
        #: purges not caused by insertions, at a low Poisson rate.
        self.soft_errors_per_hour = soft_errors_per_hour
        self._rng = rng.get("active-monitor")
        self._mac_gap_rate: Optional[float] = None
        self._running = False
        self.stats_mac_frames = 0
        self.stats_purges_issued = 0
        self.stats_soft_errors = 0

    def start(self) -> None:
        """Begin emitting MAC housekeeping traffic and soft-error purges."""
        if self._running:
            return
        self._running = True
        if self.mac_utilization > 0:
            self.sim.schedule_fast(self._next_gap(), self._emit_mac)
        if self.soft_errors_per_hour > 0:
            self._schedule_soft_error()

    def stop(self) -> None:
        self._running = False

    def _schedule_soft_error(self) -> None:
        from repro.sim.units import HOUR

        gap = max(
            1,
            round(self._rng.expovariate(self.soft_errors_per_hour / HOUR)),
        )
        self.sim.schedule_fast(gap, self._soft_error)

    def _soft_error(self) -> None:
        if not self._running:
            return
        self.stats_soft_errors += 1
        self.purge()
        self._schedule_soft_error()

    def _next_gap(self) -> int:
        # Mean inter-frame gap so that MAC wire time / total time equals the
        # requested utilization; exponential spacing.  The MAC wire time is
        # a constant, so the rate is computed once and cached.
        rate = self._mac_gap_rate
        if rate is None:
            wire = mac_frame(self.station.address).wire_time_ns
            rate = self._mac_gap_rate = self.mac_utilization / wire
        return max(1, round(self._rng.expovariate(rate)))

    def _emit_mac(self) -> None:
        if not self._running:
            return
        self.stats_mac_frames += 1
        self.station.transmit(mac_frame(self.station.address))
        self.sim.schedule_fast(self._next_gap(), self._emit_mac)

    def purge(self, duration: int = calibration.RING_PURGE_DURATION) -> None:
        """Purge the ring once (transmitting the Ring Purge MAC frame)."""
        self.stats_purges_issued += 1
        self.ring.purge(duration)
        # The purge frame itself appears on the wire for TAP to record once
        # the ring is usable again.
        self.station.transmit(ring_purge_frame(self.station.address))


class InsertionProcess:
    """Poisson station insertions, each causing a burst of Ring Purges."""

    def __init__(
        self,
        sim: Simulator,
        monitor: ActiveMonitor,
        rng: RandomStreams,
        insertions_per_day: float = calibration.RING_INSERTIONS_PER_DAY,
        burst_low: int = 8,
        burst_high: int = calibration.RING_INSERTION_PURGE_BURST + 3,
    ) -> None:
        if insertions_per_day < 0:
            raise ValueError("negative insertion rate")
        self.sim = sim
        self.monitor = monitor
        self._rng = rng.get("insertions")
        self.insertions_per_day = insertions_per_day
        self.burst_low = burst_low
        self.burst_high = burst_high
        self._running = False
        self.stats_insertions = 0
        self.insertion_times: list[int] = []

    def start(self) -> None:
        if self._running or self.insertions_per_day <= 0:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _mean_gap_ns(self) -> float:
        return DAY / self.insertions_per_day

    def _schedule_next(self) -> None:
        if self.insertions_per_day <= 0:
            return
        gap = max(1, round(self._rng.expovariate(1.0 / self._mean_gap_ns())))
        self.sim.schedule_fast(gap, self._insert)

    def _insert(self) -> None:
        if not self._running:
            return
        self.stats_insertions += 1
        self.insertion_times.append(self.sim.now)
        # "we have seen on the order of 10 Ring Purges back to back":
        # consecutive purges, each extending the outage.
        burst = self._rng.randint(self.burst_low, self.burst_high)
        for i in range(burst):
            self.sim.schedule_fast(
                i * calibration.RING_PURGE_DURATION,
                self._purge_once,
            )
        self._schedule_next()

    def _purge_once(self) -> None:
        self.monitor.purge()
