"""Ring attachment points.

A :class:`RingStation` is the MAC-layer identity of one adapter on the ring:
an address, a physical position (which determines token access delay), and a
receive hook.  Adapters own stations; lightweight traffic generators can own
one directly without a full machine model behind it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ring.frames import Frame, FrameClass
from repro.ring.network import TokenRing


class RingStation:
    """One attachment to the ring."""

    def __init__(
        self,
        ring: TokenRing,
        address: str,
        receive: Optional[Callable[[Frame], None]] = None,
        accept_mac_frames: bool = False,
    ) -> None:
        self.ring = ring
        self.address = address
        #: Called with each frame addressed to (or broadcast past) us.
        self.receive = receive
        #: Real adapters do not pass MAC frames to the host (Section 4: the
        #: adapter ROM software "does not allow for passing MAC frames to
        #: the host processor"); set True only for hypothetical-mode studies.
        self.accept_mac_frames = accept_mac_frames
        self.position = ring.attach(self)
        self.stats_frames_received = 0
        self.stats_mac_frames_seen = 0

    def transmit(
        self,
        frame: Frame,
        on_complete: Optional[Callable[[Frame, str], None]] = None,
    ) -> None:
        """Queue a frame for the token."""
        self.ring.request_transmit(self, frame, on_complete)

    def on_frame(self, frame: Frame) -> None:
        """Ring delivery upcall."""
        if frame.frame_class is FrameClass.MAC:
            self.stats_mac_frames_seen += 1
            if not self.accept_mac_frames:
                return
        self.stats_frames_received += 1
        if self.receive is not None:
            self.receive(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RingStation {self.address} pos={self.position}>"
