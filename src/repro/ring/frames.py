"""Token Ring frame formats.

Only the fields the paper's tools observe are modeled explicitly: the Access
Control byte (token priority and reservation bits -- what TAP records), the
Frame Control byte (MAC vs LLC -- how the paper classifies the 20-byte
housekeeping frames), addresses, total length and the information field.
Payload *contents* travel as an opaque object reference plus a synthesized
byte prefix for TAP's 96-byte capture window.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.hardware import calibration

#: Destination address meaning "all stations".
BROADCAST = "*"

_frame_ids = itertools.count(1)


class FrameClass(enum.Enum):
    """The Frame Control byte's frame-type field."""

    #: Medium Access Control housekeeping (Ring Purge, Active Monitor
    #: Present, Standby Monitor Present, ...).  Never passed to the host.
    MAC = "mac"
    #: Logical Link Control -- all host data traffic.
    LLC = "llc"


def wire_time_ns(info_bytes: int, framing_bytes: int = calibration.FRAME_OVERHEAD_BYTES) -> int:
    """Time to serialize a frame with ``info_bytes`` of information field.

    Includes the 802.5 framing (21 bytes for LLC frames) around the
    information field.
    """
    total = info_bytes + framing_bytes
    return total * calibration.TOKEN_RING_NS_PER_BYTE


@dataclass(slots=True)
class Frame:
    """One frame on the ring."""

    src: str
    dst: str
    info_bytes: int
    priority: int = 0
    frame_class: FrameClass = FrameClass.LLC
    #: Which protocol the information field carries ('ctmsp', 'ip', 'arp',
    #: 'mac', ...) -- the dispatch key at the driver's receive split point.
    protocol: str = "ip"
    #: Opaque payload handed to the destination (e.g. a CTMSP packet object).
    payload: Any = None
    #: Bytes of 802.5 framing around the information field.  MAC
    #: housekeeping frames use a minimal header so the whole frame is "on
    #: the order of 20 bytes" as the paper observed.
    framing_bytes: int = calibration.FRAME_OVERHEAD_BYTES
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    #: Serialization time at 4 Mbit/s, fixed at construction.  A plain
    #: field rather than a property: the ring reads it several times per
    #: capture, and frames are immutable once built.
    wire_time_ns: int = field(init=False, default=0)

    #: 4 Mbit 802.5 maximum information field (token-holding time bound).
    MAX_INFO_BYTES = 4472

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= 7:
            raise ValueError(f"Token Ring priority must be 0..7, got {self.priority}")
        if self.info_bytes < 0:
            raise ValueError("negative information field")
        if self.info_bytes > self.MAX_INFO_BYTES:
            raise ValueError(
                f"information field {self.info_bytes}B exceeds the 4 Mbit "
                f"ring's {self.MAX_INFO_BYTES}B maximum"
            )
        self.wire_time_ns = (
            self.info_bytes + self.framing_bytes
        ) * calibration.TOKEN_RING_NS_PER_BYTE

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including 802.5 framing."""
        return self.info_bytes + self.framing_bytes

    def access_control_byte(self, reservation: int = 0) -> int:
        """Synthesize the AC byte as TAP would record it (PPPTMRRR)."""
        return ((self.priority & 0x7) << 5) | (reservation & 0x7)

    def frame_control_byte(self) -> int:
        """Synthesize the FC byte (frame type in the top two bits)."""
        return 0x00 if self.frame_class is FrameClass.MAC else 0x40

    def capture_prefix(self, limit: int = 96) -> bytes:
        """First ``limit`` bytes of the information field, as TAP captures.

        Real contents are synthesized deterministically from the frame id so
        analysis code has stable bytes to look at.
        """
        n = min(self.info_bytes, limit)
        seed = self.frame_id & 0xFF
        return bytes((seed + i) & 0xFF for i in range(n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame #{self.frame_id} {self.protocol} {self.src}->{self.dst} "
            f"{self.info_bytes}B p{self.priority}>"
        )


#: MAC frames carry a 6-byte major-vector payload inside a 14-byte minimal
#: header, totalling the paper's "on the order of 20 bytes" on the wire.
_MAC_FRAMING_BYTES = 14
_MAC_INFO_BYTES = calibration.MAC_FRAME_BYTES - _MAC_FRAMING_BYTES


def mac_frame(src: str, kind: str = "standby_monitor_present") -> Frame:
    """A ~20-byte MAC housekeeping frame (Section 4's interrupt-cost worry)."""
    return Frame(
        src=src,
        dst=BROADCAST,
        info_bytes=_MAC_INFO_BYTES,
        priority=0,
        frame_class=FrameClass.MAC,
        protocol="mac",
        payload=kind,
        framing_bytes=_MAC_FRAMING_BYTES,
    )


def ring_purge_frame(src: str) -> Frame:
    """The Ring Purge MAC frame the Active Monitor transmits after an error."""
    frame = mac_frame(src, kind="ring_purge")
    return frame
