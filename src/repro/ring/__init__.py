"""4 Mbit IBM Token Ring model.

The ring is the paper's transport substrate: 70 stations, token-passing
access with the 802.5 priority/reservation mechanism (which CTMSP uses to
ride above all other traffic), MAC-frame housekeeping traffic, and the one
failure mode the paper could not engineer away -- the Active Monitor's Ring
Purge after a station inserts, which can lose the frame in flight.

The token is modeled *lazily*: its position advances analytically while the
ring is idle, and simulation events are spent only on captures, releases,
deliveries and purges.  This keeps a 70-station ring cheap to simulate while
preserving access-delay and priority semantics.
"""

from repro.ring.frames import (
    BROADCAST,
    Frame,
    FrameClass,
    mac_frame,
    wire_time_ns,
)
from repro.ring.monitor import ActiveMonitor, InsertionProcess
from repro.ring.network import TokenRing
from repro.ring.station import RingStation

__all__ = [
    "ActiveMonitor",
    "BROADCAST",
    "Frame",
    "FrameClass",
    "InsertionProcess",
    "RingStation",
    "TokenRing",
    "mac_frame",
    "wire_time_ns",
]
