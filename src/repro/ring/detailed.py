"""A hop-level Token Ring: the validation reference for the lazy model.

The production :class:`~repro.ring.network.TokenRing` advances the token
*analytically* while the ring is idle (zero events per rotation).  This
module simulates the same medium the expensive way -- one event per station
the token passes, explicit 802.5 priority reservation and stacking -- so
that ``tests/ring/test_lazy_vs_detailed.py`` can check that the cheap model
produces the same access delays and delivery times, hop for hop, on shared
workloads.

It is intentionally not integrated with the testbed: its cost (a token hop
every 300 ns of simulated time) is only acceptable for sub-second
validation runs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.hardware import calibration
from repro.ring.frames import BROADCAST, Frame
from repro.ring.network import TOKEN_TIME_NS

#: Per-hop latency, matching the lazy model's constant.
HOP_NS = calibration.STATION_LATENCY_NS


class DetailedStation:
    """One attachment point on the detailed ring."""

    def __init__(self, ring: "DetailedTokenRing", address: str) -> None:
        self.ring = ring
        self.address = address
        self.position = len(ring.stations)
        ring.stations.append(self)
        self.queue: deque[tuple[Frame, Optional[Callable]]] = deque()
        self.receive: Optional[Callable[[Frame], None]] = None

    def transmit(
        self, frame: Frame, on_complete: Optional[Callable] = None
    ) -> None:
        self.queue.append((frame, on_complete))
        self.ring._unpark()

    def top_priority(self) -> int:
        return max((f.priority for f, _cb in self.queue), default=-1)

    def pop_best(self) -> tuple[Frame, Optional[Callable]]:
        """Dequeue the highest-priority frame (FIFO within a priority).

        802.5 stations hold per-priority transmit queues; a station that
        captured the token sends its most urgent frame, not its oldest.
        """
        best_index = 0
        for i, (f, _cb) in enumerate(self.queue):
            if f.priority > self.queue[best_index][0].priority:
                best_index = i
        entry = self.queue[best_index]
        del self.queue[best_index]
        return entry


class DetailedTokenRing:
    """Explicit token circulation with 802.5 priority and stacking."""

    def __init__(self, sim, total_stations: int = 8) -> None:
        if total_stations < 2:
            raise ValueError("a ring needs at least two stations")
        self.sim = sim
        self.total_stations = total_stations
        self.stations: list[DetailedStation] = []
        self.token_priority = 0
        #: Stacked old priorities (Sx registers of the stacking station).
        self._stack: list[int] = []
        self._stacker: Optional[int] = None
        self._reservation = 0
        self._running = False
        #: When nothing is queued ring-wide, the token parks at its current
        #: position instead of consuming one event per hop forever.  Phase
        #: error on resume is at most one rotation -- inside the agreement
        #: tolerance the lazy-model cross-validation uses.
        self._parked = False
        self._parked_position = 0
        self._parked_at = 0
        self._in_flight = False
        self.stats_frames_sent = 0
        self.stats_token_hops = 0

    def attach(self, address: str) -> DetailedStation:
        if len(self.stations) >= self.total_stations:
            raise ValueError("ring is fully populated")
        return DetailedStation(self, address)

    def start(self) -> None:
        """Issue the token at station 0 and begin circulating."""
        if self._running:
            return
        self._running = True
        self._parked = False
        # Pad the ring to the declared size with silent repeaters.
        while len(self.stations) < self.total_stations:
            DetailedStation(self, f"_repeater{len(self.stations)}")
        self.sim.schedule_fast(1, self._token_at, 0)

    # ------------------------------------------------------------------
    # token circulation
    # ------------------------------------------------------------------
    def _unpark(self) -> None:
        """Resume circulation with the phase the token would have had.

        While parked, the idle token's position is advanced analytically
        (identical to the lazy model's idle treatment): nothing else can
        change on an idle ring -- reservations need queued frames, and any
        priority stack was unwound at park time.
        """
        if self._running and self._parked:
            self._parked = False
            elapsed = self.sim.now - self._parked_at
            hops, remainder = divmod(elapsed, HOP_NS)
            position = int(self._parked_position + hops) % self.total_stations
            self.sim.schedule_fast(
                max(1, HOP_NS - remainder), self._token_at,
                (position + 1) % self.total_stations,
            )

    def _token_at(self, position: int) -> None:
        if not any(s.queue for s in self.stations) and not self._in_flight:
            # Idle: an un-demanded token lowers through any stacked
            # priorities within a rotation, then just circulates.
            while self._stack:
                self.token_priority = self._stack.pop()
            self._stacker = None
            self._parked = True
            self._parked_position = position
            self._parked_at = self.sim.now
            return
        self.stats_token_hops += 1
        station = self.stations[position]
        wants = station.top_priority()
        if wants >= self.token_priority and station.queue:
            self._capture(station)
            return
        if wants >= 0:
            # Make a reservation in the passing token.
            self._reservation = max(self._reservation, wants)
        # Stacking station lowers the token when it comes back around with
        # no demand at the stacked priority.
        if (
            self._stacker == position
            and self._stack
            and self._reservation < self.token_priority
        ):
            self.token_priority = self._stack.pop()
            if not self._stack:
                self._stacker = None
        self.sim.schedule_fast(
            HOP_NS, self._token_at, (position + 1) % self.total_stations
        )

    def _capture(self, station: DetailedStation) -> None:
        frame, on_complete = station.pop_best()
        self._in_flight = True
        self.stats_frames_sent += 1
        # The station absorbs the 3-byte token before its frame's first bit
        # goes out -- the same convention the lazy model charges at capture.
        wire = TOKEN_TIME_NS + frame.wire_time_ns
        # Reservations accumulate while the frame circulates.
        self._reservation = 0
        for other in self.stations:
            if other is not station:
                self._reservation = max(self._reservation, other.top_priority())
        # Deliveries: destination sees the full frame after its hops.
        for dst in self._destinations(frame, station):
            hops = (dst.position - station.position) % self.total_stations
            self.sim.schedule_fast(wire + hops * HOP_NS, self._deliver, dst, frame)
        release_after = wire + self.total_stations * HOP_NS
        self.sim.schedule_fast(release_after, self._release, station, on_complete, frame)

    def _destinations(self, frame: Frame, src: DetailedStation):
        if frame.dst == BROADCAST:
            return [s for s in self.stations if s is not src]
        return [s for s in self.stations if s.address == frame.dst]

    def _deliver(self, dst: DetailedStation, frame: Frame) -> None:
        if dst.receive is not None:
            dst.receive(frame)

    def _release(self, station, on_complete, frame) -> None:
        self._in_flight = False
        if on_complete is not None:
            on_complete(frame, "ok")
        reservation = max(
            (s.top_priority() for s in self.stations), default=-1
        )
        reservation = max(0, reservation)
        if reservation > self.token_priority:
            # Stack the old priority; this station becomes the stacker.
            self._stack.append(self.token_priority)
            self._stacker = station.position
            self.token_priority = reservation
        self._reservation = 0
        self.sim.schedule_fast(
            HOP_NS,
            self._token_at,
            (station.position + 1) % self.total_stations,
        )
