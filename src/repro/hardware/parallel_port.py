"""The serial/parallel interface card used to export measurement events.

Section 5.2.3: "We installed a serial/parallel interface board in each
machine on which we wanted to time stamp events.  Within the Token Ring
device driver, we replaced the calls to the pseudo device driver procedure
with in-line code to write specific values into the parallel port and toggle
the strobe output line."

The port is write-only from the host's point of view: the driver writes a
byte (the last 7 bits of the CTMSP packet number) and toggles strobe; the
strobe edge latches the byte at whatever is wired to the other end (one of
the PC/AT's eight input channels).  The in-line code cost is charged by the
*caller* (it is part of the driver's instruction stream); the port model
itself only propagates the electrical edge.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.units import US

#: Cost of the in-line "write value, toggle strobe" sequence in driver code.
#: DERIVED: a handful of I/O-space stores on the RT/PC.
PORT_WRITE_CODE_COST = 4 * US


class ParallelPort:
    """One 8-bit output port with a strobe line.

    ``sink`` is called as ``sink(time_ns, value)`` on each strobe edge;
    the PC/AT timestamper registers itself here when a channel is cabled up.
    """

    def __init__(self, sim: Simulator, name: str = "lpt") -> None:
        self.sim = sim
        self.name = name
        self._latch = 0
        self.sink: Optional[Callable[[int, int], None]] = None
        self.stats_strobes = 0

    def write(self, value: int) -> None:
        """Latch ``value`` (low 8 bits) on the output pins."""
        self._latch = value & 0xFF

    def strobe(self) -> None:
        """Toggle the strobe line, presenting the latched byte downstream."""
        self.stats_strobes += 1
        if self.sink is not None:
            self.sink(self.sim.now, self._latch)

    def emit(self, value: int) -> None:
        """Convenience: ``write`` then ``strobe`` in one call."""
        self.write(value)
        self.strobe()
