"""The IBM Voice Communications Adapter (VCA).

Section 5.1: the VCA has a TI32010 DSP and 2K x 16 bits of memory that is
byte-accessible by the host; it can interrupt the host and be interrupted by
it.  The paper programs the DSP to interrupt the host every 12 milliseconds
and uses the card purely as a rock-stable interrupt and data source; the
logic analyzer found the period stable to about 500 ns.

The model reproduces exactly that: a programmable periodic interrupt with
sub-microsecond jitter, an on-card buffer (ADAPTER region, byte-wide host
access), and an IRQ line observable by measurement instruments (the paper
physically probed this line with both the logic analyzer and the PC/AT
timestamper).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.hardware import calibration
from repro.hardware.memory import MemoryRegion, Region
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class VoiceCommunicationsAdapter:
    """The VCA card in one machine.

    The host-side driver registers ``handler_factory`` (a generator factory
    run as a CPU interrupt frame) and starts/stops the DSP timer program.
    ``irq_listeners`` observe the raw IRQ line: they are called at the exact
    electrical instant the line pulses, before any software runs -- this is
    measurement point 1 of Section 5.2.
    """

    #: On-card memory: 2K x 16 bits.
    BUFFER_BYTES = 4096

    def __init__(
        self,
        sim: Simulator,
        cpu_raise_irq: Callable[..., object],
        rng: RandomStreams,
        name: str = "vca",
        period: int = calibration.VCA_INTERRUPT_PERIOD,
        jitter: int = calibration.VCA_INTERRUPT_JITTER,
        irq_level: int = calibration.SPL_VCA,
    ) -> None:
        self.sim = sim
        self.name = name
        self.period = period
        self.jitter = jitter
        self.irq_level = irq_level
        self._raise_irq = cpu_raise_irq
        self._rng = rng.get(f"{name}.timer")
        self.buffer = MemoryRegion(
            f"{name}.buffer", Region.ADAPTER, self.BUFFER_BYTES, owner=name
        )
        self.handler_factory: Optional[Callable[[], Generator]] = None
        self.irq_listeners: list[Callable[[int], None]] = []
        self._running = False
        #: Logical-cancellation counter for the DSP timer: ``stop()`` bumps
        #: it, so a queued tick identifies itself as stale instead of
        #: carrying a cancellable Handle (allocation-free tier).
        self._timer_epoch = 0
        self._tick_count = 0
        #: Epoch origin of the DSP timer program.  0 for a timer started at
        #: boot (every historical caller); a timer restarted mid-run with
        #: ``start(align_to_now=True)`` rebases here so the nominal edges
        #: count forward from the restart instead of replaying every edge
        #: since time zero as an interrupt burst.
        self._origin_ns = 0
        self._irq_name = f"{name}-irq"
        self.stats_interrupts = 0

    # ------------------------------------------------------------------
    # driver-facing controls (wired through ioctls in repro.drivers.vca)
    # ------------------------------------------------------------------
    def attach_handler(self, factory: Callable[[], Generator]) -> None:
        """Install the host interrupt handler body."""
        self.handler_factory = factory

    def start(self, align_to_now: bool = False) -> None:
        """Load the DSP timer program and start the periodic interrupt.

        ``align_to_now`` rebases the nominal tick grid at the current
        simulated instant.  A failover replica (or a server recovering from
        a stall) starts its DSP mid-run; without rebasing, ``nominal =
        tick * period`` would sit far in the past and the timer would spray
        a catch-up burst of back-to-back interrupts.  The default keeps the
        historical boot-time grid.
        """
        if self._running:
            return
        self._running = True
        self._tick_count = 0
        if align_to_now:
            self._origin_ns = self.sim.now
        self._schedule_next()

    def stop(self) -> None:
        """Halt the DSP timer."""
        self._running = False
        self._timer_epoch += 1

    @property
    def running(self) -> bool:
        """True while the DSP timer program is loaded and ticking."""
        return self._running

    # ------------------------------------------------------------------
    # timer mechanics
    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        # The DSP counts a crystal-derived period; jitter is a fraction of a
        # microsecond around the nominal edge, never cumulative (the paper's
        # oscilloscope measurement triggered on the previous edge and saw
        # only ~500 ns of variation, i.e. phase noise, not drift).
        self._tick_count += 1
        nominal = self._origin_ns + self._tick_count * self.period
        offset = self._rng.randint(-self.jitter, self.jitter) if self.jitter else 0
        fire_at = max(self.sim.now + 1, nominal + offset)
        self.sim.at_fast(fire_at, self._fire, self._timer_epoch)

    def _fire(self, epoch: int) -> None:
        if epoch != self._timer_epoch or not self._running:
            return
        self.stats_interrupts += 1
        if self.irq_listeners:
            for listener in self.irq_listeners:
                listener(self.sim.now)
        if self.handler_factory is not None:
            self._raise_irq(self.irq_level, self.handler_factory, self._irq_name)
        self._schedule_next()
