"""The assembled IBM RT/PC machine model.

A :class:`Machine` owns a CPU, a memory system (with or without the IO
Channel Memory card), and a set of adapters.  The UNIX kernel model
(:mod:`repro.unix`) attaches on top; network adapters attach to a ring
(:mod:`repro.ring`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.hardware.cpu import CPU
from repro.hardware.memory import MemorySystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class Machine:
    """One host in the testbed.

    Parameters
    ----------
    sim:
        Shared simulator.
    name:
        Host name, used for tracing and as a RNG namespace.
    rng:
        Testbed-wide random stream factory; the machine forks its own family
        so its stochastic behaviour is independent of other hosts'.
    has_io_channel_memory:
        Whether the optional IO Channel Memory card is fitted (Section 4).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rng: Optional[RandomStreams] = None,
        has_io_channel_memory: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rng = (rng or RandomStreams(0)).fork(name)
        self.cpu = CPU(sim, name=f"{name}.cpu")
        self.memory = MemorySystem(has_io_channel_memory=has_io_channel_memory)
        self.adapters: dict[str, Any] = {}
        #: Set by repro.unix.kernel.Kernel when it attaches.
        self.kernel: Any = None

    def add_adapter(self, name: str, adapter: Any) -> Any:
        """Register an adapter card under ``name``."""
        if name in self.adapters:
            raise ValueError(f"adapter slot {name!r} already used on {self.name}")
        self.adapters[name] = adapter
        return adapter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.name} adapters={sorted(self.adapters)}>"
