"""IBM RT/PC hardware model.

This package models the pieces of the paper's testbed that live below the
operating system:

* :mod:`~repro.hardware.calibration` -- every timing constant, each tied to
  the paper sentence it comes from;
* :mod:`~repro.hardware.cpu` -- a preemptive CPU with BSD-style interrupt
  priority levels (``spl``), the mechanism behind the paper's "protected code
  segments" and interrupt-entry jitter;
* :mod:`~repro.hardware.memory` -- system memory vs IO Channel Memory and the
  DMA/CPU contention the paper's third modification avoids;
* :mod:`~repro.hardware.dma` -- DMA engines with per-region transfer rates;
* :mod:`~repro.hardware.machine` -- the assembled machine;
* :mod:`~repro.hardware.vca` -- the Voice Communications Adapter used as the
  paper's rock-stable 12 ms interrupt and data source;
* :mod:`~repro.hardware.parallel_port` -- the 8-bit parallel output card the
  paper added to each measured machine to feed the PC/AT timestamper.
"""

from repro.hardware import calibration
from repro.hardware.cpu import CPU, Exec, Frame, RaiseSpl, SetSpl, Wait
from repro.hardware.dma import DMAEngine
from repro.hardware.machine import Machine
from repro.hardware.memory import MemoryRegion, MemorySystem, Region
from repro.hardware.parallel_port import ParallelPort
from repro.hardware.vca import VoiceCommunicationsAdapter

__all__ = [
    "CPU",
    "DMAEngine",
    "Exec",
    "Frame",
    "Machine",
    "MemoryRegion",
    "MemorySystem",
    "ParallelPort",
    "RaiseSpl",
    "Region",
    "SetSpl",
    "VoiceCommunicationsAdapter",
    "Wait",
    "calibration",
]
