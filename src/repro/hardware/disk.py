"""A fixed disk adapter of the RT/PC era.

Section 1: "The source machine must read a disc and redirect the data flow
onto the local area network."  The prototype used the VCA as its data
source, but a deployed CTMS server streams from storage, so the disk is
part of the full system.

The model is a late-80s SCSI-class drive: ~28 ms average seek, 8.3 ms
half-rotation latency at 3600 rpm, ~1 MB/s media transfer, a simple
elevator-free FIFO queue, and DMA into host memory (contending with the
CPU exactly like any other system-memory DMA -- or not, if the transfer
targets IO Channel Memory).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.hardware import calibration
from repro.hardware.machine import Machine
from repro.hardware.memory import Region
from repro.sim.units import MS, US

#: Average seek time (ns).
DISK_AVG_SEEK = 28 * MS
#: Track-to-track seek (ns) for sequential access.
DISK_TRACK_SEEK = 4 * MS
#: Half-rotation latency at 3600 rpm (ns).
DISK_ROTATIONAL_LATENCY = 8_330 * US
#: Media rate: nanoseconds per byte (~1 MB/s).
DISK_NS_PER_BYTE = 1_000
#: Bytes per track -- reads within a track need no new seek.
DISK_TRACK_BYTES = 32_768


class DiskAdapter:
    """One fixed disk on the IO Channel.

    Requests carry a logical block offset so sequentiality is modeled:
    reading contiguous media files pays the full seek only when crossing
    tracks, which is what makes a single disk able to feed a 176 KB/s
    stream with margin.
    """

    def __init__(
        self,
        machine: Machine,
        name: str = "hd0",
        irq_level: int = calibration.SPL_BIO,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.cpu = machine.cpu
        self.name = name
        self.irq_level = irq_level
        self._busy = False
        self._queue: list[tuple[int, int, int, int, Region, Callable]] = []
        self._seq = 0
        self._head_offset = 0
        #: Fault injection: extra service time per read (a competing seek
        #: storm), set by repro.faults.injectors.
        self.fault_extra_service_ns = 0
        # --- statistics ---
        self.stats_reads = 0
        self.stats_bytes = 0
        self.stats_busy_ns = 0
        self.stats_seeks = 0

    def read(
        self,
        offset: int,
        nbytes: int,
        into_region: Region,
        on_done: Callable[[], object],
        priority: int = 0,
    ) -> None:
        """Queue a read of ``nbytes`` at byte ``offset``.

        ``on_done`` is raised as an interrupt handler factory when the DMA
        into ``into_region`` completes.  Higher ``priority`` requests are
        serviced first (FIFO within a priority) -- the scheduling hook a
        continuous-media file server needs to keep its streams ahead of
        batch I/O.
        """
        if nbytes <= 0:
            raise ValueError("empty disk read")
        self._seq += 1
        self._queue.append((priority, self._seq, offset, nbytes, into_region, on_done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        best = min(self._queue, key=lambda r: (-r[0], r[1]))
        self._queue.remove(best)
        _priority, _seq, offset, nbytes, region, on_done = best
        service = self._service_time(offset, nbytes)
        self._head_offset = offset + nbytes
        self.stats_reads += 1
        self.stats_bytes += nbytes
        self.stats_busy_ns += service
        contends = region in (Region.SYSTEM, Region.USER)
        if contends:
            self.cpu.contention_started()
        self.sim.schedule_fast(service, self._read_done, contends, on_done)

    def _service_time(self, offset: int, nbytes: int) -> int:
        same_track = (
            offset // DISK_TRACK_BYTES == self._head_offset // DISK_TRACK_BYTES
            and offset >= self._head_offset
        )
        if offset == self._head_offset and same_track:
            seek = 0  # pure sequential continuation
        elif same_track or offset // DISK_TRACK_BYTES == (
            self._head_offset // DISK_TRACK_BYTES + 1
        ):
            seek = DISK_TRACK_SEEK
            self.stats_seeks += 1
        else:
            seek = DISK_AVG_SEEK + DISK_ROTATIONAL_LATENCY
            self.stats_seeks += 1
        return seek + nbytes * DISK_NS_PER_BYTE + self.fault_extra_service_ns

    def _read_done(self, contends: bool, on_done: Callable) -> None:
        if contends:
            self.cpu.contention_ended()
        self.cpu.raise_irq(self.irq_level, on_done, name=f"{self.name}-io")
        self._start_next()

    @property
    def busy(self) -> bool:
        return self._busy

    def sustained_rate_bytes_per_sec(self, read_size: int) -> float:
        """Analytic sequential throughput for ``read_size`` chunks."""
        per_read = read_size * DISK_NS_PER_BYTE
        # One track seek per DISK_TRACK_BYTES of sequential data.
        per_read += DISK_TRACK_SEEK * read_size / DISK_TRACK_BYTES
        return read_size / (per_read / 1e9)
