"""DMA engines.

A DMA transfer occupies the engine for ``nbytes * ns_per_byte`` and -- when
either end of the transfer is in main system memory -- registers itself as a
CPU-contention source for its duration (Section 4: "this DMA can interfere
with the CPU's access to system memory").  Transfers whose both ends are on
the IO Channel (adapter buffer <-> IO Channel Memory) run without touching
the CPU at all, which is the effect the paper's third modification buys.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.hardware.cpu import CPU
from repro.hardware.memory import MemorySystem, Region
from repro.sim.engine import Simulator


class DMAEngine:
    """One adapter's DMA channel.

    Transfers are serialized: an adapter has a single bus master interface,
    so overlapping requests queue FIFO.  ``on_done`` callbacks fire at
    transfer completion time.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: Optional[CPU],
        name: str,
        ns_per_byte: int,
    ) -> None:
        self.sim = sim
        self.cpu = cpu
        self.name = name
        self.ns_per_byte = ns_per_byte
        self._busy = False
        self._queue: deque[tuple[int, Region, Region, Optional[Callable[[], None]]]] = deque()
        # --- statistics ---
        self.stats_transfers = 0
        self.stats_bytes = 0
        self.stats_busy_ns = 0
        self.stats_contending_transfers = 0

    @property
    def busy(self) -> bool:
        """True while a transfer (or queued transfers) are in progress."""
        return self._busy

    def transfer(
        self,
        nbytes: int,
        src: Region,
        dst: Region,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Start (or queue) a DMA of ``nbytes`` from ``src`` to ``dst``."""
        if nbytes <= 0:
            raise ValueError(f"DMA of {nbytes} bytes")
        self._queue.append((nbytes, src, dst, on_done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        nbytes, src, dst, on_done = self._queue.popleft()
        duration = nbytes * self.ns_per_byte
        contends = MemorySystem.dma_involves_cpu_memory(src, dst)
        if contends:
            self.stats_contending_transfers += 1
            if self.cpu is not None:
                self.cpu.contention_started()
        self.stats_transfers += 1
        self.stats_bytes += nbytes
        self.stats_busy_ns += duration
        self.sim.schedule_fast(duration, self._finish, contends, on_done)

    def _finish(
        self, contends: bool, on_done: Optional[Callable[[], None]]
    ) -> None:
        if contends and self.cpu is not None:
            self.cpu.contention_ended()
        if on_done is not None:
            on_done()
        self._start_next()
