"""Calibration constants for the CTMS testbed model.

Every constant is either **PAPER** (stated directly in the paper, with the
sentence it comes from) or **DERIVED** (chosen so that a quantity the paper
*does* state comes out right; the derivation is noted).  Derived constants are
pinned by ``tests/experiments/test_calibration.py``: if you change one, the
end-to-end latency budget tests will tell you which paper number you broke.

Units: times are integer nanoseconds (see :mod:`repro.sim.units`); rates are
nanoseconds per byte unless suffixed otherwise.
"""

from __future__ import annotations

from repro.sim.units import MS, US

# ---------------------------------------------------------------------------
# Token Ring (IEEE 802.5 as deployed at the ITC)
# ---------------------------------------------------------------------------

#: PAPER: "a 4Mbit Token Ring with 70 machines".
TOKEN_RING_BIT_RATE = 4_000_000
#: Nanoseconds to serialize one bit at 4 Mbit/s.
TOKEN_RING_NS_PER_BIT = 250
#: Nanoseconds to serialize one byte at 4 Mbit/s.
TOKEN_RING_NS_PER_BYTE = 8 * TOKEN_RING_NS_PER_BIT
#: PAPER: the ITC ring had 70 stations.
TOKEN_RING_DEFAULT_STATIONS = 70
#: DERIVED: one-bit latency per station repeater plus lobe propagation; with
#: 70 stations this yields a quiescent ring latency of ~25 us, typical for a
#: 4 Mbit ring of that size (and small against the 4 ms frame time).
STATION_LATENCY_NS = 300
#: 802.5 token is 3 bytes (SD, AC, ED).
TOKEN_BYTES = 3
#: 802.5 frame overhead in bytes: SD+AC+FC (3), dest+src addresses (12),
#: FCS (4), ED+FS (2) = 21 bytes on the wire around the information field.
FRAME_OVERHEAD_BYTES = 21
#: PAPER: "The MAC frame packets are on the order of 20 bytes of data."
MAC_FRAME_BYTES = 20
#: PAPER: "the amount of MAC frame traffic on the Token Ring we use is
#: between 0.2% and 1.0%".
MAC_TRAFFIC_UTILIZATION_LOW = 0.002
MAC_TRAFFIC_UTILIZATION_HIGH = 0.010
#: DERIVED: a Ring Purge (Active Monitor purging and re-issuing the token)
#: makes the ring unusable for about this long.  The paper attributes ~10 ms
#: of its 120-130 ms outliers to "a soft error on the Token Ring and the
#: Token Ring timing out and resetting of the network".
RING_PURGE_DURATION = 10 * MS
#: PAPER: "we have seen on the order of 10 Ring Purges back to back" when a
#: station inserts.
RING_INSERTION_PURGE_BURST = 10
#: PAPER: ring insertions occur "on the order of 20 times a day,
#: approximately one an hour".
RING_INSERTIONS_PER_DAY = 20

# ---------------------------------------------------------------------------
# CTMSP stream (the paper's prototype source)
# ---------------------------------------------------------------------------

#: PAPER: the VCA "would interrupt the host every 12 milliseconds".
VCA_INTERRUPT_PERIOD = 12 * MS
#: PAPER: the oscilloscope saw the second IRQ pulse vary "on the order of
#: 500 nanoseconds from 12 milliseconds".
VCA_INTERRUPT_JITTER = 500
#: PAPER: "a packet of 2000 bytes in length (including the header
#: information but excluding the Token Ring protocol bytes)".
CTMSP_PACKET_BYTES = 2000
#: PAPER (Section 1): the working 16 KB/s initial test was "8K samples/sec,
#: 12 bit/sample" telephone-quality audio; per 12 ms VCA period that is
#: ~192 bytes of real device data, the rest of the 2000-byte packet being
#: appended filler ("We then appended the packet with data to create a
#: packet of 2000 bytes").
VCA_DEVICE_BYTES_PER_PERIOD = 192
#: PAPER: "a CTMSP data transport stream of approximately 150KBytes/sec".
#: (2000 bytes every 12 ms is 166.7 KB/s; the paper rounds down.)  The
#: /12ms-per-period division makes this bytes-per-second; the unit checker
#: cannot see the implicit time dimension in the literal 12.
CTMSP_STREAM_RATE_BYTES_PER_SEC = CTMSP_PACKET_BYTES * 1_000 // 12  # ctms-lint: disable=CTMS212

# ---------------------------------------------------------------------------
# CPU copy costs (the heart of Section 2)
# ---------------------------------------------------------------------------

#: PAPER: "The transfer rate of copying data from the system memory where
#: the mbufs are located to the IO Channel Memory, where the fixed DMA
#: buffers are located, is on the order of 1 microsecond per byte."
CPU_COPY_SYS_TO_IOCM_NS_PER_BYTE = 1_000
#: DERIVED: symmetric cost for the receive-side copy out of an IO Channel
#: Memory DMA buffer into mbufs (same bus path, opposite direction).
CPU_COPY_IOCM_TO_SYS_NS_PER_BYTE = 1_000
#: DERIVED: system-memory-to-system-memory copies (mbuf chain handling, data
#: appended into mbufs) are far cheaper than crossing the IO Channel.  Chosen
#: so the paper's "600 microseconds ... attributed to the execution of the
#: code between the two points of measurement" holds with the VCA handler's
#: data-append copy included (2000 B * 0.12 us/B = 240 us, leaving ~360 us of
#: code path; see CODE_* constants below).
CPU_COPY_SYS_TO_SYS_NS_PER_BYTE = 120
#: DERIVED: kernel/user crossing (copyin/copyout) pays VM translation and
#: fault checks per page on top of the raw copy -- the RT/PC's microcoded
#: block move was slow.  Only the stock-UNIX baseline path pays this; it is
#: a large part of why 150 KB/s "failed completely" through a user process.
CPU_COPY_KERNEL_USER_NS_PER_BYTE = 600
#: DERIVED: programmed I/O over a byte-wide adapter interface (the VCA's
#: host port; the paper's footnote 3 describes the similar ACPA interface).
#: One I/O-space load/store per byte.
CPU_PIO_ADAPTER_NS_PER_BYTE = 1_000

# ---------------------------------------------------------------------------
# DMA and bus arbitration (Section 4)
# ---------------------------------------------------------------------------

#: DERIVED: Token Ring adapter transmit-side DMA (fixed DMA buffer ->
#: on-card buffer).  Slower than the receive side because the fetch
#: interleaves with the on-card protocol processor's access to the same
#: buffer RAM.  Together with TR_ADAPTER_CMD_LATENCY, chosen so (a) the
#: Test Case A minimum point-3-to-point-4 latency for a 2000-byte packet
#: lands at the paper's 10740 us (Figure 5-3), and (b) a CTMSP packet
#: queued behind a 1522-byte local transmission reproduces Figure 5-2's
#: second mode near 9400 us.
TR_ADAPTER_TX_DMA_NS_PER_BYTE = 1_125
#: DERIVED: receive-side DMA (on-card buffer -> fixed DMA buffer) runs at
#: full IO Channel burst speed.
TR_ADAPTER_RX_DMA_NS_PER_BYTE = 1_380
#: DERIVED: adapter command processing between the host issuing *transmit*
#: and the first DMA fetch cycle -- the microcoded command path of the era's
#: Token Ring adapters was notoriously slow (SRB processing on an on-card
#: processor).  See TR_ADAPTER_TX_DMA_NS_PER_BYTE for the joint calibration.
TR_ADAPTER_CMD_LATENCY = 1_400 * US
#: DERIVED: fraction by which concurrent DMA into *system* memory stretches
#: CPU execution, per active transfer ("the arbitration between the DMA and
#: the CPU access will degrade the execution speed of both").  DMA into IO
#: Channel Memory causes no such interference -- that is the paper's third
#: modification.
DMA_CPU_INTERFERENCE_PER_TRANSFER = 0.35

# ---------------------------------------------------------------------------
# Interrupts, protected code, scheduling
# ---------------------------------------------------------------------------

#: DERIVED: minimum interrupt entry cost (vectoring plus register save) on
#: the RT/PC; the floor of the paper's IRQ-to-handler measurement.
IRQ_ENTRY_OVERHEAD = 60 * US
#: PAPER: "Even while loading the Token Ring and the local disk, the largest
#: variation seen was 440 microseconds" between the IRQ pulse and the start
#: of the VCA interrupt handler.  We model protected (spl-raised) kernel code
#: sections whose lengths are drawn up to this bound; the variation *emerges*
#: from IRQs landing inside them.
PROTECTED_SECTION_MAX = 380 * US
#: DERIVED: typical protected-section length for background kernel activity.
PROTECTED_SECTION_MEAN = 90 * US
#: DERIVED: the kernel also runs *longer* sections at network priority
#: (queue draining, timer sweeps) that delay Token Ring interrupts but not
#: the higher-priority VCA -- the "other interrupt sources and the execution
#: of protected code segments" behind the right-hand tails of Figures 5-3
#: and 5-4 (up to a few ms, without violating the 440 us VCA-entry bound).
LOW_SPL_SECTION_MEAN = 900 * US
LOW_SPL_SECTION_MAX = 3_500 * US
#: DERIVED: fraction of kernel-noise episodes that are long low-spl ones.
LOW_SPL_SECTION_FRACTION = 0.2
#: DERIVED: context-switch cost between user processes on the RT/PC.
CONTEXT_SWITCH_COST = 80 * US
#: BSD 4.3 scheduler clock: hz=100, a 10 ms tick and quantum.
CLOCK_TICK = 10 * MS
#: PAPER: "the clock granularity was only 122 microseconds" (the RT/PC
#: timer readable by the pseudo-driver tracer; 1/8192 s).
RTPC_CLOCK_GRANULARITY = 122 * US

# ---------------------------------------------------------------------------
# Driver code-path costs (between the paper's measurement points)
# ---------------------------------------------------------------------------

#: DERIVED: VCA handler code between entry and handing the packet to the
#: Token Ring driver: packet-number stamping, chain bookkeeping.  The
#: paper's "600 microseconds ... attributed to the execution of the code"
#: between measurement points 2 and 3 decomposes in the model as: ~96 us of
#: byte-wide PIO for the real VCA data, ~215 us appending filler into mbufs
#: (system-to-system), ~30 us of mbuf allocation, this constant, and
#: TR_DRIVER_TX_CODE below.
VCA_HANDLER_CODE = 100 * US
#: DERIVED: Token Ring driver transmit entry path (queue handling, header
#: check) excluding the copy into the fixed DMA buffer.
TR_DRIVER_TX_CODE = 80 * US
#: DERIVED: receive-side classification code: the "shortest possible test to
#: determine if the packet was an CTMSP packet".
TR_DRIVER_RX_CLASSIFY_CODE = 40 * US
#: DERIVED: receive interrupt handler code excluding copies (buffer
#: bookkeeping, restart of the adapter's receive DMA).
TR_DRIVER_RX_CODE = 220 * US
#: DERIVED: cost to (re)compute a Token Ring header the way IP does for
#: every packet; CTMSP precomputes it once per connection.
TR_HEADER_COMPUTE_COST = 120 * US
#: DERIVED: per-packet IP output processing (checksum, route lookup).
IP_OUTPUT_COST = 250 * US
#: DERIVED: per-packet TCP processing (segmentation, checksum, ack logic).
TCP_PER_PACKET_COST = 450 * US
#: DERIVED: per-packet UDP processing.
UDP_PER_PACKET_COST = 150 * US
#: DERIVED: socket-layer syscall overhead (send/recv path excluding copies).
SOCKET_SYSCALL_COST = 180 * US
#: DERIVED: mbuf allocation cost per buffer grabbed from the pool.
MBUF_ALLOC_COST = 15 * US
#: DERIVED: generic read/write syscall entry/exit overhead.
SYSCALL_OVERHEAD = 120 * US

# ---------------------------------------------------------------------------
# PC/AT measurement tool (Section 5.2.3)
# ---------------------------------------------------------------------------

#: PAPER: "a 16 bit clock value where the resolution of the clock was two
#: microseconds".
PCAT_CLOCK_RESOLUTION = 2 * US
PCAT_CLOCK_BITS = 16
#: PAPER: "another timer within the PC/AT to generate a signal with a period
#: of 50 Hz" tied to the eighth parallel input port to detect clock rollover.
PCAT_ROLLOVER_MARKER_PERIOD = 20 * MS
#: PAPER: "the interrupt handler loop had a 60 microsecond worst case
#: execution time".
PCAT_LOOP_WORST_CASE = 60 * US
#: DERIVED: best-case poll loop iteration (nothing pending).
PCAT_LOOP_BEST_CASE = 12 * US
#: PAPER: "there was a 120 microsecond spread on both sides of the 12
#: millisecond mean" when timestamping the bare VCA IRQ line.
PCAT_EXPECTED_SPREAD = 120 * US

# ---------------------------------------------------------------------------
# Interrupt priority levels (BSD spl ordering, highest number = most urgent)
# ---------------------------------------------------------------------------

SPL_NONE = 0
SPL_SOFTNET = 1
SPL_NET = 3
SPL_TTY = 4
SPL_BIO = 5
SPL_CLOCK = 6
SPL_VCA = 5
SPL_HIGH = 7
