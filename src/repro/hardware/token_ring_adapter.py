"""The Token Ring adapter card.

Models the behaviours Section 4 complains about:

* a microcoded command path with real latency between the host's *transmit*
  command and the first DMA cycle;
* bus-master DMA between the host's fixed DMA buffers and the on-card
  buffer -- stealing CPU memory cycles when those buffers are in system
  memory, and not when they are in IO Channel Memory;
* interrupts to the host for transmit-complete and receive;
* **no Ring Purge indication**: when a purge destroys the frame in flight,
  the adapter reports a normal transmit completion ("the adapter does not
  interrupt the processor with the information that a Ring Purge has
  occurred") -- unless the *hypothetical* ``purge_interrupt_mode`` is
  enabled, modeling the adapter the paper wished it had;
* MAC frames are never passed to the host (they are filtered at the
  station).

The driver (:mod:`repro.drivers.token_ring`) owns buffer placement policy and
all protocol logic; the adapter is dumb hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

from repro.hardware import calibration
from repro.hardware.machine import Machine
from repro.hardware.memory import Region
from repro.ring.frames import Frame
from repro.ring.network import TX_LOST_IN_PURGE, TokenRing
from repro.ring.station import RingStation
from repro.sim.engine import SimulationError
from repro.unix.copy import CopyLedger


class TokenRingAdapter:
    """One Token Ring adapter card in a machine."""

    def __init__(
        self,
        machine: Machine,
        ring: TokenRing,
        address: str,
        ledger: Optional[CopyLedger] = None,
        irq_level: int = calibration.SPL_NET,
        rx_buffer_count: int = 2,
        purge_interrupt_mode: bool = False,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.cpu = machine.cpu
        self.ring = ring
        self.address = address
        self.ledger = ledger
        self.irq_level = irq_level
        self.purge_interrupt_mode = purge_interrupt_mode
        self.station = RingStation(ring, address, receive=self._on_ring_frame)
        self.tx_dma_ns_per_byte = calibration.TR_ADAPTER_TX_DMA_NS_PER_BYTE
        self.rx_dma_ns_per_byte = calibration.TR_ADAPTER_RX_DMA_NS_PER_BYTE
        self.command_latency = calibration.TR_ADAPTER_CMD_LATENCY

        # Driver wiring: interrupt handler factories (return generators).
        self.on_tx_complete: Optional[Callable[[], Generator]] = None
        self.on_rx_frame: Optional[Callable[[Frame, Region], Generator]] = None
        self.on_purge_detected: Optional[Callable[[], Generator]] = None

        #: Region of the host receive DMA buffers (driver sets at attach).
        self.rx_buffer_region = Region.SYSTEM
        self._rx_buffers_free = rx_buffer_count
        self.rx_buffer_count = rx_buffer_count

        self._tx_in_progress = False
        self._last_tx_frame: Optional[Frame] = None

        # --- fault-injection hooks (set by repro.faults.injectors) ---
        #: Absolute time until which the microcode sits on transmit commands.
        self.fault_tx_stall_until = 0
        #: Extra delay before each receive interrupt (coalescing fault).
        self.fault_rx_delay_ns = 0
        #: Number of upcoming transmit-complete interrupts to swallow.
        self.fault_drop_tx_complete = 0
        #: If > 0, a "dropped" tx-complete is delivered this late instead of
        #: never (a degraded path rather than a wedged one).
        self.fault_drop_tx_complete_delay_ns = 0
        self._fault_rx_seized = 0
        self._fault_rx_active = False

        # --- statistics ---
        self.stats_tx_frames = 0
        self.stats_rx_frames = 0
        self.stats_rx_overruns = 0
        self.stats_tx_lost_in_purge = 0
        self.stats_tx_stalled_ns = 0
        self.stats_tx_complete_dropped = 0
        self.stats_tx_complete_delayed = 0

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def command_transmit(self, frame: Frame, from_region: Region) -> None:
        """Host *transmit* command: fetch the frame by DMA, then send it.

        The driver must not issue a second command until the
        transmit-complete interrupt -- the card has one transmit context
        (matching the paper's single fixed DMA buffer discipline).
        """
        if self._tx_in_progress:
            raise SimulationError(
                f"{self.address}: transmit command while transmit in progress"
            )
        self._tx_in_progress = True
        self._last_tx_frame = frame
        stall = max(0, self.fault_tx_stall_until - self.sim.now)
        self.stats_tx_stalled_ns += stall
        self.sim.schedule_fast(
            stall + self.command_latency, self._fetch_frame, frame, from_region
        )

    def _fetch_frame(self, frame: Frame, from_region: Region) -> None:
        duration = frame.info_bytes * self.tx_dma_ns_per_byte
        if self.ledger is not None:
            self.ledger.record_dma(from_region, Region.ADAPTER, frame.info_bytes)
        contends = from_region in (Region.SYSTEM, Region.USER)
        if contends:
            self.cpu.contention_started()
        self.sim.schedule_fast(duration, self._fetch_done, frame, contends)

    def _fetch_done(self, frame: Frame, contends: bool) -> None:
        if contends:
            self.cpu.contention_ended()
        self.station.transmit(frame, on_complete=self._ring_tx_done)

    def _ring_tx_done(self, frame: Frame, status: str) -> None:
        self._tx_in_progress = False
        self.stats_tx_frames += 1
        if status == TX_LOST_IN_PURGE:
            self.stats_tx_lost_in_purge += 1
            if self.purge_interrupt_mode and self.on_purge_detected is not None:
                # The hypothetical Section 4 adapter: surface the purge so
                # the driver can retransmit from the fixed DMA buffer.
                self.cpu.raise_irq(
                    self.irq_level, self.on_purge_detected, name="tr-purge"
                )
                return
        if self.on_tx_complete is None:
            return
        if self.fault_drop_tx_complete > 0:
            self.fault_drop_tx_complete -= 1
            if self.fault_drop_tx_complete_delay_ns > 0:
                self.stats_tx_complete_delayed += 1
                self.sim.schedule_fast(
                    self.fault_drop_tx_complete_delay_ns,
                    self.cpu.raise_irq,
                    self.irq_level,
                    self.on_tx_complete,
                    "tr-txdone",
                )
            else:
                self.stats_tx_complete_dropped += 1
            return
        self.cpu.raise_irq(
            self.irq_level, self.on_tx_complete, name="tr-txdone"
        )

    @property
    def tx_in_progress(self) -> bool:
        return self._tx_in_progress

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_ring_frame(self, frame: Frame) -> None:
        if self._rx_buffers_free == 0:
            # The host has not serviced earlier receives; the card overruns.
            self.stats_rx_overruns += 1
            return
        self._rx_buffers_free -= 1
        duration = frame.info_bytes * self.rx_dma_ns_per_byte
        if self.ledger is not None:
            self.ledger.record_dma(
                Region.ADAPTER, self.rx_buffer_region, frame.info_bytes
            )
        contends = self.rx_buffer_region in (Region.SYSTEM, Region.USER)
        if contends:
            self.cpu.contention_started()
        self.sim.schedule_fast(duration, self._rx_dma_done, frame, contends)

    def _rx_dma_done(self, frame: Frame, contends: bool) -> None:
        if contends:
            self.cpu.contention_ended()
        self.stats_rx_frames += 1
        if self.on_rx_frame is None:
            self.release_rx_buffer()
            return
        region = self.rx_buffer_region
        if self.fault_rx_delay_ns > 0:
            # Injected interrupt coalescing: the card holds the completed
            # receive before asserting the interrupt line.
            self.sim.schedule_fast(
                self.fault_rx_delay_ns,
                self.cpu.raise_irq,
                self.irq_level,
                self.on_rx_frame,
                "tr-rx",
                frame,
                region,
            )
            return
        self.cpu.raise_irq(
            self.irq_level, self.on_rx_frame, "tr-rx", frame, region
        )

    def release_rx_buffer(self) -> None:
        """Driver upcall: a host receive DMA buffer is free again."""
        if self._rx_buffers_free + self._fault_rx_seized >= self.rx_buffer_count:
            raise SimulationError("rx buffer release underflow")
        if self._fault_rx_active:
            # An exhaustion fault is active: the freed buffer is captured by
            # the fault instead of returning to the pool.
            self._fault_rx_seized += 1
        else:
            self._rx_buffers_free += 1

    # ------------------------------------------------------------------
    # fault-injection controls (repro.faults.injectors)
    # ------------------------------------------------------------------
    def fault_seize_rx_buffers(self) -> int:
        """Mark every currently-free receive DMA buffer busy (exhaustion).

        Arrivals during the seize window overrun exactly as when the host
        falls behind.  Returns the number of buffers captured now; buffers
        released by the driver while the fault is active are captured too.
        """
        self._fault_rx_active = True
        seized = self._rx_buffers_free
        self._fault_rx_seized += seized
        self._rx_buffers_free = 0
        return seized

    def fault_release_rx_buffers(self) -> None:
        """End an exhaustion fault: captured buffers return to the pool."""
        if not self._fault_rx_active:
            return
        self._fault_rx_active = False
        self._rx_buffers_free += self._fault_rx_seized
        self._fault_rx_seized = 0
