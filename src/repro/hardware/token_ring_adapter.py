"""The Token Ring adapter card.

Models the behaviours Section 4 complains about:

* a microcoded command path with real latency between the host's *transmit*
  command and the first DMA cycle;
* bus-master DMA between the host's fixed DMA buffers and the on-card
  buffer -- stealing CPU memory cycles when those buffers are in system
  memory, and not when they are in IO Channel Memory;
* interrupts to the host for transmit-complete and receive;
* **no Ring Purge indication**: when a purge destroys the frame in flight,
  the adapter reports a normal transmit completion ("the adapter does not
  interrupt the processor with the information that a Ring Purge has
  occurred") -- unless the *hypothetical* ``purge_interrupt_mode`` is
  enabled, modeling the adapter the paper wished it had;
* MAC frames are never passed to the host (they are filtered at the
  station).

The driver (:mod:`repro.drivers.token_ring`) owns buffer placement policy and
all protocol logic; the adapter is dumb hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

from repro.hardware import calibration
from repro.hardware.machine import Machine
from repro.hardware.memory import Region
from repro.ring.frames import Frame
from repro.ring.network import TX_LOST_IN_PURGE, TokenRing
from repro.ring.station import RingStation
from repro.sim.engine import SimulationError
from repro.unix.copy import CopyLedger


class TokenRingAdapter:
    """One Token Ring adapter card in a machine."""

    def __init__(
        self,
        machine: Machine,
        ring: TokenRing,
        address: str,
        ledger: Optional[CopyLedger] = None,
        irq_level: int = calibration.SPL_NET,
        rx_buffer_count: int = 2,
        purge_interrupt_mode: bool = False,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.cpu = machine.cpu
        self.ring = ring
        self.address = address
        self.ledger = ledger
        self.irq_level = irq_level
        self.purge_interrupt_mode = purge_interrupt_mode
        self.station = RingStation(ring, address, receive=self._on_ring_frame)
        self.tx_dma_ns_per_byte = calibration.TR_ADAPTER_TX_DMA_NS_PER_BYTE
        self.rx_dma_ns_per_byte = calibration.TR_ADAPTER_RX_DMA_NS_PER_BYTE
        self.command_latency = calibration.TR_ADAPTER_CMD_LATENCY

        # Driver wiring: interrupt handler factories (return generators).
        self.on_tx_complete: Optional[Callable[[], Generator]] = None
        self.on_rx_frame: Optional[Callable[[Frame, Region], Generator]] = None
        self.on_purge_detected: Optional[Callable[[], Generator]] = None

        #: Region of the host receive DMA buffers (driver sets at attach).
        self.rx_buffer_region = Region.SYSTEM
        self._rx_buffers_free = rx_buffer_count
        self.rx_buffer_count = rx_buffer_count

        self._tx_in_progress = False
        self._last_tx_frame: Optional[Frame] = None

        # --- statistics ---
        self.stats_tx_frames = 0
        self.stats_rx_frames = 0
        self.stats_rx_overruns = 0
        self.stats_tx_lost_in_purge = 0

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def command_transmit(self, frame: Frame, from_region: Region) -> None:
        """Host *transmit* command: fetch the frame by DMA, then send it.

        The driver must not issue a second command until the
        transmit-complete interrupt -- the card has one transmit context
        (matching the paper's single fixed DMA buffer discipline).
        """
        if self._tx_in_progress:
            raise SimulationError(
                f"{self.address}: transmit command while transmit in progress"
            )
        self._tx_in_progress = True
        self._last_tx_frame = frame
        self.sim.schedule(
            self.command_latency, self._fetch_frame, frame, from_region
        )

    def _fetch_frame(self, frame: Frame, from_region: Region) -> None:
        duration = frame.info_bytes * self.tx_dma_ns_per_byte
        if self.ledger is not None:
            self.ledger.record_dma(from_region, Region.ADAPTER, frame.info_bytes)
        contends = from_region in (Region.SYSTEM, Region.USER)
        if contends:
            self.cpu.contention_started()
        self.sim.schedule(duration, self._fetch_done, frame, contends)

    def _fetch_done(self, frame: Frame, contends: bool) -> None:
        if contends:
            self.cpu.contention_ended()
        self.station.transmit(frame, on_complete=self._ring_tx_done)

    def _ring_tx_done(self, frame: Frame, status: str) -> None:
        self._tx_in_progress = False
        self.stats_tx_frames += 1
        if status == TX_LOST_IN_PURGE:
            self.stats_tx_lost_in_purge += 1
            if self.purge_interrupt_mode and self.on_purge_detected is not None:
                # The hypothetical Section 4 adapter: surface the purge so
                # the driver can retransmit from the fixed DMA buffer.
                self.cpu.raise_irq(
                    self.irq_level, self.on_purge_detected, name="tr-purge"
                )
                return
        if self.on_tx_complete is not None:
            self.cpu.raise_irq(
                self.irq_level, self.on_tx_complete, name="tr-txdone"
            )

    @property
    def tx_in_progress(self) -> bool:
        return self._tx_in_progress

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_ring_frame(self, frame: Frame) -> None:
        if self._rx_buffers_free == 0:
            # The host has not serviced earlier receives; the card overruns.
            self.stats_rx_overruns += 1
            return
        self._rx_buffers_free -= 1
        duration = frame.info_bytes * self.rx_dma_ns_per_byte
        if self.ledger is not None:
            self.ledger.record_dma(
                Region.ADAPTER, self.rx_buffer_region, frame.info_bytes
            )
        contends = self.rx_buffer_region in (Region.SYSTEM, Region.USER)
        if contends:
            self.cpu.contention_started()
        self.sim.schedule(duration, self._rx_dma_done, frame, contends)

    def _rx_dma_done(self, frame: Frame, contends: bool) -> None:
        if contends:
            self.cpu.contention_ended()
        self.stats_rx_frames += 1
        if self.on_rx_frame is None:
            self.release_rx_buffer()
            return
        region = self.rx_buffer_region
        self.cpu.raise_irq(
            self.irq_level,
            lambda: self.on_rx_frame(frame, region),
            name="tr-rx",
        )

    def release_rx_buffer(self) -> None:
        """Driver upcall: a host receive DMA buffer is free again."""
        if self._rx_buffers_free >= self.rx_buffer_count:
            raise SimulationError("rx buffer release underflow")
        self._rx_buffers_free += 1
