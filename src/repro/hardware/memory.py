"""Memory regions of the IBM RT/PC model.

The RT/PC has two bus structures: the CPU-to-system-memory path and the IO
Channel Bus interconnecting adapters, arbitrated by the IO Channel Controller
(IOCC).  The paper's third modification exploits an adapter that is "solely
memory, called IO Channel Memory": DMA between another adapter and IO Channel
Memory stays on the IO Channel Bus and does not interfere with CPU accesses
to main system memory.

We model a region as a *kind* plus an accounting identity; actual payload
bytes travel inside packet objects, and copies are charged CPU or DMA time by
the copy/DMA engines according to the (source kind, destination kind) pair.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.hardware import calibration


class Region(enum.Enum):
    """Where a buffer physically lives."""

    #: Main system memory (mbufs, user pages, stock fixed DMA buffers).
    SYSTEM = "system"
    #: IO Channel Memory -- adapter RAM on the IO Channel Bus.
    IO_CHANNEL = "io_channel"
    #: On-card adapter memory reachable only by programmed I/O.
    ADAPTER = "adapter"
    #: A user process address space (system memory + VM crossing costs).
    USER = "user"

    # Region pairs key the copy-cost tables and the per-copy ledger, so this
    # hash runs on every simulated copy.  Enum's default __hash__ is a
    # Python-level method; members are singletons, so identity hashing is
    # equivalent and stays in C.
    __hash__ = object.__hash__


#: CPU copy cost (ns/byte) for each (source, destination) region pair.
CPU_COPY_COST: dict[tuple[Region, Region], int] = {
    (Region.SYSTEM, Region.SYSTEM): calibration.CPU_COPY_SYS_TO_SYS_NS_PER_BYTE,
    (Region.SYSTEM, Region.IO_CHANNEL): calibration.CPU_COPY_SYS_TO_IOCM_NS_PER_BYTE,
    (Region.IO_CHANNEL, Region.SYSTEM): calibration.CPU_COPY_IOCM_TO_SYS_NS_PER_BYTE,
    (Region.IO_CHANNEL, Region.IO_CHANNEL): calibration.CPU_COPY_SYS_TO_IOCM_NS_PER_BYTE,
    (Region.SYSTEM, Region.USER): calibration.CPU_COPY_KERNEL_USER_NS_PER_BYTE,
    (Region.USER, Region.SYSTEM): calibration.CPU_COPY_KERNEL_USER_NS_PER_BYTE,
    (Region.USER, Region.USER): calibration.CPU_COPY_KERNEL_USER_NS_PER_BYTE,
    (Region.SYSTEM, Region.ADAPTER): calibration.CPU_PIO_ADAPTER_NS_PER_BYTE,
    (Region.ADAPTER, Region.SYSTEM): calibration.CPU_PIO_ADAPTER_NS_PER_BYTE,
    (Region.IO_CHANNEL, Region.ADAPTER): calibration.CPU_PIO_ADAPTER_NS_PER_BYTE,
    (Region.ADAPTER, Region.IO_CHANNEL): calibration.CPU_PIO_ADAPTER_NS_PER_BYTE,
    (Region.USER, Region.ADAPTER): calibration.CPU_PIO_ADAPTER_NS_PER_BYTE,
    (Region.ADAPTER, Region.USER): calibration.CPU_PIO_ADAPTER_NS_PER_BYTE,
    (Region.USER, Region.IO_CHANNEL): calibration.CPU_COPY_SYS_TO_IOCM_NS_PER_BYTE,
    (Region.IO_CHANNEL, Region.USER): calibration.CPU_COPY_IOCM_TO_SYS_NS_PER_BYTE,
}


def cpu_copy_cost(src: Region, dst: Region, nbytes: int) -> int:
    """Nanoseconds of CPU work to copy ``nbytes`` from ``src`` to ``dst``."""
    return CPU_COPY_COST[(src, dst)] * nbytes


class MemoryRegion:
    """A named allocation in some :class:`Region` (e.g. a fixed DMA buffer)."""

    __slots__ = ("name", "region", "capacity", "owner")

    def __init__(
        self,
        name: str,
        region: Region,
        capacity: int,
        owner: Optional[str] = None,
    ) -> None:
        self.name = name
        self.region = region
        self.capacity = capacity
        self.owner = owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryRegion {self.name} {self.region.value} {self.capacity}B>"


class MemorySystem:
    """Per-machine memory configuration and contention accounting.

    ``dma_involves_cpu_memory`` answers the question the IOCC arbiter decides
    on real hardware: does this DMA touch main system memory (and therefore
    steal CPU cycles)?
    """

    def __init__(self, has_io_channel_memory: bool = True) -> None:
        self.has_io_channel_memory = has_io_channel_memory
        #: Total bytes of IO Channel Memory fitted (informational).
        self.io_channel_bytes = 512 * 1024 if has_io_channel_memory else 0

    def allocate(
        self, name: str, region: Region, capacity: int, owner: str = ""
    ) -> MemoryRegion:
        """Allocate a named region; IO Channel requests need the card fitted."""
        if region is Region.IO_CHANNEL and not self.has_io_channel_memory:
            raise ValueError(
                "machine has no IO Channel Memory card; cannot allocate "
                f"{name!r} there"
            )
        return MemoryRegion(name, region, capacity, owner or None)

    @staticmethod
    def dma_involves_cpu_memory(*regions: Region) -> bool:
        """True if a DMA touching ``regions`` contends with the CPU."""
        return any(r in (Region.SYSTEM, Region.USER) for r in regions)
