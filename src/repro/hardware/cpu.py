"""A preemptive CPU with BSD-style interrupt priority levels.

The paper's latency histograms are shaped by three CPU-level mechanisms, all
modeled here:

* **interrupt priority levels** -- a handler runs with the processor priority
  (``spl``) raised to its device's level; lower-priority interrupts pend until
  the level drops.  The paper's "execution of protected code segments
  throughout the kernel" is exactly code running under a raised ``spl``;
* **preemption** -- an eligible interrupt suspends whatever is executing,
  including another handler, mid-instruction-stream;
* **memory contention** -- while a DMA engine is transferring into *system*
  memory, CPU execution stretches (the RT/PC arbitration the paper escapes by
  putting fixed DMA buffers in IO Channel Memory).

Behaviours run on the CPU as *frames*: generator coroutines that yield
:class:`Exec` (consume CPU work), :class:`SetSpl` (change processor priority,
returns the previous level), or :class:`Wait` (block on a
:class:`~repro.sim.engine.Event`; base level only).  Interrupt handlers are
frames at level > 0 started by :meth:`CPU.raise_irq`; user processes are
base-level frames scheduled round-robin from a ready queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.hardware import calibration
from repro.sim.engine import Event, Handle, SimulationError, Simulator

#: Frame lifecycle states.
FRESH = "fresh"
RUNNING = "running"
READY = "ready"
PREEMPTED = "preempted"
WAITING = "waiting"
SWITCHING = "switching"
DONE = "done"


class Exec:
    """Yield from a frame: execute ``work_ns`` of CPU work (preemptible)."""

    __slots__ = ("work_ns",)

    def __init__(self, work_ns: int) -> None:
        self.work_ns = work_ns


class SetSpl:
    """Yield from a frame: set the processor priority level.

    The frame receives the *previous* level as the yield's value, enabling
    the classic ``s = splimp(); ...; splx(s)`` idiom.
    """

    __slots__ = ("level",)

    def __init__(self, level: int) -> None:
        self.level = level


class RaiseSpl:
    """Yield from a frame: raise spl to at least ``level`` (never lowers).

    This is the semantics of the BSD ``spl*()`` functions: a handler already
    running at a higher level keeps it.  Returns the previous level for the
    matching ``SetSpl`` restore.
    """

    __slots__ = ("level",)

    def __init__(self, level: int) -> None:
        self.level = level


class Wait:
    """Yield from a frame: block until ``event`` fires (base level only)."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Frame:
    """One behaviour executing on the CPU."""

    __slots__ = (
        "gen",
        "level",
        "name",
        "state",
        "remaining",
        "exec_started",
        "exec_factor",
        "executing",
        "epoch",
        "resume_value",
        "saved_spl",
        "done_event",
    )

    def __init__(
        self,
        gen: Generator[Any, Any, Any],
        level: int,
        name: str,
        done_event: Optional[Event],
    ) -> None:
        self.gen = gen
        self.level = level
        self.name = name
        self.state = FRESH
        #: CPU work (ns, at factor 1.0) left in the current Exec.
        self.remaining: float = 0.0
        self.exec_started: int = 0
        self.exec_factor: float = 1.0
        #: True while a completion entry for this frame is live on the
        #: calendar.  Pausing bumps ``epoch`` instead of cancelling: the
        #: stale entry still fires but identifies itself as outdated and
        #: returns -- logical cancellation without allocating a Handle per
        #: Exec on the hottest scheduling path in the tree.
        self.executing = False
        self.epoch = 0
        #: Value to send into the generator on next resume.
        self.resume_value: Any = None
        #: spl to restore when this interrupt frame exits.
        self.saved_spl: int = 0
        self.done_event = done_event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.name} lvl={self.level} {self.state}>"


class CPU:
    """The processor of one machine.

    Parameters
    ----------
    sim:
        The shared simulator.
    name:
        Used in error messages and traces.
    irq_entry_overhead:
        Work charged before an interrupt handler's first instruction
        (vectoring and register save).
    context_switch_cost:
        Dead time charged when dispatching a different base-level frame.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu",
        irq_entry_overhead: int = calibration.IRQ_ENTRY_OVERHEAD,
        context_switch_cost: int = calibration.CONTEXT_SWITCH_COST,
    ) -> None:
        self.sim = sim
        self.name = name
        self.irq_entry_overhead = irq_entry_overhead
        self.context_switch_cost = context_switch_cost

        #: Global processor priority; IRQs at level <= spl pend.
        self.spl = 0
        #: Stack of interrupt frames, bottom to top; top is running/paused.
        self._istack: list[Frame] = []
        #: Currently dispatched base-level frame (running or preempted).
        self._base: Optional[Frame] = None
        #: Base-level frames awaiting dispatch.
        self.ready: deque[Frame] = deque()
        #: Pending (masked) interrupts: (level, seq, frame) -- dispatched
        #: highest level first, FIFO within a level.
        self._pending: list[tuple[int, int, Frame]] = []
        self._pending_seq = 0
        #: Set by the clock handler to force a round-robin base switch when
        #: the interrupt stack unwinds.
        self.need_resched = False
        #: Number of DMA transfers currently stealing system-memory cycles.
        self._contention_sources = 0
        #: Multiplier applied to Exec durations per contention source.
        self.interference_per_source = (
            calibration.DMA_CPU_INTERFERENCE_PER_TRANSFER
        )

        # --- statistics ---------------------------------------------------
        self.stats_busy_ns = 0
        self.stats_irq_count = 0
        self.stats_irq_pended = 0
        self.stats_context_switches = 0
        self._busy_since: Optional[int] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def running(self) -> Optional[Frame]:
        """The frame currently consuming CPU, if any."""
        if self._istack:
            return self._istack[-1]
        if self._base is not None and self._base.state in (RUNNING, SWITCHING):
            return self._base
        return None

    def raise_irq(
        self,
        level: int,
        handler: Callable[..., Generator[Any, Any, Any]],
        name: str = "irq",
        *args: Any,
    ) -> Frame:
        """Assert an interrupt at ``level``; ``handler(*args)`` builds the frame body.

        The handler runs immediately (after entry overhead) if ``level``
        exceeds both the current spl and the running handler's level;
        otherwise it pends until the mask drops.  Extra positional ``args``
        are passed to the handler factory, so per-interrupt context (a
        received frame, a buffer region) needs no closure allocation.
        """
        if level <= 0:
            raise SimulationError("interrupt level must be > 0")
        frame = Frame(handler(*args), level, name, done_event=None)
        frame.remaining = self.irq_entry_overhead
        self.stats_irq_count += 1
        if level > self.spl and not (
            self._istack and level <= self._istack[-1].level
        ):
            self._dispatch_irq(frame)
        else:
            self.stats_irq_pended += 1
            self._pending_seq += 1
            self._pending.append((level, self._pending_seq, frame))
        return frame

    def spawn_base(
        self, gen: Generator[Any, Any, Any], name: str = "proc"
    ) -> Event:
        """Enqueue a base-level frame (a user process or kernel thread).

        Returns an event that succeeds with the generator's return value when
        the frame finishes.
        """
        done = self.sim.event(name=f"{name}-done")
        frame = Frame(gen, 0, name, done_event=done)
        frame.state = READY
        self.ready.append(frame)
        self._maybe_dispatch_base()
        return done

    def preempt_base_round_robin(self) -> None:
        """Request a base-level switch at the next return to base level.

        Called by the clock-tick handler to implement the scheduler quantum.
        """
        if self.ready:
            self.need_resched = True

    # --- contention hooks (called by DMA engines) -----------------------
    def contention_started(self) -> None:
        """A DMA transfer into system memory began; stretch CPU execution."""
        self._contention_sources += 1
        self._reslice_running()

    def contention_ended(self) -> None:
        """A system-memory DMA transfer finished."""
        if self._contention_sources <= 0:
            raise SimulationError("contention_ended without matching start")
        self._contention_sources -= 1
        self._reslice_running()

    def contention_factor(self) -> float:
        """Current multiplier on CPU work durations."""
        return 1.0 + self.interference_per_source * self._contention_sources

    # ------------------------------------------------------------------
    # frame execution engine
    # ------------------------------------------------------------------
    def _irq_eligible(self, level: int) -> bool:
        if level <= self.spl:
            return False
        if self._istack and level <= self._istack[-1].level:
            return False
        return True

    def _dispatch_irq(self, frame: Frame) -> None:
        current = self.running
        if current is not None and current.state == RUNNING:
            self._pause_exec(current)
            current.state = PREEMPTED
        elif self._base is not None and self._base.state == SWITCHING:
            # A context switch in progress is simply stretched; the switch
            # timer keeps running underneath the handler.
            pass
        frame.saved_spl = self.spl
        if frame.level > self.spl:
            self.spl = frame.level
        self._istack.append(frame)
        frame.state = RUNNING
        self._note_busy()
        self._begin_exec(frame)

    def _begin_exec(self, frame: Frame) -> None:
        """Schedule completion of the frame's remaining work, or advance it."""
        if frame.remaining > 0:
            frame.exec_started = self.sim.now
            if self._contention_sources:
                factor = 1.0 + self.interference_per_source * self._contention_sources
                frame.exec_factor = factor
                delay = round(frame.remaining * factor)
            else:
                # Uncontended fast path: factor is exactly 1.0, so the
                # multiply (and the historical max(0, ...) clamp) is a no-op.
                frame.exec_factor = 1.0
                delay = round(frame.remaining)
            frame.executing = True
            self.sim.schedule_fast(delay, self._advance, frame, frame.epoch)
        else:
            self._advance(frame)

    def _pause_exec(self, frame: Frame) -> None:
        if frame.executing:
            elapsed = self.sim.now - frame.exec_started
            frame.remaining = max(
                0.0, frame.remaining - elapsed / frame.exec_factor
            )
            # Logical cancellation: the queued completion entry outlives the
            # pause but its epoch no longer matches.
            frame.epoch += 1
            frame.executing = False

    def _reslice_running(self) -> None:
        frame = self.running
        if frame is not None and frame.executing:
            self._pause_exec(frame)
            self._begin_exec(frame)

    def _advance(self, frame: Frame, epoch: int = -1) -> None:
        """Run generator steps until the frame blocks, executes, or finishes.

        Doubles as the exec-completion callback -- the hottest calendar
        entry in the tree -- in which case ``epoch`` carries the value
        captured when the completion was scheduled.  A pause (preemption,
        contention reslice) bumps ``frame.epoch``, so a stale completion
        identifies itself here and returns: logical cancellation with no
        Handle and no tombstone.  Direct callers leave ``epoch`` at -1.
        """
        if epoch >= 0:
            if epoch != frame.epoch:
                return
            frame.executing = False
            frame.remaining = 0
        # The op classes are final by convention (nothing in the tree
        # subclasses them), so exact type checks replace isinstance here --
        # this dispatch chain runs once per generator step of every frame.
        # Event stays an isinstance check: Process subclasses it.
        gen_send = frame.gen.send
        while True:
            try:
                op = gen_send(frame.resume_value)
            except StopIteration as stop:
                self._frame_finished(frame, stop.value)
                return
            frame.resume_value = None

            cls = op.__class__
            if cls is Exec:
                work = op.work_ns
                if work <= 0:
                    continue
                frame.remaining = work
                if self._contention_sources:
                    self._begin_exec(frame)
                else:
                    # Uncontended fresh Exec: the work is already an integer
                    # delay, so skip _begin_exec's factor/round machinery.
                    frame.exec_started = self.sim.now
                    frame.exec_factor = 1.0
                    frame.executing = True
                    self.sim.schedule_fast(
                        work, self._advance, frame, frame.epoch
                    )
                return
            if cls is RaiseSpl:
                old = self.spl
                if op.level > old:
                    self.spl = op.level
                frame.resume_value = old
                continue
            if cls is SetSpl:
                old = self.spl
                self.spl = op.level
                frame.resume_value = old
                if op.level < old and self._dispatch_best_pending(frame):
                    return
                continue
            if cls is Wait or isinstance(op, Event):
                event = op.event if cls is Wait else op
                if frame.level > 0:
                    raise SimulationError(
                        f"interrupt handler {frame.name} may not Wait"
                    )
                self._block_base(frame, event)
                return
            raise SimulationError(
                f"frame {frame.name} yielded {op!r}; expected Exec, SetSpl, "
                "Wait or Event"
            )

    def _dispatch_best_pending(self, current: Frame) -> bool:
        """If lowering spl exposed a pended IRQ, run it now.

        Returns True if the current frame was suspended (it will resume when
        the handler stack unwinds).
        """
        if not self._pending:
            return False
        best = self._best_pending_index()
        if best is None:
            return False
        current.state = PREEMPTED
        _level, _seq, frame = self._pending.pop(best)
        self._dispatch_irq(frame)
        return True

    def _best_pending_index(self) -> Optional[int]:
        best_index = None
        best_key: tuple[int, int] = (0, 0)
        for i, (level, seq, _frame) in enumerate(self._pending):
            if not self._irq_eligible(level):
                continue
            key = (level, -seq)
            if best_index is None or key > best_key:
                best_index, best_key = i, key
        return best_index

    def _frame_finished(self, frame: Frame, value: Any) -> None:
        frame.state = DONE
        if frame.done_event is not None:
            frame.done_event.succeed(value)
        if frame.level > 0:
            top = self._istack.pop()
            if top is not frame:  # pragma: no cover - invariant
                raise SimulationError("interrupt stack corrupted")
            self.spl = frame.saved_spl
            self._after_unwind()
        else:
            if self._base is not frame:  # pragma: no cover - invariant
                raise SimulationError("base frame bookkeeping corrupted")
            self._base = None
            self._maybe_dispatch_base()

    def _after_unwind(self) -> None:
        """An interrupt frame exited: run pended IRQs, then resume below."""
        if self._pending:
            best = self._best_pending_index()
            if best is not None:
                _level, _seq, frame = self._pending.pop(best)
                self._dispatch_irq(frame)
                return
        if self._istack:
            below = self._istack[-1]
            below.state = RUNNING
            self._begin_exec(below)
            return
        self._return_to_base()

    def _return_to_base(self) -> None:
        if self._base is not None and self._base.state == PREEMPTED:
            if self.need_resched and self.ready:
                self.need_resched = False
                self._base.state = READY
                self.ready.append(self._base)
                self._base = None
                self._maybe_dispatch_base()
                return
            self._base.state = RUNNING
            self._begin_exec(self._base)
            return
        if self._base is None:
            self._maybe_dispatch_base()
        else:
            self._note_idle_check()

    def _block_base(self, frame: Frame, event: Event) -> None:
        frame.state = WAITING

        def on_fire(ev: Event) -> None:
            if frame.state != WAITING:
                return
            if not ev.ok:
                raise SimulationError(
                    f"event waited on by {frame.name} failed: {ev.value!r}"
                )
            frame.resume_value = ev.value
            frame.state = READY
            self.ready.append(frame)
            self._maybe_dispatch_base()

        event.add_callback(on_fire)
        self._base = None
        self._maybe_dispatch_base()

    def _maybe_dispatch_base(self) -> None:
        if self._base is not None or self._istack:
            self._note_idle_check()
            return
        if not self.ready:
            self._note_idle_check()
            return
        frame = self.ready.popleft()
        self._base = frame
        self.stats_context_switches += 1
        self._note_busy()
        if self.context_switch_cost > 0:
            frame.state = SWITCHING
            # Never cancelled: an interrupt during the switch is resolved by
            # the SWITCHING/PREEMPTED state machine in _finish_switch.
            self.sim.schedule_fast(
                self.context_switch_cost, self._finish_switch, frame
            )
        else:
            frame.state = RUNNING
            self._begin_exec(frame)

    def _finish_switch(self, frame: Frame) -> None:
        if self._istack:
            # An interrupt arrived during the switch; complete the switch
            # when the stack unwinds (frame stays PREEMPTED).
            frame.state = PREEMPTED
            return
        frame.state = RUNNING
        self._begin_exec(frame)

    # ------------------------------------------------------------------
    # busy-time statistics
    # ------------------------------------------------------------------
    def _note_busy(self) -> None:
        if self._busy_since is None:
            self._busy_since = self.sim.now

    def _note_idle_check(self) -> None:
        if (
            self._busy_since is not None
            and not self._istack
            and (self._base is None or self._base.state == WAITING)
            and not self.ready
        ):
            self.stats_busy_ns += self.sim.now - self._busy_since
            self._busy_since = None

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` the CPU spent busy."""
        busy = self.stats_busy_ns
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy / elapsed_ns if elapsed_ns else 0.0
