"""UDP: connectionless datagrams over IP.

The natural stock-UNIX carrier for a media stream (no retransmission delay),
and therefore the fairest baseline against CTMSP in the BASELINE experiment:
it still pays the user/kernel copies, per-packet header recomputation, and
priority-less queueing -- just not TCP's ack machinery.
"""

from __future__ import annotations

from typing import Generator

from repro.hardware import calibration
from repro.hardware.cpu import Exec
from repro.protocols.headers import Datagram
from repro.unix.mbuf import MbufChain


class UdpLayer:
    """One host's UDP."""

    def __init__(self, stack) -> None:
        self.stack = stack
        self.stats_out = 0
        self.stats_in = 0
        self.stats_no_socket = 0

    def output(self, dgram: Datagram, chain: MbufChain) -> Generator:
        yield Exec(calibration.UDP_PER_PACKET_COST)
        self.stats_out += 1
        yield from self.stack.ip.output(dgram, chain)

    def input(self, dgram: Datagram, chain: MbufChain) -> Generator:
        yield Exec(calibration.UDP_PER_PACKET_COST)
        self.stats_in += 1
        socket = self.stack.find_socket("udp", dgram.dst_port)
        if socket is None:
            self.stats_no_socket += 1
            chain.free()
            return
        socket.enqueue_datagram(dgram, chain)
