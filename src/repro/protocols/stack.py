"""The per-host network stack and socket API.

Glues ARP/IP/UDP/TCP to the Token Ring driver's LLC input split point and
offers the user-process-facing socket surface the stock baseline relay and
the control-machine keepalive traffic use.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.hardware import calibration
from repro.hardware.cpu import Exec, Wait
from repro.hardware.memory import Region
from repro.protocols.arp import ArpLayer
from repro.protocols.headers import Datagram
from repro.protocols.ip import IpLayer
from repro.protocols.tcp import TcpConnection, TcpLayer
from repro.protocols.udp import UdpLayer
from repro.ring.frames import Frame
from repro.sim.engine import Event
from repro.unix.copy import cpu_copy
from repro.unix.kernel import Kernel
from repro.unix.mbuf import MbufChain, MbufExhausted

#: Default socket receive buffer (4.3BSD default).
SO_RCVBUF_BYTES = 4096


class NetStack:
    """One host's protocol stack, installed onto its Token Ring driver."""

    def __init__(self, kernel: Kernel, tr_driver) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.cpu = kernel.cpu
        self.tr_driver = tr_driver
        self.address = tr_driver.adapter.address
        self.arp = ArpLayer(self)
        self.ip = IpLayer(self)
        self.udp = UdpLayer(self)
        self.tcp = TcpLayer(self)
        self._udp_sockets: dict[int, "Socket"] = {}
        tr_driver.llc_input = self._llc_input

    # ------------------------------------------------------------------
    # driver upcall (runs at softnet priority)
    # ------------------------------------------------------------------
    def _llc_input(self, frame: Frame, chain: MbufChain) -> Generator:
        if frame.protocol == "arp":
            chain.free()
            yield from self.arp.input(frame)
        elif frame.protocol == "ip":
            yield from self.ip.input(frame, chain)
        else:
            chain.free()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def wait_in_process(self, ev: Event) -> Generator:
        """``yield from`` helper to block the calling process on ``ev``."""
        value = yield Wait(ev)
        return value

    def find_socket(self, proto: str, port: int) -> Optional["Socket"]:
        if proto == "udp":
            return self._udp_sockets.get(port)
        return None

    # ------------------------------------------------------------------
    # socket API
    # ------------------------------------------------------------------
    def udp_socket(self, port: int, rcvbuf: int = SO_RCVBUF_BYTES) -> "Socket":
        """Create and bind a UDP socket."""
        if port in self._udp_sockets:
            raise ValueError(f"UDP port {port} in use on {self.address}")
        sock = Socket(self, port, rcvbuf=rcvbuf)
        self._udp_sockets[port] = sock
        return sock

    def tcp_connect(self, local_port: int, remote_host: str, remote_port: int) -> Generator:
        """``yield from`` in a process: returns an established TcpConnection."""
        conn = yield from self.tcp.connect(local_port, remote_host, remote_port)
        return conn

    def tcp_listen(self, port: int) -> None:
        self.tcp.listen(port)


class Socket:
    """A bound UDP socket."""

    def __init__(self, stack: NetStack, port: int, rcvbuf: int) -> None:
        self.stack = stack
        self.port = port
        self.rcvbuf = rcvbuf
        self._queue: deque[tuple[Datagram, MbufChain]] = deque()
        self._queued_bytes = 0
        self._recv_waiters: list[Event] = []
        self.stats_drops_full_buffer = 0
        self.stats_received = 0
        self.stats_sent = 0

    # ------------------------------------------------------------------
    # send path (run inside a user process frame)
    # ------------------------------------------------------------------
    def sendto(
        self, dst_host: str, dst_port: int, nbytes: int, tag: Any = None
    ) -> Generator:
        """``sendto()``: copy out of user space, then down the stack."""
        yield Exec(calibration.SOCKET_SYSCALL_COST)
        dgram = Datagram(
            proto="udp",
            src_host=self.stack.address,
            dst_host=dst_host,
            src_port=self.port,
            dst_port=dst_port,
            data_bytes=nbytes,
            tag=tag,
        )
        from repro.unix.mbuf import MBUF_DATA_BYTES

        while True:
            try:
                chain = self.stack.kernel.mbufs.try_alloc_chain(dgram.info_bytes)
                break
            except MbufExhausted:
                # M_WAIT semantics: park until a buffer of the class we
                # need returns -- "delayed an arbitrarily long time".
                wants_cluster = dgram.info_bytes > MBUF_DATA_BYTES
                ev = self.stack.kernel.mbufs.alloc_wait(is_cluster=wants_cluster)
                m = yield Wait(ev)
                m.free()
        yield Exec(calibration.MBUF_ALLOC_COST * chain.buffer_count)
        yield from cpu_copy(
            self.stack.kernel.ledger, Region.USER, Region.SYSTEM, nbytes
        )
        self.stats_sent += 1
        yield from self.stack.udp.output(dgram, chain)
        return nbytes

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def enqueue_datagram(self, dgram: Datagram, chain: MbufChain) -> None:
        """Protocol upcall (softnet context)."""
        if self._queued_bytes + dgram.data_bytes > self.rcvbuf:
            # Socket buffer full: the datagram is silently dropped, exactly
            # how the stock path loses media data when the reader is slow.
            self.stats_drops_full_buffer += 1
            chain.free()
            return
        self._queue.append((dgram, chain))
        self._queued_bytes += dgram.data_bytes
        for ev in self._recv_waiters:
            ev.succeed(None)
        self._recv_waiters.clear()

    def recvfrom(self) -> Generator:
        """``recvfrom()``: block for a datagram, copy it to user space."""
        yield Exec(calibration.SOCKET_SYSCALL_COST)
        while not self._queue:
            ev = self.stack.sim.event(name=f"udp-recv:{self.port}")
            self._recv_waiters.append(ev)
            yield Wait(ev)
        dgram, chain = self._queue.popleft()
        self._queued_bytes -= dgram.data_bytes
        yield from cpu_copy(
            self.stack.kernel.ledger,
            Region.SYSTEM,
            Region.USER,
            dgram.data_bytes,
        )
        chain.free()
        self.stats_received += 1
        return dgram
