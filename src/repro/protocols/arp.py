"""Address resolution.

On the paper's single ring, host addresses and ring addresses coincide, so
resolution is trivially satisfiable -- but ARP still matters twice: its
broadcast request/reply frames are part of the background traffic the paper
names in Figure 5-2's analysis, and its cache-miss stall is one more latency
source the stock path pays and CTMSP's static connection does not.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hardware.cpu import Exec
from repro.protocols.headers import ARP_PACKET_BYTES
from repro.ring.frames import BROADCAST, Frame
from repro.sim.engine import Event
from repro.sim.units import MINUTE, US


class ArpLayer:
    """One host's ARP: cache, request/reply, periodic refresh traffic."""

    #: 4.3BSD flushed complete entries after 20 minutes.
    CACHE_TTL = 20 * MINUTE

    def __init__(self, stack) -> None:
        self.stack = stack
        self.sim = stack.sim
        self._cache: dict[str, tuple[str, int]] = {}
        self._pending: dict[str, list[Event]] = {}
        self.stats_requests_sent = 0
        self.stats_replies_sent = 0
        self.stats_cache_hits = 0

    def resolve(self, dst_host: str) -> Generator:
        """``yield from`` helper: returns the ring address for ``dst_host``.

        Cache hit is free; a miss broadcasts a request and blocks the caller
        until the reply arrives.
        """
        entry = self._cache.get(dst_host)
        if entry is not None and self.sim.now - entry[1] < self.CACHE_TTL:
            self.stats_cache_hits += 1
            return entry[0]
        ev = self.sim.event(name=f"arp:{dst_host}")
        waiters = self._pending.setdefault(dst_host, [])
        waiters.append(ev)
        if len(waiters) == 1:
            yield from self._send_request(dst_host)
        address = yield from self.stack.wait_in_process(ev)
        return address

    def _send_request(self, dst_host: str) -> Generator:
        self.stats_requests_sent += 1
        yield Exec(60 * US)
        chain = self.stack.kernel.mbufs.try_alloc_chain(ARP_PACKET_BYTES)
        frame = Frame(
            src=self.stack.address,
            dst=BROADCAST,
            info_bytes=ARP_PACKET_BYTES,
            protocol="arp",
            payload=("request", dst_host, self.stack.address),
        )
        yield from self.stack.tr_driver.output(chain, frame)

    def input(self, frame: Frame) -> Generator:
        """ARP input from the driver's LLC split point."""
        yield Exec(40 * US)
        kind, target, origin = frame.payload
        # Every ARP packet teaches us the sender's address.
        self._learn(origin, frame.src)
        if kind == "request" and target == self.stack.address:
            yield from self._send_reply(frame.src)
        elif kind == "reply" and target == self.stack.address:
            pass  # _learn already resolved the waiters

    def _send_reply(self, requester_address: str) -> Generator:
        self.stats_replies_sent += 1
        chain = self.stack.kernel.mbufs.try_alloc_chain(ARP_PACKET_BYTES)
        frame = Frame(
            src=self.stack.address,
            dst=requester_address,
            info_bytes=ARP_PACKET_BYTES,
            protocol="arp",
            payload=("reply", requester_address, self.stack.address),
        )
        yield from self.stack.tr_driver.output(chain, frame)

    def _learn(self, host: str, address: str) -> None:
        self._cache[host] = (address, self.sim.now)
        for ev in self._pending.pop(host, []):
            ev.succeed(address)
