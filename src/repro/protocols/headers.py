"""Wire-format size constants and the datagram descriptor.

Payload contents never matter to the transport measurements, so datagrams
travel as a small descriptor object inside the ring frame's ``payload``
slot; only their *sizes* are modeled, which is what determines wire time and
copy costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: IPv4 header bytes.
IP_HEADER_BYTES = 20
#: UDP header bytes.
UDP_HEADER_BYTES = 8
#: TCP header bytes (no options).
TCP_HEADER_BYTES = 20
#: ARP packet bytes (request/reply information field).
ARP_PACKET_BYTES = 28
#: Classic Ethernet-era MSS carried over to the ring driver's framing.
TCP_MSS = 1460


@dataclass(slots=True)
class Datagram:
    """One IP datagram as the stack layers see it."""

    proto: str  # "udp" or "tcp"
    src_host: str
    dst_host: str
    src_port: int
    dst_port: int
    data_bytes: int
    #: TCP sequencing (byte offset of this segment's first byte).
    seq: int = 0
    #: TCP cumulative acknowledgement carried by this segment.
    ack: Optional[int] = None
    #: Opaque application payload tag (lets tests correlate messages).
    tag: Any = None

    @property
    def info_bytes(self) -> int:
        """Information-field bytes inside the ring frame."""
        header = IP_HEADER_BYTES + (
            TCP_HEADER_BYTES if self.proto == "tcp" else UDP_HEADER_BYTES
        )
        return header + self.data_bytes
