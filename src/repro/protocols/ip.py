"""The IP layer.

Two properties matter to the paper's argument:

* output pays :data:`~repro.hardware.calibration.IP_OUTPUT_COST` *plus* a
  fresh Token Ring header computation for every packet -- "IP requests the
  Token Ring header be recomputed for each packet transmitted.  In our case,
  the transmitter and receiver are always on the same local area network ...
  this would add an additional delay and load on the CPU for no reason";
* IP frames ride the driver's ordinary output queue at ring priority 0,
  below CTMSP on both counts.
"""

from __future__ import annotations

from typing import Generator

from repro.hardware import calibration
from repro.hardware.cpu import Exec
from repro.protocols.headers import Datagram
from repro.ring.frames import Frame
from repro.sim.units import US
from repro.unix.mbuf import MbufChain, MbufExhausted

#: Per-packet input processing (checksum verify, demux).
IP_INPUT_COST = 150 * US


class IpLayer:
    """One host's IP input/output."""

    def __init__(self, stack) -> None:
        self.stack = stack
        self.stats_packets_out = 0
        self.stats_packets_in = 0
        self.stats_no_mbufs = 0

    def output(self, dgram: Datagram, chain: MbufChain) -> Generator:
        """Send one datagram (``chain`` already holds headers + data)."""
        yield Exec(calibration.IP_OUTPUT_COST)
        address = yield from self.stack.arp.resolve(dgram.dst_host)
        # The per-packet Token Ring header recomputation CTMSP eliminates.
        yield Exec(self.stack.tr_driver.compute_header_cost())
        frame = Frame(
            src=self.stack.address,
            dst=address,
            info_bytes=dgram.info_bytes,
            priority=0,
            protocol="ip",
            payload=dgram,
        )
        self.stats_packets_out += 1
        yield from self.stack.tr_driver.output(chain, frame)

    def input(self, frame: Frame, chain: MbufChain) -> Generator:
        """ipintr(): demux to the transport protocols."""
        yield Exec(IP_INPUT_COST)
        self.stats_packets_in += 1
        dgram = frame.payload
        if not isinstance(dgram, Datagram):
            chain.free()
            return
        if dgram.proto == "udp":
            yield from self.stack.udp.input(dgram, chain)
        elif dgram.proto == "tcp":
            yield from self.stack.tcp.input(dgram, chain)
        else:
            chain.free()
