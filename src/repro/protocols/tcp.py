"""A simplified TCP.

Faithful to the behaviours Section 3 indicts -- "These protocols can
guarantee the preservation [of sequence] only by creating more network
traffic in the form of acknowledgments and requests for retransmission of
lost packets" -- while staying small:

* three-way handshake (SYN / SYN-ACK / ACK);
* MSS segmentation and a fixed-size send window (4 KB, the 4.3BSD default
  socket buffer);
* an immediate cumulative ACK per received data segment;
* go-back-N timeout retransmission from the first unacknowledged byte.

No congestion control (the 1990 4.3BSD Tahoe machinery would change nothing
on a single token ring where the only loss is a Ring Purge) and no window
scaling.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.hardware import calibration
from repro.hardware.cpu import Exec, Wait
from repro.hardware.memory import Region
from repro.protocols.headers import Datagram, TCP_MSS
from repro.sim.engine import Event, Handle
from repro.sim.units import MS, US
from repro.unix.copy import cpu_copy
from repro.unix.mbuf import MbufChain, MbufExhausted

#: Fixed send window (bytes in flight), the 4.3BSD default socket buffer.
TCP_WINDOW_BYTES = 4096
#: Retransmission timeout (4.3BSD's floor was 2 ticks of the 500 ms slow
#: timer; we use a flat 500 ms).
TCP_RTO = 500 * MS


class TcpConnection:
    """One established (or establishing) connection endpoint."""

    def __init__(self, stack, local_port: int, remote_host: str, remote_port: int):
        self.stack = stack
        self.sim = stack.sim
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.state = "closed"
        self.snd_nxt = 0
        self.snd_una = 0
        self.rcv_nxt = 0
        self._unacked: deque[tuple[int, int]] = deque()  # (seq, nbytes)
        self._send_waiters: list[Event] = []
        self._recv_buffer = 0  # bytes available to the application
        self._recv_waiters: list[Event] = []
        self._established_ev: Optional[Event] = None
        self._rto_handle: Optional[Handle] = None
        self.stats_segments_out = 0
        self.stats_acks_out = 0
        self.stats_retransmits = 0

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def connect(self) -> Generator:
        """Three-way handshake; blocks the calling process until established."""
        self.state = "syn_sent"
        self._established_ev = self.sim.event(name="tcp-established")
        yield from self._send_segment(0, 0, syn=True)
        yield Wait(self._established_ev)
        return self

    # ------------------------------------------------------------------
    # data transfer
    # ------------------------------------------------------------------
    def send(self, nbytes: int) -> Generator:
        """Send ``nbytes`` of application data (blocks on window)."""
        remaining = nbytes
        while remaining > 0:
            while self.snd_nxt - self.snd_una >= TCP_WINDOW_BYTES:
                ev = self.sim.event(name="tcp-window")
                self._send_waiters.append(ev)
                yield Wait(ev)
            seg = min(TCP_MSS, remaining, TCP_WINDOW_BYTES - (self.snd_nxt - self.snd_una))
            yield from self._send_data_segment(self.snd_nxt, seg)
            self.snd_nxt += seg
            remaining -= seg
        return nbytes

    def recv(self, nbytes: int) -> Generator:
        """Receive up to ``nbytes`` (blocks until any data is available)."""
        while self._recv_buffer == 0:
            ev = self.sim.event(name="tcp-recv")
            self._recv_waiters.append(ev)
            yield Wait(ev)
        take = min(nbytes, self._recv_buffer)
        self._recv_buffer -= take
        # Socket buffer -> user space.
        yield from cpu_copy(
            self.stack.kernel.ledger, Region.SYSTEM, Region.USER, take
        )
        return take

    # ------------------------------------------------------------------
    # segment transmission
    # ------------------------------------------------------------------
    def _send_data_segment(self, seq: int, nbytes: int) -> Generator:
        self._unacked.append((seq, nbytes))
        self._arm_rto()
        yield from self._send_segment(seq, nbytes)

    def _send_segment(
        self,
        seq: int,
        nbytes: int,
        syn: bool = False,
        synack: bool = False,
        ack_only: bool = False,
    ) -> Generator:
        yield Exec(calibration.TCP_PER_PACKET_COST)
        self.stats_segments_out += 1
        dgram = Datagram(
            proto="tcp",
            src_host=self.stack.address,
            dst_host=self.remote_host,
            src_port=self.local_port,
            dst_port=self.remote_port,
            data_bytes=nbytes,
            seq=seq,
            ack=self.rcv_nxt,
            tag=("syn" if syn else "synack" if synack else
                 "ack" if ack_only else "data"),
        )
        try:
            chain = self.stack.kernel.mbufs.try_alloc_chain(dgram.info_bytes)
        except MbufExhausted:
            return  # segment lost to buffer exhaustion; RTO will recover
        yield from self.stack.ip.output(dgram, chain)

    # ------------------------------------------------------------------
    # segment reception (runs at softnet level)
    # ------------------------------------------------------------------
    def input(self, dgram: Datagram, chain: MbufChain) -> Generator:
        yield Exec(calibration.TCP_PER_PACKET_COST)
        kind = dgram.tag
        if kind == "syn":
            self.state = "established"
            self.rcv_nxt = dgram.seq
            yield from self._send_segment(self.snd_nxt, 0, synack=True)
        elif kind == "synack":
            self.state = "established"
            self.rcv_nxt = dgram.seq
            if self._established_ev is not None:
                self._established_ev.succeed(self)
            yield from self._send_segment(self.snd_nxt, 0, ack_only=True)
        elif kind == "data":
            if dgram.seq == self.rcv_nxt:
                self.rcv_nxt += dgram.data_bytes
                self._recv_buffer += dgram.data_bytes
                for ev in self._recv_waiters:
                    ev.succeed(None)
                self._recv_waiters.clear()
            # Immediate cumulative ack, in or out of order -- the "more
            # network traffic in the form of acknowledgments".
            self.stats_acks_out += 1
            yield from self._send_segment(self.snd_nxt, 0, ack_only=True)
        if dgram.ack is not None and dgram.ack > self.snd_una:
            self._process_ack(dgram.ack)
        chain.free()

    def _process_ack(self, ack: int) -> None:
        self.snd_una = ack
        while self._unacked and self._unacked[0][0] + self._unacked[0][1] <= ack:
            self._unacked.popleft()
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None
        if self._unacked:
            self._arm_rto()
        for ev in self._send_waiters:
            ev.succeed(None)
        self._send_waiters.clear()

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._rto_handle is None:
            self._rto_handle = self.sim.schedule(TCP_RTO, self._rto_fired)

    def _rto_fired(self) -> None:
        self._rto_handle = None
        if not self._unacked:
            return
        self.stats_retransmits += 1
        seq, nbytes = self._unacked[0]

        def retransmit() -> Generator:
            yield from self._send_segment(seq, nbytes)

        self.stack.cpu.raise_irq(
            calibration.SPL_SOFTNET, retransmit, name="tcp-rto"
        )
        self._arm_rto()


class TcpLayer:
    """One host's TCP: demux and listeners."""

    def __init__(self, stack) -> None:
        self.stack = stack
        self.sim = stack.sim
        self._connections: dict[tuple[str, int, int], TcpConnection] = {}
        self._listeners: dict[int, list[TcpConnection]] = {}
        self.stats_in = 0

    def connect(self, local_port: int, remote_host: str, remote_port: int) -> Generator:
        conn = TcpConnection(self.stack, local_port, remote_host, remote_port)
        self._connections[(remote_host, remote_port, local_port)] = conn
        result = yield from conn.connect()
        return result

    def listen(self, port: int) -> None:
        self._listeners.setdefault(port, [])

    def input(self, dgram: Datagram, chain: MbufChain) -> Generator:
        self.stats_in += 1
        key = (dgram.src_host, dgram.src_port, dgram.dst_port)
        conn = self._connections.get(key)
        if conn is None and dgram.tag == "syn" and dgram.dst_port in self._listeners:
            conn = TcpConnection(
                self.stack, dgram.dst_port, dgram.src_host, dgram.src_port
            )
            self._connections[key] = conn
            self._listeners[dgram.dst_port].append(conn)
        if conn is None:
            chain.free()
            return
        yield from conn.input(dgram, chain)

    def accepted(self, port: int) -> list[TcpConnection]:
        """Connections accepted on a listening port so far."""
        return list(self._listeners.get(port, []))
