"""The protocol baselines CTMSP is measured against.

Section 3's argument: TCP/IP guarantees only packet sequencing (via acks and
retransmission traffic), assumes an unreliable, dynamically routed network,
and recomputes the Token Ring header for every packet.  To *measure* that
argument rather than assert it, this package implements the stock stack:

* :mod:`~repro.protocols.arp` -- address resolution with a cache and the
  broadcast traffic the paper lists among the background load;
* :mod:`~repro.protocols.ip` -- datagram output that pays the per-packet
  Token Ring header recomputation CTMSP precomputes away;
* :mod:`~repro.protocols.udp` -- connectionless datagrams;
* :mod:`~repro.protocols.tcp` -- a simplified but behaviourally faithful
  TCP: MSS segmentation, a sliding window, cumulative acks, and timeout
  retransmission;
* :mod:`~repro.protocols.stack` -- the per-host stack gluing the layers to
  the Token Ring driver's LLC input, plus a small socket API.
"""

from repro.protocols.stack import NetStack, Socket

__all__ = ["NetStack", "Socket"]
