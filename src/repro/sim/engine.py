"""The discrete-event engine: simulator, events, coroutine processes.

The design follows the classic event-calendar pattern: a binary heap of
``(time, sequence, action)`` entries, a monotonically non-decreasing ``now``,
and two complementary programming models on top:

* **callbacks** -- ``sim.schedule(delay, fn, *args)`` for fire-and-forget
  hardware behaviour (an adapter raising an interrupt line);
* **coroutine processes** -- generators that ``yield`` :class:`Event` objects,
  for behaviours with sequential structure (a driver transmit path, a traffic
  generator loop).

Both models interoperate: a callback can ``succeed()`` an event a process is
waiting on, and a process can schedule callbacks.
"""

from __future__ import annotations

import heapq
import random
import time
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation kernel."""


class ProcessKilled(Exception):
    """Thrown into a process generator when :meth:`Process.kill` is called."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*; exactly one call to :meth:`succeed` (or
    :meth:`fail`) resolves it, after which its callbacks run within the same
    simulated instant.  Waiting on an already-resolved event resumes the
    waiter immediately (still via the calendar, preserving causal ordering).
    """

    __slots__ = ("sim", "_callbacks", "_ok", "value", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._ok: Optional[bool] = None
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        """True once the event has been resolved (succeeded or failed)."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event resolves (immediately if it has)."""
        if self._callbacks is None:
            self.sim.schedule(0, fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Resolve the event successfully, waking all waiters."""
        self._resolve(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Resolve the event with an exception; waiting processes see a raise."""
        self._resolve(False, exception)
        return self

    def _resolve(self, ok: bool, value: Any) -> None:
        if self._ok is not None:
            raise SimulationError(f"event {self.name or id(self)} resolved twice")
        self._ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            self.sim.schedule(0, fn, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<Event {self.name or hex(id(self))} {state}>"


class Handle:
    """A cancellable scheduled callback returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: int) -> None:
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (a no-op if it already ran)."""
        self.cancelled = True


class Process(Event):
    """A coroutine behaviour: a generator that yields :class:`Event` objects.

    The process is itself an :class:`Event` that succeeds with the
    generator's return value, so processes can wait on each other.  Throwing
    :class:`ProcessKilled` into the generator via :meth:`kill` terminates it;
    a killed process *fails* with the :class:`ProcessKilled` instance unless
    the generator swallows the exception and returns normally.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        sim.schedule(0, self._step, None)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if self.triggered:
            return
        self._waiting_on = None
        exc = ProcessKilled(self.name)
        try:
            self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.fail(exc)
            return
        # Generator swallowed the kill and yielded again: treat as a bug --
        # a killed behaviour must wind down, not keep scheduling work.
        raise SimulationError(f"process {self.name} ignored kill()")

    def _step(self, fired: Optional[Event]) -> None:
        if self.triggered:
            return
        if fired is not None and fired is not self._waiting_on:
            return  # stale wakeup from an event we stopped waiting on
        self._waiting_on = None
        try:
            if fired is not None and not fired.ok:
                target = self._gen.throw(fired.value)
            else:
                target = self._gen.send(fired.value if fired is not None else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes may only "
                "yield Event objects"
            )
        self._waiting_on = target
        target.add_callback(self._step)


def _profile_key(fn: Callable) -> str:
    """Attribute a dispatched callback to a process name where possible.

    Bound methods of named objects (``Process._step`` of a driver process,
    ``Event.succeed`` of a named event) report that name; everything else
    falls back to the callable's qualname.
    """
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", "")
        if name:
            return f"{type(owner).__name__}:{name}"
    return getattr(fn, "__qualname__", repr(fn))


class Simulator:
    """The event calendar.

    ``now`` is the current simulated time in nanoseconds.  All mutation of
    simulated state must happen from inside a scheduled callback or process
    step; the calendar guarantees callbacks run in (time, FIFO) order.

    **Tie-break sanitizer.**  Events scheduled at the *same* instant are
    logically concurrent: a model whose end state depends on their FIFO
    order has a scheduler-order race that FIFO determinism merely hides.
    Constructing the simulator with ``tiebreak="random"`` replaces the FIFO
    tie-break with a seeded pseudo-random one (causality is preserved -- an
    entry scheduled *during* this instant still runs after its cause), so
    re-running a model under a few tie-break seeds and comparing end states
    flushes such races out.  :func:`repro.sim.sanitizer.check_tiebreak_invariance`
    wraps that recipe.

    ``record_trace=True`` appends a ``(time_ns, callable-qualname)`` tuple
    to :attr:`trace` for every executed calendar entry, giving tests a
    cheap fingerprint of the exact event order.

    **Profiler.**  ``profile=True`` wraps every dispatched callback in a
    host-CPU stopwatch and attributes the elapsed wall time to the owning
    process name (or the callable's qualname), accumulated in
    :attr:`profile_ns` / :attr:`profile_calls`.  This measures *host* time
    spent simulating, never simulated time -- it cannot perturb the model
    because the calendar and ``now`` are computed identically either way;
    it only makes hot spots in the sim kernel's own execution visible.
    """

    #: Recognised tie-break policies.
    TIEBREAKS = ("fifo", "random")

    def __init__(
        self,
        tiebreak: str = "fifo",
        tiebreak_seed: int = 0,
        record_trace: bool = False,
        profile: bool = False,
    ) -> None:
        if tiebreak not in self.TIEBREAKS:
            raise SimulationError(
                f"unknown tiebreak {tiebreak!r}; expected one of {self.TIEBREAKS}"
            )
        self.now: int = 0
        self.tiebreak = tiebreak
        self.trace: list[tuple[int, str]] = []
        self._record_trace = record_trace
        self._profile = profile
        #: Host-CPU nanoseconds attributed to each dispatch key (profiler).
        self.profile_ns: dict[str, int] = {}
        #: Dispatch counts per key (profiler).
        self.profile_calls: dict[str, int] = {}
        self._tiebreak_rng: Optional[random.Random] = (
            random.Random(tiebreak_seed) if tiebreak == "random" else None
        )
        self._queue: list[tuple[int, int, int, Handle, Callable, tuple]] = []
        self._seq = 0
        self._running = False
        #: Calendar entries dispatched so far (cancelled entries excluded).
        #: Cheap enough for the hot loop; campaign benchmarks divide this
        #: by wall time for their events/sec figure.
        self.stats_events = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn: Callable, *args: Any) -> Handle:
        """Run ``fn(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule into the past ({delay_ns}ns)")
        return self.at(self.now + int(delay_ns), fn, *args)

    def at(self, time_ns: int, fn: Callable, *args: Any) -> Handle:
        """Run ``fn(*args)`` at absolute simulated time ``time_ns``."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self.now}ns"
            )
        handle = Handle(time_ns)
        self._seq += 1
        # Same-instant entries are concurrent; under the sanitizer their
        # order is a seeded shuffle instead of FIFO (seq still breaks the
        # rare jitter collision deterministically).
        jitter = (
            self._tiebreak_rng.getrandbits(32) if self._tiebreak_rng is not None else 0
        )
        heapq.heappush(self._queue, (time_ns, jitter, self._seq, handle, fn, args))
        return handle

    def event(self, name: str = "") -> Event:
        """Create a pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay_ns: int, value: Any = None) -> Event:
        """An event that succeeds ``delay_ns`` from now."""
        ev = Event(self, name=f"timeout+{delay_ns}")
        self.schedule(delay_ns, ev.succeed, value)
        return ev

    def process(
        self, gen: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a coroutine process (begins running at the current instant)."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when the first of ``events`` succeeds.

        The value is the ``(event, value)`` pair of the first to resolve.
        """
        events = list(events)
        combined = self.event(name="any_of")

        def on_fire(ev: Event) -> None:
            if not combined.triggered:
                if ev.ok:
                    combined.succeed((ev, ev.value))
                else:
                    combined.fail(ev.value)

        for ev in events:
            ev.add_callback(on_fire)
        return combined

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when all of ``events`` have succeeded."""
        events = list(events)
        combined = self.event(name="all_of")
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        values: list[Any] = [None] * remaining

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(ev: Event) -> None:
                nonlocal remaining
                if combined.triggered:
                    return
                if not ev.ok:
                    combined.fail(ev.value)
                    return
                values[index] = ev.value
                remaining -= 1
                if remaining == 0:
                    combined.succeed(values)

            return on_fire

        for i, ev in enumerate(events):
            ev.add_callback(make_callback(i))
        return combined

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Process events until the calendar empties or ``now`` reaches ``until``.

        When ``until`` is given, ``now`` is advanced to exactly ``until`` on
        return even if the calendar drained earlier, so back-to-back
        ``run(until=...)`` calls see a continuous clock.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            queue = self._queue
            while queue:
                time_ns, _jitter, _seq, handle, fn, args = queue[0]
                if until is not None and time_ns > until:
                    break
                heapq.heappop(queue)
                if handle.cancelled:
                    continue
                self.now = time_ns
                self.stats_events += 1
                if self._record_trace:
                    self.trace.append(
                        (time_ns, getattr(fn, "__qualname__", repr(fn)))
                    )
                if self._profile:
                    key = _profile_key(fn)
                    t0 = time.perf_counter_ns()  # ctms-lint: disable=CTMS103
                    fn(*args)
                    dt = time.perf_counter_ns() - t0  # ctms-lint: disable=CTMS103
                    self.profile_ns[key] = self.profile_ns.get(key, 0) + dt
                    self.profile_calls[key] = self.profile_calls.get(key, 0) + 1
                else:
                    fn(*args)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    def profile_report(self, top: Optional[int] = None) -> str:
        """Aligned table of profiled dispatch keys, hottest first."""
        if not self.profile_ns:
            return "(no profile data; construct Simulator(profile=True))"
        rows = sorted(
            self.profile_ns.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if top is not None:
            rows = rows[:top]
        width = max(len(k) for k, _v in rows)
        total = sum(self.profile_ns.values())
        lines = [f"{'dispatch key'.ljust(width)}  {'calls':>8}  {'ms':>9}  {'%':>5}"]
        for key, ns in rows:
            lines.append(
                f"{key.ljust(width)}  {self.profile_calls[key]:>8}  "
                f"{ns / 1e6:>9.3f}  {100 * ns / total:>5.1f}"
            )
        return "\n".join(lines)

    def peek(self) -> Optional[int]:
        """Time of the next non-cancelled entry, or None if the calendar is empty."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now}ns queued={len(self._queue)}>"
