"""The discrete-event engine: simulator, events, coroutine processes.

The design follows the classic event-calendar pattern: a calendar of
``(time, sequence, action)`` entries, a monotonically non-decreasing ``now``,
and two complementary programming models on top:

* **callbacks** -- ``sim.schedule(delay, fn, *args)`` for fire-and-forget
  hardware behaviour (an adapter raising an interrupt line);
* **coroutine processes** -- generators that ``yield`` :class:`Event` objects,
  for behaviours with sequential structure (a driver transmit path, a traffic
  generator loop).

Both models interoperate: a callback can ``succeed()`` an event a process is
waiting on, and a process can schedule callbacks.

The calendar's storage is pluggable (:mod:`repro.sim.scheduler`): the
default is a calendar-queue/heap hybrid tuned for this testbed's time
distribution, with the classic single binary heap available as
``Simulator(scheduler="heapq")`` for A/B runs and golden-trace equivalence
tests.  Both backends dispatch in identical ``(time, jitter, seq)`` order.

Two scheduling tiers exist.  :meth:`Simulator.schedule` / :meth:`Simulator.at`
return a cancellable :class:`Handle`; :meth:`Simulator.schedule_fast` returns
nothing and allocates nothing beyond the calendar entry itself -- it is the
right call for the dominant fire-and-forget schedules in driver/ring/protocol
inner loops (see ``docs/KERNEL.md``).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Generator, Iterable, Optional

from bisect import insort
from heapq import heappush

from repro.sim.scheduler import CalendarScheduler, make_scheduler

#: Sentinel bound for run(until=None): beyond any representable sim time.
_FOREVER = 1 << 62


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation kernel."""


class ProcessKilled(Exception):
    """Thrown into a process generator when :meth:`Process.kill` is called."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*; exactly one call to :meth:`succeed` (or
    :meth:`fail`) resolves it, after which its callbacks run within the same
    simulated instant.  Waiting on an already-resolved event resumes the
    waiter immediately (still via the calendar, preserving causal ordering).
    """

    __slots__ = ("sim", "_callbacks", "_ok", "value", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._ok: Optional[bool] = None
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        """True once the event has been resolved (succeeded or failed)."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event resolves (immediately if it has)."""
        if self._callbacks is None:
            self.sim.schedule_fast(0, fn, self)
        else:
            self._callbacks.append(fn)

    def discard_callback(self, fn: Callable[["Event"], None]) -> None:
        """Stop ``fn`` from running when the event resolves (if still pending).

        A no-op when the event already resolved or ``fn`` was never attached.
        Combinators (:meth:`Simulator.any_of`) use this to detach themselves
        from losing events so a long-pending loser does not keep the combined
        event -- and everything reachable from its callbacks -- alive.
        """
        callbacks = self._callbacks
        if callbacks is not None:
            try:
                callbacks.remove(fn)
            except ValueError:
                pass

    def succeed(self, value: Any = None) -> "Event":
        """Resolve the event successfully, waking all waiters."""
        self._resolve(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Resolve the event with an exception; waiting processes see a raise."""
        self._resolve(False, exception)
        return self

    def _resolve(self, ok: bool, value: Any) -> None:
        if self._ok is not None:
            raise SimulationError(f"event {self.name or id(self)} resolved twice")
        self._ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        schedule_fast = self.sim.schedule_fast
        for fn in callbacks:
            schedule_fast(0, fn, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<Event {self.name or hex(id(self))} {state}>"


class Handle:
    """A cancellable scheduled callback returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "cancelled", "_sched")

    def __init__(self, time: int, sched: Any) -> None:
        self.time = time
        self.cancelled = False
        self._sched = sched

    def cancel(self) -> None:
        """Prevent the callback from running (a no-op if it already ran)."""
        if not self.cancelled:
            self.cancelled = True
            # Tombstone accounting: the entry stays queued until popped or
            # compacted away; the backend decides when skips outweigh work.
            self._sched.note_cancel()


class Process(Event):
    """A coroutine behaviour: a generator that yields :class:`Event` objects.

    The process is itself an :class:`Event` that succeeds with the
    generator's return value, so processes can wait on each other.  Throwing
    :class:`ProcessKilled` into the generator via :meth:`kill` terminates it;
    a killed process *fails* with the :class:`ProcessKilled` instance unless
    the generator swallows the exception and returns normally.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        sim.schedule_fast(0, self._step, None)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if self.triggered:
            return
        self._waiting_on = None
        exc = ProcessKilled(self.name)
        try:
            self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.fail(exc)
            return
        # Generator swallowed the kill and yielded again: treat as a bug --
        # a killed behaviour must wind down, not keep scheduling work.
        raise SimulationError(f"process {self.name} ignored kill()")

    def _step(self, fired: Optional[Event]) -> None:
        if self._ok is not None:
            return
        if fired is not None and fired is not self._waiting_on:
            return  # stale wakeup from an event we stopped waiting on
        self._waiting_on = None
        try:
            if fired is not None and not fired.ok:
                target = self._gen.throw(fired.value)
            else:
                target = self._gen.send(fired.value if fired is not None else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes may only "
                "yield Event objects"
            )
        self._waiting_on = target
        target.add_callback(self._step)


def _profile_key(fn: Callable) -> str:
    """Attribute a dispatched callback to a process name where possible.

    Bound methods of named objects (``Process._step`` of a driver process,
    ``Event.succeed`` of a named event) report that name; everything else
    falls back to the callable's qualname.
    """
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", "")
        if name:
            return f"{type(owner).__name__}:{name}"
    return getattr(fn, "__qualname__", repr(fn))


class Simulator:
    """The event calendar.

    ``now`` is the current simulated time in nanoseconds.  All mutation of
    simulated state must happen from inside a scheduled callback or process
    step; the calendar guarantees callbacks run in (time, FIFO) order.

    **Scheduler backends.**  ``scheduler=`` selects the calendar storage:
    ``"calendar"`` (default) is the calendar-queue/heap hybrid of
    :mod:`repro.sim.scheduler`; ``"heapq"`` is the classic single binary
    heap.  Both dispatch in identical order (the equivalence tests pin
    this); an already-constructed backend instance is accepted for tuning
    experiments.

    **Tie-break sanitizer.**  Events scheduled at the *same* instant are
    logically concurrent: a model whose end state depends on their FIFO
    order has a scheduler-order race that FIFO determinism merely hides.
    Constructing the simulator with ``tiebreak="random"`` replaces the FIFO
    tie-break with a seeded pseudo-random one (causality is preserved -- an
    entry scheduled *during* this instant still runs after its cause), so
    re-running a model under a few tie-break seeds and comparing end states
    flushes such races out.  :func:`repro.sim.sanitizer.check_tiebreak_invariance`
    wraps that recipe.

    ``record_trace=True`` appends a ``(time_ns, callable-qualname)`` tuple
    to :attr:`trace` for every executed calendar entry, giving tests a
    cheap fingerprint of the exact event order.

    **Profiler.**  ``profile=True`` wraps every dispatched callback in a
    host-CPU stopwatch and attributes the elapsed wall time to the owning
    process name (or the callable's qualname), accumulated in
    :attr:`profile_ns` / :attr:`profile_calls`.  This measures *host* time
    spent simulating, never simulated time -- it cannot perturb the model
    because the calendar and ``now`` are computed identically either way;
    it only makes hot spots in the sim kernel's own execution visible.
    """

    #: Recognised tie-break policies.
    TIEBREAKS = ("fifo", "random")

    def __init__(
        self,
        tiebreak: str = "fifo",
        tiebreak_seed: int = 0,
        record_trace: bool = False,
        profile: bool = False,
        scheduler: Any = "calendar",
    ) -> None:
        if tiebreak not in self.TIEBREAKS:
            raise SimulationError(
                f"unknown tiebreak {tiebreak!r}; expected one of {self.TIEBREAKS}"
            )
        self.now: int = 0
        self.tiebreak = tiebreak
        self.trace: list[tuple[int, str]] = []
        self._record_trace = record_trace
        self._profile = profile
        #: Host-CPU nanoseconds attributed to each dispatch key (profiler).
        self.profile_ns: dict[str, int] = {}
        #: Dispatch counts per key (profiler).
        self.profile_calls: dict[str, int] = {}
        self._tiebreak_rng: Optional[random.Random] = (
            random.Random(tiebreak_seed) if tiebreak == "random" else None
        )
        self._sched = make_scheduler(scheduler)
        self._push = self._sched.push
        self._seq = 0
        if self._tiebreak_rng is not None:
            # The class-level scheduling methods are the fifo fast path
            # (seq in the tie-break slot, no rng branch); the sanitizer
            # shadows them with the jitter-drawing variants per instance.
            self.schedule = self._schedule_jittered  # type: ignore[method-assign]
            self.schedule_fast = self._schedule_fast_jittered  # type: ignore[method-assign]
            self.at = self._at_jittered  # type: ignore[method-assign]
            self.at_fast = self._at_fast_jittered  # type: ignore[method-assign]
        elif type(self._sched) is CalendarScheduler:
            # Default configuration (fifo + calendar): shadow schedule_fast
            # and at_fast with fused closures that place the entry directly
            # in the calendar ring -- the single hottest call in the tree.
            fused_fast, fused_at = self._build_fused_fast_paths()
            self.schedule_fast = fused_fast  # type: ignore[method-assign]
            self.at_fast = fused_at  # type: ignore[method-assign]
        self._running = False
        #: Calendar entries dispatched so far (cancelled entries excluded).
        #: Campaign benchmarks divide this by wall time for their events/sec
        #: figure.  Updated in bulk when :meth:`run` returns; mid-callback
        #: readers (none exist today) would see the pre-run value.
        self.stats_events = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    # The class-level methods below are the fifo fast path: the unique
    # sequence number sits directly in the tie-break slot (entry[1]), so a
    # tuple comparison between same-time entries settles on the second
    # element and entry[2] is a constant 0.  Under ``tiebreak="random"``
    # the constructor shadows them with the ``*_jittered`` twins, whose
    # entries carry ``(time, jitter, seq)`` -- the layouts never mix
    # because the tie-break policy is fixed per simulator.  Backends only
    # ever read ``entry[0]`` and compare entries as tuples, and the
    # dispatch loop reads slots 3..5, which both layouts share.

    def schedule(self, delay_ns: int, fn: Callable, *args: Any) -> Handle:
        """Run ``fn(*args)`` after ``delay_ns`` nanoseconds (cancellable)."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule into the past ({delay_ns}ns)")
        time_ns = self.now + delay_ns
        handle = Handle(time_ns, self._sched)
        self._seq += 1
        self._push((time_ns, self._seq, 0, handle, fn, args))
        return handle

    def schedule_fast(self, delay_ns: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay_ns`` nanoseconds, non-cancellable.

        The allocation-free tier: no :class:`Handle` is created, so inner
        loops that never cancel (driver transmit chains, ring rotation,
        clock ticks, event resolution) pay only for the calendar entry.
        Ordering is identical to :meth:`schedule` -- the same sequence
        number and tie-break jitter are drawn.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule into the past ({delay_ns}ns)")
        self._seq += 1
        self._push((self.now + delay_ns, self._seq, 0, None, fn, args))

    def at(self, time_ns: int, fn: Callable, *args: Any) -> Handle:
        """Run ``fn(*args)`` at absolute simulated time ``time_ns``."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self.now}ns"
            )
        handle = Handle(time_ns, self._sched)
        self._seq += 1
        self._push((time_ns, self._seq, 0, handle, fn, args))
        return handle

    def at_fast(self, time_ns: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute time ``time_ns``, non-cancellable.

        The absolute-time twin of :meth:`schedule_fast`: no :class:`Handle`,
        so callers that cancel logically (an epoch counter checked by the
        callback, as the ring layer does) skip the per-entry allocation.
        """
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self.now}ns"
            )
        self._seq += 1
        self._push((time_ns, self._seq, 0, None, fn, args))

    def _build_fused_fast_paths(self) -> tuple[Callable, Callable]:
        """Build :meth:`schedule_fast`/:meth:`at_fast` with the calendar push inlined.

        Installed by the constructor for the default fifo + calendar
        configuration only.  The closures cache the scheduler's immutable
        geometry -- bucket width, count, mask, and the bucket ring itself
        (its lists are cleared in place by ``compact()``, never rebound) --
        as cell variables, which CPython loads faster than ``__slots__``
        attributes.  The mutable cursor state (``_cab``/``_cur``/``_idx``/
        ``_nbucketed``) and ``_overflow`` (rebound by ``compact()``) stay
        attribute reads.  The bodies must mirror ``push()`` exactly (same
        bucket selection, same active-bucket insort) -- the backend
        equivalence tests catch drift.
        """
        sched = self._sched
        wb = sched._wb
        nb = sched._nb
        mask = sched._mask
        buckets = sched._buckets
        err = SimulationError

        def schedule_fast(delay_ns: int, fn: Callable, *args: Any) -> None:
            if delay_ns < 0:
                raise err(f"cannot schedule into the past ({delay_ns}ns)")
            seq = self._seq + 1
            self._seq = seq
            t = self.now + delay_ns
            entry = (t, seq, 0, None, fn, args)
            ab = t >> wb
            if ab - sched._cab < nb:
                bucket = buckets[ab & mask]
                if bucket is sched._cur:
                    insort(bucket, entry, sched._idx)
                else:
                    bucket.append(entry)
                sched._nbucketed += 1
            else:
                heappush(sched._overflow, entry)

        def at_fast(time_ns: int, fn: Callable, *args: Any) -> None:
            if time_ns < self.now:
                raise err(
                    f"cannot schedule at {time_ns}ns, now is {self.now}ns"
                )
            seq = self._seq + 1
            self._seq = seq
            entry = (time_ns, seq, 0, None, fn, args)
            ab = time_ns >> wb
            if ab - sched._cab < nb:
                bucket = buckets[ab & mask]
                if bucket is sched._cur:
                    insort(bucket, entry, sched._idx)
                else:
                    bucket.append(entry)
                sched._nbucketed += 1
            else:
                heappush(sched._overflow, entry)

        return schedule_fast, at_fast

    # -- tiebreak="random" twins: same semantics, jitter drawn per entry --

    def _schedule_jittered(self, delay_ns: int, fn: Callable, *args: Any) -> Handle:
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule into the past ({delay_ns}ns)")
        time_ns = self.now + delay_ns
        handle = Handle(time_ns, self._sched)
        self._seq += 1
        self._push(
            (time_ns, self._tiebreak_rng.getrandbits(32), self._seq,
             handle, fn, args)
        )
        return handle

    def _schedule_fast_jittered(
        self, delay_ns: int, fn: Callable, *args: Any
    ) -> None:
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule into the past ({delay_ns}ns)")
        self._seq += 1
        self._push(
            (self.now + delay_ns, self._tiebreak_rng.getrandbits(32),
             self._seq, None, fn, args)
        )

    def _at_jittered(self, time_ns: int, fn: Callable, *args: Any) -> Handle:
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self.now}ns"
            )
        handle = Handle(time_ns, self._sched)
        self._seq += 1
        # Same-instant entries are concurrent; under the sanitizer their
        # order is a seeded shuffle instead of FIFO (seq still breaks the
        # rare jitter collision deterministically).
        self._push(
            (time_ns, self._tiebreak_rng.getrandbits(32), self._seq,
             handle, fn, args)
        )
        return handle

    def _at_fast_jittered(self, time_ns: int, fn: Callable, *args: Any) -> None:
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self.now}ns"
            )
        self._seq += 1
        self._push(
            (time_ns, self._tiebreak_rng.getrandbits(32), self._seq,
             None, fn, args)
        )

    def event(self, name: str = "") -> Event:
        """Create a pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay_ns: int, value: Any = None, name: str = "") -> Event:
        """An event that succeeds ``delay_ns`` from now.

        The event is unnamed by default -- naming every timeout turned out
        to be a measurable hot-path allocation (an f-string per call); pass
        ``name=`` where a debuggable label is worth it.
        """
        ev = Event(self, name=name)
        self.schedule_fast(delay_ns, ev.succeed, value)
        return ev

    def process(
        self, gen: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a coroutine process (begins running at the current instant)."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when the first of ``events`` succeeds.

        The value is the ``(event, value)`` pair of the first to resolve.
        Once the combined event resolves, the watcher detaches from the
        still-pending losers, so they stop referencing it.
        """
        events = list(events)
        combined = self.event(name="any_of")

        def on_fire(ev: Event) -> None:
            if not combined.triggered:
                for other in events:
                    if other is not ev:
                        other.discard_callback(on_fire)
                if ev.ok:
                    combined.succeed((ev, ev.value))
                else:
                    combined.fail(ev.value)

        for ev in events:
            ev.add_callback(on_fire)
        return combined

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when all of ``events`` have succeeded."""
        events = list(events)
        combined = self.event(name="all_of")
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        values: list[Any] = [None] * remaining
        callbacks: list[Callable[[Event], None]] = []

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(ev: Event) -> None:
                nonlocal remaining
                if combined.triggered:
                    return
                if not ev.ok:
                    # One failure resolves the combination; detach from the
                    # events still pending so they stop referencing it.
                    for other, cb in zip(events, callbacks):
                        if other is not ev:
                            other.discard_callback(cb)
                    combined.fail(ev.value)
                    return
                values[index] = ev.value
                remaining -= 1
                if remaining == 0:
                    combined.succeed(values)

            return on_fire

        for i, ev in enumerate(events):
            cb = make_callback(i)
            callbacks.append(cb)
            ev.add_callback(cb)
        return combined

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Process events until the calendar empties or ``now`` reaches ``until``.

        When ``until`` is given, ``now`` is advanced to exactly ``until`` on
        return even if the calendar drained earlier, so back-to-back
        ``run(until=...)`` calls see a continuous clock.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        limit = _FOREVER if until is None else until
        sched = self._sched
        pop = sched.pop
        dispatched = 0
        try:
            if self._record_trace or self._profile:
                self._run_instrumented(pop, limit)
            elif type(sched) is CalendarScheduler:
                # Fused dispatch for the default backend: serve the active
                # bucket by index inline, falling back to pop() only for
                # bucket refills and day boundaries.  The inline path must
                # mirror the serve arm of CalendarScheduler.pop(); state is
                # re-read after every callback because a callback may push
                # into, compact, or peek at the calendar.
                while True:
                    cur = sched._cur
                    if cur is not None:
                        idx = sched._idx
                        if idx < len(cur):
                            entry = cur[idx]
                            t = entry[0]
                            if t <= sched._cap and t <= limit:
                                sched._idx = idx + 1
                                handle = entry[3]
                                if handle is not None and handle.cancelled:
                                    sched.note_tombstone_popped()
                                    continue
                                self.now = t
                                dispatched += 1
                                entry[4](*entry[5])
                                continue
                    entry = pop(limit)
                    if entry is None:
                        break
                    handle = entry[3]
                    if handle is not None and handle.cancelled:
                        sched.note_tombstone_popped()
                        continue
                    self.now = entry[0]
                    dispatched += 1
                    entry[4](*entry[5])
            else:
                while True:
                    entry = pop(limit)
                    if entry is None:
                        break
                    handle = entry[3]
                    if handle is not None and handle.cancelled:
                        sched.note_tombstone_popped()
                        continue
                    self.now = entry[0]
                    dispatched += 1
                    entry[4](*entry[5])
            if until is not None and self.now < until:
                self.now = until
        finally:
            self.stats_events += dispatched
            self._running = False

    def _run_instrumented(self, pop: Callable, limit: int) -> None:
        """The traced/profiled twin of the fast dispatch loop."""
        sched = self._sched
        while True:
            entry = pop(limit)
            if entry is None:
                return
            handle = entry[3]
            if handle is not None and handle.cancelled:
                sched.note_tombstone_popped()
                continue
            time_ns, fn, args = entry[0], entry[4], entry[5]
            self.now = time_ns
            self.stats_events += 1
            if self._record_trace:
                self.trace.append(
                    (time_ns, getattr(fn, "__qualname__", repr(fn)))
                )
            if self._profile:
                key = _profile_key(fn)
                t0 = time.perf_counter_ns()  # ctms-lint: disable=CTMS103
                fn(*args)
                dt = time.perf_counter_ns() - t0  # ctms-lint: disable=CTMS103
                self.profile_ns[key] = self.profile_ns.get(key, 0) + dt
                self.profile_calls[key] = self.profile_calls.get(key, 0) + 1
            else:
                fn(*args)

    def profile_report(self, top: Optional[int] = None) -> str:
        """Aligned table of profiled dispatch keys, hottest first."""
        if not self.profile_ns:
            return "(no profile data; construct Simulator(profile=True))"
        rows = sorted(
            self.profile_ns.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if top is not None:
            rows = rows[:top]
        width = max(len(k) for k, _v in rows)
        total = sum(self.profile_ns.values())
        lines = [f"{'dispatch key'.ljust(width)}  {'calls':>8}  {'ms':>9}  {'%':>5}"]
        for key, ns in rows:
            lines.append(
                f"{key.ljust(width)}  {self.profile_calls[key]:>8}  "
                f"{ns / 1e6:>9.3f}  {100 * ns / total:>5.1f}"
            )
        return "\n".join(lines)

    def peek(self) -> Optional[int]:
        """Time of the next non-cancelled entry, or None if the calendar is empty."""
        sched = self._sched
        while True:
            entry = sched.first()
            if entry is None:
                return None
            handle = entry[3]
            if handle is None or not handle.cancelled:
                return entry[0]
            sched.drop_first()
            sched.note_tombstone_popped()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now}ns queued={len(self._sched)}>"
