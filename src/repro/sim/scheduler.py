"""Pluggable event-calendar backends for :class:`~repro.sim.engine.Simulator`.

A backend stores *entries* -- the 6-tuples the simulator builds in
``schedule()``/``at()``/``schedule_fast()``.  Under the default
``tiebreak="fifo"`` the unique sequence number sits directly in the
tie-break slot and the third field is a constant zero::

    (time_ns, seq, 0, handle_or_None, fn, args)

while ``tiebreak="random"`` carries a per-entry jitter draw ahead of the
sequence number::

    (time_ns, jitter, seq, handle_or_None, fn, args)

The layouts never mix (the tie-break policy is fixed per simulator), and
either way the first three fields totally order every entry (``seq`` is
unique), so the ``handle``/``fn``/``args`` tail is never compared.
Backends only ever read ``entry[0]`` and compare entries as whole tuples.  Two backends exist:

* :class:`HeapScheduler` -- the classic single binary heap (``heapq``).
  Simple, O(log n) per operation, and the reference for equivalence tests.
* :class:`CalendarScheduler` -- a calendar-queue/heap hybrid: a ring of
  fixed-width time buckets covers the near future (ring-rotation, DMA and
  clock-tick traffic lands here at O(1) per insert), while far timers
  overflow into a small binary heap and migrate into buckets as the
  cursor's day window slides forward.  An instant's entries are served
  straight out of the sorted bucket by index -- draining a same-instant
  batch touches no heap at all.

Both backends order entries identically, which the golden-trace
equivalence tests (``tests/sim/test_scheduler_equivalence.py``) pin down:
the same workload must produce byte-identical ``(time, qualname)`` traces,
``now`` and ``stats_events`` under either backend.

**Tombstones.**  Cancelling a :class:`~repro.sim.engine.Handle` does not
remove its entry; the dispatch loop skips it when popped.  Cancellation-
heavy models (CPU preemption cancels in-flight completions constantly)
would bloat the queue, so backends count live tombstones and compact --
rebuild without cancelled entries -- once tombstones outnumber live work.

This module is part of the sim kernel proper: pure, deterministic, and
stdlib-only.  It is listed with the sanctioned-home boundaries in
``repro.analysis.rules`` so the whole-program lint treats it, like the
rest of the kernel, as a trust boundary rather than code to re-derive.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Optional

#: One calendar entry: ``(time_ns, jitter, seq, handle_or_None, fn, args)``.
Entry = tuple  # structural alias; entries are plain tuples for speed

#: Tombstone count below which compaction is never attempted (small queues
#: recycle naturally; compacting them would cost more than it saves).
COMPACT_MIN_TOMBSTONES = 64


def _live(entry: Entry) -> bool:
    handle = entry[3]
    return handle is None or not handle.cancelled


class HeapScheduler:
    """The reference backend: one binary heap, exactly the classic design."""

    __slots__ = ("_heap", "_tombstones")

    name = "heapq"

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry) -> None:
        heappush(self._heap, entry)

    def pop(self, limit: int) -> Optional[Entry]:
        """Remove and return the next entry at time <= ``limit``, else None."""
        heap = self._heap
        if not heap or heap[0][0] > limit:
            return None
        return heappop(heap)

    def first(self) -> Optional[Entry]:
        """The next entry without removing it (cancelled entries included)."""
        heap = self._heap
        return heap[0] if heap else None

    def drop_first(self) -> None:
        """Remove the entry :meth:`first` returned (tombstone skip in peek)."""
        heappop(self._heap)

    # -- tombstone accounting -----------------------------------------
    def note_cancel(self) -> None:
        self._tombstones += 1
        if (
            self._tombstones > COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        ):
            self.compact()

    def note_tombstone_popped(self) -> None:
        if self._tombstones > 0:
            self._tombstones -= 1

    def compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        self._heap = [e for e in self._heap if _live(e)]
        heapify(self._heap)
        self._tombstones = 0


class CalendarScheduler:
    """Calendar-queue/heap hybrid tuned for the testbed's time distribution.

    Parameters
    ----------
    width_bits:
        log2 of the bucket width in nanoseconds.  The default (24, i.e.
        ~16.8 ms buckets) was swept on the clean-CTMSP bench: interrupt,
        DMA and ring traffic cluster densely enough that wide buckets win
        -- one C ``sort`` per bucket plus index serving beats many narrow
        buckets' cursor steps, and pushes landing in the bucket being
        served splice in via C ``bisect.insort``.  Narrower buckets only
        pay off when per-bucket populations get large enough for insert
        memmoves to dominate, which this workload is far from.
    nbuckets:
        Ring size (power of two).  ``nbuckets << width_bits`` is the *day*:
        entries due beyond it wait in the overflow heap and migrate into
        buckets as the day window slides.

    The structure keeps three invariants the correctness argument rests on:

    * the cursor bucket never passes an undispatched entry (scans advance
      one bucket at a time, draining the overflow heap into each newly
      exposed bucket, and a bounded ``pop`` that stops early rewinds the
      cursor to the bound's bucket);
    * within a bucket, entries are served in sorted ``(time, jitter, seq)``
      order from an index, and a push landing in the *active* bucket is
      insorted into the unserved suffix -- exactly where the heap would
      have put it;
    * a bucket may briefly hold entries of a later day (after a cursor
      rewind); serving stops at the first entry whose day differs from the
      cursor's, so they wait for the next pass instead of running early.
    """

    __slots__ = (
        "_wb",
        "_nb",
        "_mask",
        "_buckets",
        "_cab",
        "_cap",
        "_overflow",
        "_nbucketed",
        "_cur",
        "_idx",
        "_tombstones",
    )

    name = "calendar"

    def __init__(self, width_bits: int = 24, nbuckets: int = 256) -> None:
        if width_bits < 0 or nbuckets < 2 or nbuckets & (nbuckets - 1):
            raise ValueError("need width_bits >= 0 and a power-of-two ring")
        self._wb = width_bits
        self._nb = nbuckets
        self._mask = nbuckets - 1
        self._buckets: list[list[Entry]] = [[] for _ in range(nbuckets)]
        #: Cursor: absolute bucket index (time >> width_bits) being served.
        self._cab = 0
        #: Last instant of the cursor's day: ``t <= _cap`` is the cheap
        #: equivalent of ``t >> width_bits == _cab`` on the serve path.
        self._cap = (1 << width_bits) - 1
        #: Far timers: entries due at or beyond the current day window.
        self._overflow: list[Entry] = []
        #: Entries resident in bucket lists, *including* the active bucket's
        #: served-but-undeleted prefix; the prefix is settled in bulk when
        #: the bucket exhausts, keeping per-pop bookkeeping off the hot path.
        self._nbucketed = 0
        #: The active (sorted) bucket and the index of its next unserved
        #: entry; None when the cursor is between buckets.
        self._cur: Optional[list[Entry]] = None
        self._idx = 0
        self._tombstones = 0

    def __len__(self) -> int:
        pending = self._nbucketed + len(self._overflow)
        if self._cur is not None:
            pending -= self._idx
        return pending

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def push(self, entry: Entry) -> None:
        ab = entry[0] >> self._wb
        if ab - self._cab < self._nb:
            bucket = self._buckets[ab & self._mask]
            if bucket is self._cur:
                # Landing in the instant/bucket being drained: insort into
                # the unserved suffix, preserving (time, jitter, seq) order
                # without re-sorting what was already served.
                insort(bucket, entry, self._idx)
            else:
                bucket.append(entry)
            self._nbucketed += 1
        else:
            heappush(self._overflow, entry)

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def pop(self, limit: int) -> Optional[Entry]:
        """Remove and return the next entry at time <= ``limit``, else None."""
        cur = self._cur
        if cur is not None:
            idx = self._idx
            if idx < len(cur):
                entry = cur[idx]
                # Same-bucket batch: serve by index.  Stop at the bound or
                # at an entry belonging to a later day (cursor rewinds can
                # leave those in the bucket; they sort past _cap).
                t = entry[0]
                if t <= self._cap:
                    if t <= limit:
                        self._idx = idx + 1
                        return entry
                    return None
            # Bucket exhausted for this day: settle the served prefix in
            # bulk, keep any later-day stragglers for the next pass.
            idx = self._idx
            if idx:
                del cur[:idx]
                self._nbucketed -= idx
                self._idx = 0
            self._cur = None
        return self._scan(limit)

    def _scan(self, limit: int) -> Optional[Entry]:
        """Advance the cursor to the next non-empty bucket and serve it."""
        wb = self._wb
        nb = self._nb
        mask = self._mask
        buckets = self._buckets
        overflow = self._overflow
        cab = self._cab
        limit_ab = limit >> wb
        while True:
            # Slide the day window: far timers now inside it join buckets.
            horizon = (cab + nb) << wb
            while overflow and overflow[0][0] < horizon:
                entry = heappop(overflow)
                buckets[(entry[0] >> wb) & mask].append(entry)
                self._nbucketed += 1
            bucket = buckets[cab & mask]
            if bucket:
                bucket.sort()
                first = bucket[0]
                if first[0] >> wb == cab:
                    if first[0] > limit:
                        # Today's earliest entry is beyond the bound: stop,
                        # and rewind the cursor so entries scheduled after
                        # this (bounded) run still land ahead of it.
                        self._cab = min(cab, limit_ab)
                        return None
                    self._cab = cab
                    self._cap = ((cab + 1) << wb) - 1
                    self._cur = bucket
                    self._idx = 1
                    return first
                # Only later-day stragglers here; fall through and advance.
            if self._nbucketed == 0:
                if not overflow:
                    # Empty calendar: park the cursor at the bound.
                    self._cab = min(cab, limit_ab) if limit_ab >= self._cab else self._cab
                    return None
                # Nothing in the window at all: jump straight to the
                # overflow's day instead of stepping bucket by bucket.
                cab = max(cab + 1, (overflow[0][0] >> wb) - nb + 1)
                continue
            if cab >= limit_ab:
                self._cab = limit_ab
                return None
            cab += 1

    def first(self) -> Optional[Entry]:
        """The next entry without removing it (cancelled entries included)."""
        entry = self.pop((1 << 62))
        if entry is not None:
            # pop() only advanced the index; the entry is still in the list.
            self._idx -= 1
        return entry

    def drop_first(self) -> None:
        """Remove the entry :meth:`first` returned (tombstone skip in peek)."""
        self._idx += 1

    # -- tombstone accounting -----------------------------------------
    def note_cancel(self) -> None:
        self._tombstones += 1
        if (
            self._tombstones > COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self)
        ):
            self.compact()

    def note_tombstone_popped(self) -> None:
        if self._tombstones > 0:
            self._tombstones -= 1

    def compact(self) -> None:
        """Rebuild buckets and overflow without cancelled entries."""
        cur = self._cur
        if cur is not None:
            # The served prefix was already dispatched; drop it before the
            # rebuild or those entries would run twice.
            del cur[:self._idx]
            self._cur = None
            self._idx = 0
        entries: list[Entry] = []
        for bucket in self._buckets:
            entries.extend(e for e in bucket if _live(e))
            bucket.clear()
        entries.extend(e for e in self._overflow if _live(e))
        self._overflow = []
        self._nbucketed = 0
        self._tombstones = 0
        for entry in entries:
            self.push(entry)


#: Recognised ``Simulator(scheduler=...)`` names, default first.
SCHEDULER_FACTORIES: dict[str, Any] = {
    "calendar": CalendarScheduler,
    "heapq": HeapScheduler,
}


def make_scheduler(spec: Any) -> Any:
    """Resolve a ``Simulator(scheduler=...)`` argument to a backend.

    ``spec`` may be a recognised name (``"calendar"``, ``"heapq"``) or an
    already-constructed backend instance (anything with ``push``/``pop``).
    """
    if isinstance(spec, str):
        try:
            return SCHEDULER_FACTORIES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; expected one of "
                f"{tuple(SCHEDULER_FACTORIES)} or a backend instance"
            ) from None
    if hasattr(spec, "push") and hasattr(spec, "pop"):
        return spec
    raise ValueError(f"not a scheduler backend: {spec!r}")
