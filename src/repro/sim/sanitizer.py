"""Same-instant event-order race detector.

Events scheduled at identical timestamps are logically concurrent, yet the
calendar has to run them in *some* order -- normally FIFO.  A model whose
observable end state depends on that arbitrary order has a scheduler-order
race: it will reproduce perfectly (FIFO is deterministic) right up until
an innocent refactor reorders two ``schedule`` calls and every archived
measurement silently shifts.  The static pass (``repro lint``) cannot see
these; this dynamic sanitizer can.

The recipe: build the model once under FIFO tie-breaking to get a
reference fingerprint, then rebuild and rerun it under ``trials`` seeded
random tie-break permutations (:class:`~repro.sim.engine.Simulator` with
``tiebreak="random"``).  Causality within an instant is preserved, so a
well-formed model must land in the same end state every time; any
divergence is reported as an :class:`OrderRaceError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim.engine import SimulationError, Simulator

#: ``build(sim)`` wires a model onto the given simulator and returns a
#: zero-argument callable producing the model's end-state fingerprint
#: (any comparable, repr-able value: a tuple of counters, a digest...).
ModelBuilder = Callable[[Simulator], Callable[[], Any]]


class OrderRaceError(SimulationError):
    """A model's end state varied with same-instant tie-break order."""

    def __init__(self, reference: Any, divergences: list["Divergence"]) -> None:
        self.reference = reference
        self.divergences = divergences
        detail = "; ".join(
            f"tiebreak_seed={d.tiebreak_seed} -> {d.fingerprint!r}"
            for d in divergences[:3]
        )
        if len(divergences) > 3:
            detail += f"; ... {len(divergences) - 3} more"
        super().__init__(
            "same-instant event-order race: end state depends on tie-break "
            f"order (FIFO reference {reference!r} vs {detail})"
        )


@dataclass(frozen=True)
class Divergence:
    """One permuted run that disagreed with the FIFO reference."""

    tiebreak_seed: int
    fingerprint: Any


def _mix(seed: int, trial: int) -> int:
    """Derive trial ``trial``'s tie-break seed from the campaign seed."""
    return ((seed * 0x9E3779B1) ^ (trial * 0x85EBCA77) ^ 0xC2B2AE35) & 0xFFFFFFFF


def check_tiebreak_invariance(
    build: ModelBuilder,
    *,
    trials: int = 8,
    seed: int = 0,
    until: Optional[int] = None,
) -> Any:
    """Assert a model's end state is invariant to same-instant ordering.

    Runs ``build`` once under FIFO and ``trials`` times under seeded random
    tie-breaking, comparing fingerprints.  Returns the (common) fingerprint
    on success; raises :class:`OrderRaceError` listing every divergent
    trial otherwise.  Fully deterministic for a given ``seed``, so a caught
    race is replayable: rebuild with ``Simulator(tiebreak="random",
    tiebreak_seed=<reported seed>)`` to step through the losing order.
    """
    if trials < 1:
        raise ValueError("need at least one permuted trial")

    def one_run(tiebreak: str, tiebreak_seed: int) -> Any:
        sim = Simulator(tiebreak=tiebreak, tiebreak_seed=tiebreak_seed)
        fingerprint = build(sim)
        sim.run(until=until)
        return fingerprint()

    reference = one_run("fifo", 0)
    divergences = [
        Divergence(tiebreak_seed=ts, fingerprint=got)
        for ts in (_mix(seed, t) for t in range(trials))
        if (got := one_run("random", ts)) != reference
    ]
    if divergences:
        raise OrderRaceError(reference, divergences)
    return reference
