"""Simulated-time units.

All simulated time in :mod:`repro` is an ``int`` number of nanoseconds.  The
paper works at three very different resolutions -- the logic analyzer resolves
500 ns of jitter on the VCA interrupt line, the PC/AT timestamper ticks every
2 microseconds, and the RT/PC kernel clock only every 122 microseconds -- so the
base unit must be fine enough to express all of them exactly.  Integers keep
the event schedule deterministic (no floating-point drift across platforms).
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NS = 1
#: One microsecond in nanoseconds.
US = 1_000
#: One millisecond in nanoseconds.
MS = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000
#: One minute in nanoseconds.
MINUTE = 60 * SEC
#: One hour in nanoseconds.
HOUR = 3600 * SEC
#: One day in nanoseconds.
DAY = 24 * HOUR


def from_us(microseconds: float) -> int:
    """Convert a (possibly fractional) microsecond count to integer ns."""
    return round(microseconds * US)


def from_ms(milliseconds: float) -> int:
    """Convert a (possibly fractional) millisecond count to integer ns."""
    return round(milliseconds * MS)


def from_sec(seconds: float) -> int:
    """Convert a (possibly fractional) second count to integer ns."""
    return round(seconds * SEC)


def to_us(t_ns: int) -> float:
    """Express a nanosecond time as microseconds."""
    return t_ns / US


def to_ms(t_ns: int) -> float:
    """Express a nanosecond time as milliseconds."""
    return t_ns / MS


def to_sec(t_ns: int) -> float:
    """Express a nanosecond time as seconds."""
    return t_ns / SEC


def format_time(t_ns: int) -> str:
    """Render a simulated time with a human-appropriate unit.

    >>> format_time(2_600_000)
    '2600.0us'
    >>> format_time(12_000_000)
    '12.000ms'
    """
    if t_ns < 10 * US:
        return f"{t_ns}ns"
    if t_ns < 10 * MS:
        return f"{t_ns / US:.1f}us"
    if t_ns < 10 * SEC:
        return f"{t_ns / MS:.3f}ms"
    return f"{t_ns / SEC:.3f}s"
