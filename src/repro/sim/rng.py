"""Named, independently seeded random streams.

Every stochastic element of the testbed (background traffic inter-arrival
times, ring insertion epochs, protected-code section lengths, ...) draws from
its own named stream so that adding a new source of randomness does not
perturb the draws of existing ones.  This keeps experiment output stable
under refactoring -- the property the paper's authors got for free from
physical hardware and we must engineer.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """A factory of deterministic :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed mixes the master seed with
    a CRC of the name, so ``RandomStreams(7).get("arp")`` is reproducible and
    independent of whether ``get("afs")`` was ever called.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            mixed = (self.master_seed * 0x9E3779B1) ^ zlib.crc32(name.encode())
            stream = random.Random(mixed & 0xFFFFFFFFFFFF)
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        mixed = (self.master_seed * 0x85EBCA77) ^ zlib.crc32(name.encode())
        return RandomStreams(mixed & 0xFFFFFFFFFFFF)


def seeded_stream(seed: int) -> random.Random:
    """A deterministic stream from an explicit integer seed.

    The sanctioned constructor for code whose stream is keyed by a
    *derived integer* rather than a name (e.g. a chaos plan seeded by
    ``f(campaign_seed, intensity)``).  Keeping the construction here means
    no module outside ``sim/rng.py`` touches :mod:`random` directly, which
    is what the ctms-lint determinism rules (CTMS101/102/105) enforce.
    """
    return random.Random(seed)
