"""Discrete-event simulation kernel underlying the CTMS testbed.

Everything in :mod:`repro` runs on this kernel: simulated time is an integer
number of nanoseconds, events are scheduled on a binary heap, and long-lived
behaviours (device adapters, interrupt handlers, user processes, traffic
generators) are written as generator coroutines that yield
:class:`~repro.sim.engine.Event` objects.

The kernel is deliberately small and deterministic: given the same seed the
whole testbed replays the same microsecond-level schedule, which is what makes
the paper's histogram reproductions testable.
"""

from repro.sim.engine import (
    Event,
    Handle,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
)
from repro.sim.rng import RandomStreams, seeded_stream
from repro.sim.sanitizer import (
    Divergence,
    OrderRaceError,
    check_tiebreak_invariance,
)
from repro.sim.units import (
    MS,
    NS,
    SEC,
    US,
    format_time,
    from_us,
    to_ms,
    to_us,
)

__all__ = [
    "Divergence",
    "Event",
    "Handle",
    "MS",
    "NS",
    "OrderRaceError",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "SEC",
    "SimulationError",
    "Simulator",
    "US",
    "check_tiebreak_invariance",
    "format_time",
    "from_us",
    "seeded_stream",
    "to_ms",
    "to_us",
]
