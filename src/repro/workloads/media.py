"""Media source descriptions.

The paper's motivating rates:

* Section 1's initial test: "16KBytes/sec of audio data (8K samples/sec,
  12 bit/sample).  This worked extremely well within the current UNIX
  model."
* the failing test: "150KBytes/sec to simulate compressed video or Compact
  Disc quality audio";
* CD audio proper: "176.4KBytes/sec (44.1K samples, 16 bits per sample,
  2 channels)".

A :class:`MediaSource` translates a rate into the VCA-driver configuration
(bytes per 12 ms interrupt period) and playout parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.ctmsp import CTMSP_HEADER_BYTES
from repro.drivers.vca import VCADriverConfig
from repro.hardware import calibration
from repro.sim.units import MS, SEC


@dataclass(frozen=True)
class MediaSource:
    """One continuous-time media type."""

    name: str
    bytes_per_sec: int
    description: str

    @property
    def bytes_per_period(self) -> int:
        """Data bytes produced per 12 ms VCA interrupt period."""
        return math.ceil(
            self.bytes_per_sec * calibration.VCA_INTERRUPT_PERIOD / SEC
        )

    @property
    def packet_bytes(self) -> int:
        """Information-field bytes per CTMSP packet carrying one period."""
        return self.bytes_per_period + CTMSP_HEADER_BYTES

    def vca_config(self, **overrides) -> VCADriverConfig:
        """VCA driver configuration streaming this source."""
        defaults = dict(
            packet_bytes=self.packet_bytes,
            device_bytes_per_period=self.bytes_per_period,
        )
        defaults.update(overrides)
        return VCADriverConfig(**defaults)

    def playout_rate(self) -> float:
        """Consumption rate for a playout buffer, bytes/sec.

        Computed from the per-period packetization (not the nominal rate) so
        that drain exactly matches production; a nominal-rate drain would
        drift against the ceil-rounded per-period payload.
        """
        from repro.sim.units import SEC as _SEC

        return self.bytes_per_period * _SEC / calibration.VCA_INTERRUPT_PERIOD


#: "8K samples/sec, 12 bit/sample" -- the paper rounds to 16 KB/s.
TELEPHONE_AUDIO = MediaSource(
    name="telephone-audio",
    bytes_per_sec=16_000,
    description="8K samples/sec, 12 bit/sample voice (the working baseline)",
)

#: The failing stock-UNIX test and the CTMSP prototype's rate.
COMPRESSED_VIDEO = MediaSource(
    name="compressed-video",
    bytes_per_sec=150_000,
    description="150 KB/s compressed video / CD-quality surrogate",
)

#: "44.1K samples, 16 bits per sample, 2 channels".
CD_AUDIO = MediaSource(
    name="cd-audio",
    bytes_per_sec=176_400,
    description="Compact Disc audio, 44.1 kHz x 16 bit x 2 channels",
)
