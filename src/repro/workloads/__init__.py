"""Workloads: media sources and the campus background traffic.

Figure 5-4's analysis names three background frame classes on the ITC ring:
~20-byte MAC frames, 60-300-byte ARP/AFS/socket keepalives, and 1522-byte
file-transfer packets "sent while a compile is done".  Figure 5-2's second
mode comes from the measured hosts *themselves* transmitting some of that
traffic (keepalive replies to the central control machine), which makes the
single fixed transmit DMA buffer busy when a CTMSP packet wants it.

:mod:`~repro.workloads.background` builds that mix; :mod:`~repro.workloads.media`
describes the paper's media rates (telephone audio, CD audio, compressed
video) as source configurations; :mod:`~repro.workloads.churn` adds the
session-level demand -- seeded arrival/departure schedules the control
plane (:mod:`repro.core.control`) admits, queues, or rejects.
"""

from repro.workloads.background import BackgroundTraffic, LightweightSender
from repro.workloads.churn import (
    HOLD_FOREVER,
    ChurnDriver,
    ChurnSchedule,
    SessionRequest,
)
from repro.workloads.media import (
    CD_AUDIO,
    COMPRESSED_VIDEO,
    TELEPHONE_AUDIO,
    MediaSource,
)

__all__ = [
    "BackgroundTraffic",
    "CD_AUDIO",
    "COMPRESSED_VIDEO",
    "ChurnDriver",
    "ChurnSchedule",
    "HOLD_FOREVER",
    "LightweightSender",
    "MediaSource",
    "SessionRequest",
    "TELEPHONE_AUDIO",
]
