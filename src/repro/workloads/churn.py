"""Session churn: a deterministic arrival/departure workload.

The paper sized one stream; a campus deployment is a *population* of
clients starting and abandoning sessions all day.  This module gives the
session control plane (:mod:`repro.core.control`) something realistic to
admit against: a seeded schedule of ``establish()`` arrivals and releases,
reproducible event-for-event so admission decisions can be golden-pinned.

Two pieces:

* :class:`ChurnSchedule` -- an inert list of :class:`SessionRequest`
  records, hand-built (:meth:`ChurnSchedule.add`) or seeded-random
  (:meth:`ChurnSchedule.random`), with the same ``describe()`` /
  ``stable_hash()`` contract as :class:`~repro.faults.plan.FaultPlan`;
* :class:`ChurnDriver` -- arms a schedule against a control plane: each
  request submits at its arrival instant and, if admitted (immediately or
  later from the queue), releases after its hold time.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.units import MS, SEC

#: Requests with no departure scheduled hold their session forever.
HOLD_FOREVER = -1


@dataclass(frozen=True)
class SessionRequest:
    """One client's wish for a stream: when, for how long, how important."""

    at_ns: int
    client: str
    #: Hold time after admission; :data:`HOLD_FOREVER` means never release.
    duration_ns: int = HOLD_FOREVER
    #: Larger is more important; sheds lowest-priority-first.
    priority: int = 0

    def describe(self) -> str:
        hold = (
            "forever"
            if self.duration_ns == HOLD_FOREVER
            else f"{self.duration_ns / MS:.0f}ms"
        )
        return (
            f"t+{self.at_ns / MS:9.3f}ms  {self.client:<12} "
            f"prio={self.priority} hold={hold}"
        )


class ChurnSchedule:
    """An ordered schedule of session arrivals and departures."""

    def __init__(self) -> None:
        self.requests: list[SessionRequest] = []

    def add(
        self,
        at_ns: int,
        client: str,
        duration_ns: int = HOLD_FOREVER,
        priority: int = 0,
    ) -> "ChurnSchedule":
        self.requests.append(
            SessionRequest(
                at_ns=at_ns,
                client=client,
                duration_ns=duration_ns,
                priority=priority,
            )
        )
        return self

    def sorted_requests(self) -> list[SessionRequest]:
        """Arrival order; ties break by client name then priority."""
        return sorted(
            self.requests,
            key=lambda r: (r.at_ns, r.client, r.priority),
        )

    def describe(self) -> str:
        lines = [f"ChurnSchedule ({len(self.requests)} requests)"]
        lines += [f"  {r.describe()}" for r in self.sorted_requests()]
        return "\n".join(lines)

    def stable_hash(self) -> str:
        """Short content hash (order-insensitive), mirroring FaultPlan's.

        Campaign journals key churn results by this value: the hash names
        the demand the control plane will face, not how the schedule
        object was built.
        """
        canonical = json.dumps(
            [
                {
                    "at_ns": r.at_ns,
                    "client": r.client,
                    "duration_ns": r.duration_ns,
                    "priority": r.priority,
                }
                for r in self.sorted_requests()
            ],
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    @classmethod
    def random(
        cls,
        rng: random.Random,
        duration_ns: int,
        clients: list[str],
        arrivals_per_minute: float = 6.0,
        mean_hold_ns: int = 5 * SEC,
        min_hold_ns: int = 500 * MS,
        priorities: tuple[int, ...] = (0, 0, 1),
        start_ns: int = 100 * MS,
    ) -> "ChurnSchedule":
        """A seeded Poisson-ish churn mix.

        Determinism contract: the same ``rng`` state and parameters
        produce an identical schedule.  Arrivals follow an exponential
        inter-arrival clock over a round-robin client order (a client can
        re-arrive after departing); hold times are exponential with a
        floor, so short sessions exist but zero-length ones do not.
        """
        schedule = cls()
        if not clients:
            return schedule
        arrival_rate = arrivals_per_minute / (60 * SEC)
        t = start_ns
        i = 0
        while True:
            t += max(1, round(rng.expovariate(arrival_rate)))
            if t >= duration_ns:
                break
            hold = max(min_hold_ns, round(rng.expovariate(1 / mean_hold_ns)))
            schedule.add(
                at_ns=t,
                client=clients[i % len(clients)],
                duration_ns=hold,
                priority=rng.choice(priorities),
            )
            i += 1
        return schedule


class ChurnDriver:
    """Plays a :class:`ChurnSchedule` against a session control plane.

    The driver is pure mechanism -- every *decision* (admit, queue,
    reject, place) happens inside the control plane; the driver only
    submits on schedule and releases after the hold time.  A queued
    request's hold clock starts when the session is finally admitted, not
    at submission: the client waited, then used their full allotment.
    """

    def __init__(self, testbed, control_plane, schedule: ChurnSchedule) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.control = control_plane
        self.schedule = schedule
        #: Managed sessions created, in arrival order (for reports).
        self.managed: list = []
        self._armed = False

    def arm(self) -> "ChurnDriver":
        """Schedule every arrival relative to *now* (idempotent guard)."""
        if self._armed:
            raise RuntimeError("churn schedule already armed")
        self._armed = True
        for request in self.schedule.sorted_requests():
            self.sim.schedule(request.at_ns, self._arrive, request)
        return self

    def _arrive(self, request: SessionRequest) -> None:
        ms = self.control.submit(
            request.client, priority=request.priority
        )
        self.managed.append(ms)
        if request.duration_ns != HOLD_FOREVER:
            self._watch_for_departure(ms, request)

    def _watch_for_departure(self, ms, request: SessionRequest) -> None:
        """Start the hold clock once admitted; poll while queued."""
        if ms.admitted_at_ns is not None:
            self.sim.schedule(
                request.duration_ns, self.control.release, ms
            )
        elif ms.state == "queued":
            self.sim.schedule(
                self.control.config.tick_ns,
                self._watch_for_departure,
                ms,
                request,
            )
        # rejected: nothing to release.
