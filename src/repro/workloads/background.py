"""Background traffic: the loaded public ring of Test Case B.

Three mechanisms, mirroring the paper's account:

* **file-transfer traffic** between third-party stations (a file server and
  a compiling client): 1522-byte frames that occupy the wire and delay the
  token, but never touch the measured hosts' CPUs;
* **keepalive exchanges** between the central control machine and each
  measured host over UDP sockets ("The communications link between the
  control machine and each of the other machines in the test is via UNIX
  sockets"): 60-300-byte datagrams the measured host receives, processes,
  and *answers* -- the answer is a local transmission that can hold the
  fixed DMA buffer when a CTMSP packet arrives (Figure 5-2's second mode);
* **AFS keepalives** from the file server to the measured hosts: small
  frames costing receive-side CPU only;
* **telemetry streams**: the paper's rig recorded and analyzed "data in
  real time" with "all machines in the test ... directed by a central
  control machine" over UNIX sockets.  Each measured host ships measurement
  records to the control machine over TCP; the resulting MSS-sized segments
  (1522 bytes on the wire -- the paper's third traffic size class) are the
  local transmissions whose ~6.8 ms service time produces the 9400 us
  second mode of Figure 5-2.  The paper does not give the stream's rate;
  ours is DERIVED, calibrated so the delayed fractions match the figure.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.experiments.testbed import Host, HostConfig, Testbed
from repro.protocols.stack import NetStack
from repro.ring.frames import Frame
from repro.ring.station import RingStation
from repro.sim.rng import RandomStreams
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


class LightweightSender:
    """A wire-load station without a machine model behind it.

    Emits frames per an exponential process; destination stations treat
    them as ordinary LLC traffic.
    """

    def __init__(
        self,
        testbed: Testbed,
        name: str,
        dst: str,
        info_bytes: int,
        mean_packets_per_sec: float,
        rng: RandomStreams,
        protocol: str = "ip",
    ) -> None:
        self.sim = testbed.sim
        self.station = RingStation(testbed.ring, name)
        self.dst = dst
        self.info_bytes = info_bytes
        self.rate = mean_packets_per_sec
        self.protocol = protocol
        self._rng = rng.get(f"bg.{name}")
        self._running = False
        self.stats_sent = 0

    def start(self) -> None:
        if self._running or self.rate <= 0:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        gap = max(1, round(self._rng.expovariate(self.rate / SEC)))
        self.sim.schedule_fast(gap, self._emit)

    def _emit(self) -> None:
        if not self._running:
            return
        self.stats_sent += 1
        self.station.transmit(
            Frame(
                src=self.station.address,
                dst=self.dst,
                info_bytes=self.info_bytes,
                priority=0,
                protocol=self.protocol,
            )
        )
        self._schedule_next()


class BackgroundTraffic:
    """The full Test Case B load around a transmitter/receiver pair.

    ``load`` scales all rates; 1.0 approximates the paper's "normal loading
    of network" (a compile's file transfers plus keepalive chatter).
    """

    def __init__(
        self,
        testbed: Testbed,
        measured_hosts: list[Host],
        load: float = 1.0,
        control_host: Optional[Host] = None,
    ) -> None:
        self.testbed = testbed
        self.load = load
        self.senders: list[LightweightSender] = []
        self._keepalive_procs: list = []
        if load <= 0:
            self.control = None
            return
        rng = testbed.rng

        # File server <-> compiling client: 1522-byte frames both ways.
        client = RingStation(testbed.ring, "compile-client")
        self.senders.append(
            LightweightSender(
                testbed, "file-server", client.address,
                info_bytes=1522 - 21, mean_packets_per_sec=25.0 * load, rng=rng,
            )
        )
        self.senders.append(
            LightweightSender(
                testbed, "compile-requests", "file-server",
                info_bytes=180, mean_packets_per_sec=8.0 * load, rng=rng,
            )
        )

        # AFS keepalives to the measured hosts (receive-side CPU cost).
        for host in measured_hosts:
            self.senders.append(
                LightweightSender(
                    testbed, f"afs-to-{host.name}", host.name,
                    info_bytes=120, mean_packets_per_sec=2.0 * load, rng=rng,
                )
            )

        # The control machine: a full host exchanging UDP keepalives with
        # each measured host (which must reply -- local transmissions!).
        self.control = control_host or testbed.add_host(
            HostConfig(name="control", multiprogramming=True)
        )
        if not hasattr(self.control, "stack"):
            self.control.stack = NetStack(self.control.kernel, self.control.tr_driver)
        for host in measured_hosts:
            if not hasattr(host, "stack"):
                host.stack = NetStack(host.kernel, host.tr_driver)
        self._measured_hosts = measured_hosts

    #: DERIVED: mean telemetry segments per second per measured host at
    #: load 1.0; calibrated against Figure 5-2's delayed-packet fractions.
    TELEMETRY_SEGMENTS_PER_SEC = 8.0

    def start(self) -> None:
        """Start all flows (call before running the testbed)."""
        for sender in self.senders:
            sender.start()
        if self.load <= 0 or self.control is None:
            return
        rng = self.testbed.rng.get("bg.keepalive")
        for i, host in enumerate(self._measured_hosts):
            self._start_keepalive_pair(host, port=7000 + i, rng=rng)
            self._start_telemetry(host, port=8000 + i, rng=rng)

    def _start_keepalive_pair(self, host: Host, port: int, rng) -> None:
        control_sock = self.control.stack.udp_socket(port)
        host_sock = host.stack.udp_socket(port)
        mean_gap = max(1, round(1.2 * SEC / self.load))

        def control_loop(proc: UserProcess) -> Generator:
            while True:
                yield from proc.sleep_timeout(
                    max(1, round(rng.expovariate(1 / mean_gap)))
                )
                size = rng.randint(60, 300)
                yield from control_sock.sendto(host.name, port, size, tag="ka")

        def host_echo(proc: UserProcess) -> Generator:
            while True:
                dgram = yield from host_sock.recvfrom()
                # The measured host answers -- a local transmission that can
                # occupy the fixed DMA buffer when CTMSP traffic arrives.
                yield from host_sock.sendto(
                    dgram.src_host, dgram.src_port, dgram.data_bytes, tag="ka-reply"
                )

        self._keepalive_procs.append(
            UserProcess(self.control.kernel, f"ka-{host.name}").start(control_loop)
        )
        self._keepalive_procs.append(
            UserProcess(host.kernel, f"echo-{host.name}").start(host_echo)
        )

    def _start_telemetry(self, host: Host, port: int, rng) -> None:
        """Measurement records from ``host`` to the control machine (TCP)."""
        from repro.protocols.headers import TCP_MSS

        self.control.stack.tcp_listen(port)
        mean_gap = max(
            1, round(SEC / (self.TELEMETRY_SEGMENTS_PER_SEC * self.load))
        )

        def host_sender(proc: UserProcess) -> Generator:
            conn = yield from host.stack.tcp_connect(
                port, self.control.name, port
            )
            while True:
                # Records batch up between writes, so each write ships a
                # window's worth of MSS segments back to back.
                yield from proc.sleep_timeout(
                    max(1, round(rng.expovariate(1 / mean_gap)))
                )
                yield from conn.send(TCP_MSS)

        def control_drain(proc: UserProcess) -> Generator:
            while not self.control.stack.tcp.accepted(port):
                yield from proc.sleep_ns(20 * MS)
            conn = self.control.stack.tcp.accepted(port)[0]
            while True:
                yield from conn.recv(1 << 20)

        self._keepalive_procs.append(
            UserProcess(host.kernel, f"telemetry-{host.name}").start(host_sender)
        )
        self._keepalive_procs.append(
            UserProcess(self.control.kernel, f"drain-{host.name}").start(
                control_drain
            )
        )

    def total_background_frames(self) -> int:
        return sum(s.stats_sent for s in self.senders)
