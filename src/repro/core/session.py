"""CTMS point-to-point session setup.

The paper's control flow: a user process opens both devices and wires them
together with the new ``ioctl`` calls -- after that, data never touches user
space again.  :class:`CTMSSession` performs exactly that choreography on a
source machine and a sink machine:

1. on the sink, ``ioctl(vca, CTMS_ATTACH_SINK)`` registers the classify and
   deliver function handles with the Token Ring driver's split point;
2. on the source, ``ioctl(vca, CTMS_BIND)`` asks the Token Ring driver to
   compute the Token Ring header once and stores it in the VCA device state;
3. ``ioctl(vca, CTMS_START)`` loads the DSP timer program and the modified
   interrupt handler starts producing CTMSP packets every 12 ms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.stream import StreamStats
from repro.sim.engine import Event
from repro.unix.kernel import Kernel
from repro.unix.process import UserProcess

if TYPE_CHECKING:  # avoid a circular import; drivers import core.ctmsp
    from repro.drivers.token_ring import TokenRingDriver
    from repro.drivers.vca import VCADriver


class CTMSSession:
    """One continuous-media connection between two machines."""

    def __init__(
        self,
        source_kernel: Kernel,
        sink_kernel: Kernel,
        vca_device: str = "vca0",
        tr_device: str = "tr0",
    ) -> None:
        self.source_kernel = source_kernel
        self.sink_kernel = sink_kernel
        self.vca_device = vca_device
        self.tr_device = tr_device
        self.established: Optional[Event] = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def establish(self) -> Event:
        """Run the setup ioctls; returns an event firing when streaming."""
        sim = self.source_kernel.sim
        self.established = sim.event(name="ctms-established")
        sink_ready = sim.event(name="ctms-sink-ready")

        sink_vca: "VCADriver" = self.sink_kernel.device(self.vca_device)
        sink_tr: "TokenRingDriver" = self.sink_kernel.device(self.tr_device)
        source_tr: "TokenRingDriver" = self.source_kernel.device(self.tr_device)
        source_vca: "VCADriver" = self.source_kernel.device(self.vca_device)

        def sink_setup(proc: UserProcess):
            yield from proc.ioctl(
                self.vca_device, "CTMS_ATTACH_SINK", {"tr_driver": sink_tr}
            )
            sink_ready.succeed()

        def source_setup(proc: UserProcess):
            yield sink_ready  # wait for the sink's handles to be in place
            yield from proc.ioctl(
                self.vca_device,
                "CTMS_BIND",
                {
                    "tr_driver": source_tr,
                    "dst": sink_tr.adapter.address,
                    "dst_device": sink_vca.device_number,
                },
            )
            yield from proc.ioctl(self.vca_device, "CTMS_START")
            self.established.succeed()

        UserProcess(self.sink_kernel, "ctms-sink-setup").start(sink_setup)
        UserProcess(self.source_kernel, "ctms-src-setup").start(source_setup)
        return self.established

    def stop(self) -> None:
        """Halt the source's DSP timer (streaming ceases)."""
        source_vca: "VCADriver" = self.source_kernel.device(self.vca_device)
        source_vca.adapter.stop()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StreamStats:
        """Sink-side delivery statistics."""
        sink_vca: "VCADriver" = self.sink_kernel.device(self.vca_device)
        return sink_vca.stream_stats

    @property
    def sink_tracker(self):
        sink_vca: "VCADriver" = self.sink_kernel.device(self.vca_device)
        return sink_vca.tracker
