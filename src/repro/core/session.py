"""CTMS point-to-point session setup.

The paper's control flow: a user process opens both devices and wires them
together with the new ``ioctl`` calls -- after that, data never touches user
space again.  :class:`CTMSSession` performs that choreography on a source
machine and a sink machine, with the sides synchronized by a real exchange
of control frames over the ring (not an oracle):

1. on the sink, ``ioctl(vca, CTMS_ATTACH_SINK)`` registers the classify and
   deliver function handles with the Token Ring driver's split point, then
   installs a control-frame handler that answers setup requests;
2. the source transmits a ``setup-req`` control frame and waits for the
   sink's ``setup-ack`` -- retrying with bounded exponential backoff, since
   the very environment the paper measured (Ring Purges, soft errors) can
   eat a control frame as easily as a data frame;
3. on ack, ``ioctl(vca, CTMS_BIND)`` asks the Token Ring driver to compute
   the Token Ring header once, and ``ioctl(vca, CTMS_START)`` loads the DSP
   timer program; CTMSP packets flow every 12 ms.

If no ack ever arrives (the ring is down, the sink is gone), establishment
fails cleanly: :attr:`CTMSSession.established` fails with a
:class:`SessionEstablishTimeout` (also stored on :attr:`CTMSSession.error`)
instead of the stream silently never starting.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.stream import StreamStats
from repro.hardware.cpu import Exec
from repro.ring.frames import Frame
from repro.sim.engine import Event
from repro.sim.units import MS, SEC, US, format_time
from repro.unix.kernel import Kernel
from repro.unix.process import UserProcess

if TYPE_CHECKING:  # avoid a circular import; drivers import core.ctmsp
    from repro.drivers.token_ring import TokenRingDriver
    from repro.drivers.vca import VCADriver

#: Information-field size of a CTMS control frame (request or ack).
CONTROL_FRAME_BYTES = 64

_session_ids = itertools.count(1)


class SessionEstablishTimeout(RuntimeError):
    """Session setup exhausted its retries without hearing from the sink."""


def _control_frame(
    src: str, dst: str, priority: int, payload: dict
) -> Frame:
    from repro.drivers.token_ring import CTMS_CONTROL_PROTOCOL

    return Frame(
        src=src,
        dst=dst,
        info_bytes=CONTROL_FRAME_BYTES,
        priority=priority,
        protocol=CTMS_CONTROL_PROTOCOL,
        payload=payload,
    )


class CTMSSession:
    """One continuous-media connection between two machines.

    Parameters
    ----------
    source_kernel, sink_kernel:
        The two machines' kernels.
    source_vca_device, sink_vca_device:
        Per-side VCA device names; default to ``vca_device`` on both sides.
        A media server exposing several replica slots (``vca0``..``vcaN``)
        binds each session to its own source slot while every presentation
        machine keeps its single ``vca0`` sink.
    setup_timeout_ns:
        Overall deadline for the setup handshake.
    setup_max_attempts:
        Maximum ``setup-req`` transmissions before giving up.
    setup_backoff_ns:
        First retry wait; doubles per attempt up to ``setup_backoff_cap_ns``.
    resume_from:
        When set, the source continues packet numbering at this value (the
        sink tracker's high-water mark) instead of zero -- the failover
        resume path.
    align_start:
        Start the source DSP timer on a tick grid rebased at the current
        instant (a mid-run replica start) instead of the boot-time grid.
    """

    def __init__(
        self,
        source_kernel: Kernel,
        sink_kernel: Kernel,
        vca_device: str = "vca0",
        tr_device: str = "tr0",
        source_vca_device: Optional[str] = None,
        sink_vca_device: Optional[str] = None,
        setup_timeout_ns: int = 1 * SEC,
        setup_max_attempts: int = 8,
        setup_backoff_ns: int = 10 * MS,
        setup_backoff_cap_ns: int = 80 * MS,
        resume_from: Optional[int] = None,
        align_start: bool = False,
    ) -> None:
        if setup_timeout_ns <= 0 or setup_max_attempts <= 0:
            raise ValueError("setup timeout and attempts must be positive")
        if setup_backoff_ns <= 0:
            raise ValueError("setup backoff must be positive")
        self.source_kernel = source_kernel
        self.sink_kernel = sink_kernel
        self.vca_device = vca_device
        self.source_vca_device = source_vca_device or vca_device
        self.sink_vca_device = sink_vca_device or vca_device
        self.tr_device = tr_device
        self.resume_from = resume_from
        self.align_start = align_start
        self.setup_timeout_ns = setup_timeout_ns
        self.setup_max_attempts = setup_max_attempts
        self.setup_backoff_ns = setup_backoff_ns
        self.setup_backoff_cap_ns = setup_backoff_cap_ns
        self.established: Optional[Event] = None
        #: The SessionEstablishTimeout when setup failed, else None.
        self.error: Optional[Exception] = None
        #: ``setup-req`` frames transmitted so far.
        self.setup_attempts = 0
        self._session_id = next(_session_ids)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def establish(self) -> Event:
        """Run the setup handshake; returns an event that succeeds when
        streaming begins or fails with :class:`SessionEstablishTimeout`."""
        sim = self.source_kernel.sim
        self.established = sim.event(name="ctms-established")
        ack = sim.event(name="ctms-setup-ack")

        sink_vca: "VCADriver" = self.sink_kernel.device(self.sink_vca_device)
        sink_tr: "TokenRingDriver" = self.sink_kernel.device(self.tr_device)
        source_tr: "TokenRingDriver" = self.source_kernel.device(self.tr_device)
        session_id = self._session_id

        def sink_control(frame: Frame) -> Generator:
            """Answer setup requests (runs in the sink's rx interrupt)."""
            msg = frame.payload
            if (
                not isinstance(msg, dict)
                or msg.get("session") != session_id
                or msg.get("op") != "setup-req"
            ):
                return
            yield Exec(15 * US)
            reply = _control_frame(
                src=sink_tr.adapter.address,
                dst=frame.src,
                priority=sink_tr.config.ctmsp_ring_priority,
                payload={
                    "op": "setup-ack",
                    "session": session_id,
                    "dst_device": sink_vca.device_number,
                },
            )
            yield from sink_tr.output(None, reply)

        # A media server carries several sessions through one Token Ring
        # driver, so concurrent establishments must not clobber each other's
        # control handler: each session's handler consumes its own acks and
        # delegates everything else down the chain it found installed.
        chained_control = source_tr.control_input

        def source_control(frame: Frame) -> Generator:
            msg = frame.payload
            yield Exec(10 * US)
            if (
                isinstance(msg, dict)
                and msg.get("session") == session_id
                and msg.get("op") == "setup-ack"
            ):
                if not ack.triggered:
                    ack.succeed(msg)
            elif chained_control is not None:
                yield from chained_control(frame)

        def sink_setup(proc: UserProcess) -> Generator:
            yield from proc.ioctl(
                self.sink_vca_device, "CTMS_ATTACH_SINK", {"tr_driver": sink_tr}
            )
            # Only now -- with the data-path handles in place -- does the
            # sink start answering setup requests, so a stream can never
            # start before the sink is ready to classify it.
            sink_tr.control_input = sink_control

        def source_setup(proc: UserProcess) -> Generator:
            source_tr.control_input = source_control
            deadline = sim.now + self.setup_timeout_ns
            backoff = self.setup_backoff_ns
            while not ack.triggered:
                if (
                    self.setup_attempts >= self.setup_max_attempts
                    or sim.now >= deadline
                ):
                    self._fail_setup()
                    return
                self.setup_attempts += 1
                request = _control_frame(
                    src=source_tr.adapter.address,
                    dst=sink_tr.adapter.address,
                    priority=source_tr.config.ctmsp_ring_priority,
                    payload={"op": "setup-req", "session": session_id},
                )
                yield from source_tr.output(None, request)
                wait = min(backoff, max(1, deadline - sim.now))
                yield sim.any_of([ack, sim.timeout(wait)])
                backoff = min(backoff * 2, self.setup_backoff_cap_ns)
            msg: dict = ack.value
            bind_arg = {
                "tr_driver": source_tr,
                "dst": sink_tr.adapter.address,
                "dst_device": msg.get("dst_device", sink_vca.device_number),
            }
            if self.resume_from is not None:
                bind_arg["start_packet_no"] = self.resume_from
            yield from proc.ioctl(
                self.source_vca_device, "CTMS_BIND", bind_arg
            )
            start_arg = {"align_to_now": True} if self.align_start else None
            yield from proc.ioctl(
                self.source_vca_device, "CTMS_START", start_arg
            )
            self.established.succeed()

        UserProcess(self.sink_kernel, "ctms-sink-setup").start(sink_setup)
        UserProcess(self.source_kernel, "ctms-src-setup").start(source_setup)
        return self.established

    def _fail_setup(self) -> None:
        err = SessionEstablishTimeout(
            f"CTMS session {self._session_id}: no setup-ack after "
            f"{self.setup_attempts} attempts within "
            f"{format_time(self.setup_timeout_ns)}"
        )
        self.error = err
        assert self.established is not None
        self.established.fail(err)

    def stop(self) -> None:
        """Halt the source's DSP timer (streaming ceases)."""
        source_vca: "VCADriver" = self.source_kernel.device(
            self.source_vca_device
        )
        source_vca.adapter.stop()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StreamStats:
        """Sink-side delivery statistics."""
        sink_vca: "VCADriver" = self.sink_kernel.device(self.sink_vca_device)
        return sink_vca.stream_stats

    @property
    def sink_tracker(self):
        sink_vca: "VCADriver" = self.sink_kernel.device(self.sink_vca_device)
        return sink_vca.tracker
