"""The presentation machine: live playout with glitch detection.

The paper's success criterion is perceptual: data must reach "the subsystem
that is converting the digital data to audio in such a way that no
discernible glitches are heard."  :class:`PresentationMachine` is the
library's embodiment of that subsystem: it attaches to a CTMS sink, buffers
delivered packets, starts playout after a prefill, consumes at the media
rate *in simulated time*, and records every under-run as it happens -- so an
application (or experiment) can watch glitches occur live instead of
replaying traces afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.ctmsp import CTMSPPacket
from repro.sim.engine import Handle, Simulator
from repro.sim.units import SEC


@dataclass
class GlitchRecord:
    """One audible under-run."""

    at_ns: int
    starved_for_ns: int = 0


class PresentationMachine:
    """Consume a CTMS stream at its media rate, counting discernible glitches.

    Wire it to a sink by calling :meth:`on_packet` from the sink driver's
    delivery path (see :meth:`attach_to_vca`), or feed it manually.

    Parameters
    ----------
    sim:
        The simulator.
    rate_bytes_per_sec:
        Playout consumption rate (use the media source's per-period rate).
    prefill_bytes:
        Playout starts once this much data is buffered.
    capacity_bytes:
        Buffer bound; arrivals beyond it are dropped (counted).
    skip_ahead_after_ns:
        Graceful degradation: if a starvation lasts this long, the player
        gives up on the missing media, closes the glitch at this bounded
        duration, and *skips ahead* to resume at the live edge when data
        returns -- one audible dropout of known length instead of an
        open-ended stall.  ``None`` (the default) keeps the stalling
        behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_sec: float,
        prefill_bytes: int,
        capacity_bytes: int,
        skip_ahead_after_ns: Optional[int] = None,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError("rate must be positive")
        if prefill_bytes > capacity_bytes:
            raise ValueError("prefill cannot exceed capacity")
        if skip_ahead_after_ns is not None and skip_ahead_after_ns <= 0:
            raise ValueError("skip-ahead window must be positive")
        self.sim = sim
        self.rate = rate_bytes_per_sec
        self.prefill_bytes = prefill_bytes
        self.capacity_bytes = capacity_bytes
        self.skip_ahead_after_ns = skip_ahead_after_ns
        self._level = 0.0
        self._playing = False
        self._starved_since: Optional[int] = None
        self._last_drain = 0
        self._deadline: Optional[Handle] = None
        self._skip_timer: Optional[Handle] = None
        self._skipping = False
        self._skip_started = 0
        # --- observable state ---
        self.glitches: list[GlitchRecord] = []
        self.overflow_drops = 0
        self.bytes_played = 0.0
        self.peak_level = 0
        self.playout_started_at: Optional[int] = None
        #: Skip-ahead events performed (graceful-degradation mode).
        self.skips = 0
        #: Total simulated time spent skipped ahead (media abandoned).
        self.skipped_ns = 0

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def on_packet(self, data_bytes: int) -> None:
        """A packet's payload arrived at the sink."""
        if self._skipping:
            # Data returned after a skip-ahead: resume at the live edge.
            self._skipping = False
            self.skipped_ns += self.sim.now - self._skip_started
            self._last_drain = self.sim.now
        self._drain_to_now()
        if self._level + data_bytes > self.capacity_bytes:
            self.overflow_drops += 1
            return
        self._level += data_bytes
        self.peak_level = max(self.peak_level, math.ceil(self._level))
        if not self._playing and self._level >= self.prefill_bytes:
            self._playing = True
            self.playout_started_at = self.sim.now
            self._last_drain = self.sim.now
        if self._playing and self._starved_since is not None:
            # Starvation ends when data returns; close the glitch record.
            self.glitches[-1].starved_for_ns = (
                self.sim.now - self._starved_since
            )
            self._starved_since = None
            self._cancel_skip_timer()
        self._arm_deadline()

    def attach_to_vca(self, vca_driver) -> None:
        """Hook a VCA sink driver's delivery path into this player."""
        original = vca_driver.ctms_deliver

        def wrapped(frame, residency, chain):
            packet = frame.payload
            if isinstance(packet, CTMSPPacket):
                self.on_packet(packet.data_bytes)
            result = yield from original(frame, residency, chain)
            return result

        vca_driver.ctms_deliver = wrapped
        if vca_driver.tr_driver is not None and vca_driver.tr_driver.ctms_deliver is not None:
            vca_driver.tr_driver.ctms_deliver = wrapped

    # ------------------------------------------------------------------
    # playout mechanics
    # ------------------------------------------------------------------
    def _drain_to_now(self) -> None:
        if self._skipping or not self._playing or self._starved_since is not None:
            self._last_drain = self.sim.now
            return
        elapsed = self.sim.now - self._last_drain
        self._last_drain = self.sim.now
        need = self.rate * (elapsed / SEC)
        if need <= self._level:
            self._level -= need
            self.bytes_played += need
            return
        # The consumer ran dry partway through the interval: one glitch.
        played = self._level
        self.bytes_played += played
        self._level = 0.0
        dry_at = self.sim.now - round((need - played) / self.rate * SEC)
        self.glitches.append(GlitchRecord(at_ns=max(0, dry_at)))
        self._starved_since = max(0, dry_at)
        self._arm_skip_timer()

    def _arm_skip_timer(self) -> None:
        if self.skip_ahead_after_ns is None or self._starved_since is None:
            return
        self._cancel_skip_timer()
        fire_at = max(
            self.sim.now, self._starved_since + self.skip_ahead_after_ns
        )
        self._skip_timer = self.sim.at(fire_at, self._skip_ahead)

    def _cancel_skip_timer(self) -> None:
        if self._skip_timer is not None:
            self._skip_timer.cancel()
            self._skip_timer = None

    def _skip_ahead(self) -> None:
        """The starvation outlasted the skip window: abandon the gap."""
        self._skip_timer = None
        if self._starved_since is None:
            return
        self.glitches[-1].starved_for_ns = self.sim.now - self._starved_since
        self._starved_since = None
        self._skipping = True
        self._skip_started = self.sim.now
        self.skips += 1

    def _arm_deadline(self) -> None:
        """Schedule a check at the moment the buffer would run dry."""
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        if self._skipping or not self._playing or self._starved_since is not None:
            return
        dry_in = round(self._level / self.rate * SEC) + 1
        self._deadline = self.sim.schedule(dry_in, self._deadline_check)

    def _deadline_check(self) -> None:
        self._deadline = None
        self._drain_to_now()
        # If we are now starved, the glitch was recorded by the drain.

    def stop(self) -> None:
        """End playback cleanly (end of the media, user pressed stop).

        Drains to now and disarms the dry-buffer deadline so the natural
        end of a stream is not miscounted as a glitch.
        """
        self._drain_to_now()
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        self._cancel_skip_timer()
        self._playing = False
        if self._skipping:
            self._skipping = False
            self.skipped_ns += self.sim.now - self._skip_started
        if self._starved_since is not None:
            self.glitches[-1].starved_for_ns = self.sim.now - self._starved_since
            self._starved_since = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def level_bytes(self) -> float:
        """Current buffer level (drained to now)."""
        self._drain_to_now()
        return self._level

    @property
    def glitch_count(self) -> int:
        return len(self.glitches)

    def is_glitch_free(self) -> bool:
        return not self.glitches and self.overflow_drops == 0
