"""The presentation machine: live playout with glitch detection.

The paper's success criterion is perceptual: data must reach "the subsystem
that is converting the digital data to audio in such a way that no
discernible glitches are heard."  :class:`PresentationMachine` is the
library's embodiment of that subsystem: it attaches to a CTMS sink, buffers
delivered packets, starts playout after a prefill, consumes at the media
rate *in simulated time*, and records every under-run as it happens -- so an
application (or experiment) can watch glitches occur live instead of
replaying traces afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.ctmsp import CTMSPPacket
from repro.sim.engine import Handle, Simulator
from repro.sim.units import SEC


@dataclass
class GlitchRecord:
    """One audible under-run."""

    at_ns: int
    starved_for_ns: int = 0


class PresentationMachine:
    """Consume a CTMS stream at its media rate, counting discernible glitches.

    Wire it to a sink by calling :meth:`on_packet` from the sink driver's
    delivery path (see :meth:`attach_to_vca`), or feed it manually.

    Parameters
    ----------
    sim:
        The simulator.
    rate_bytes_per_sec:
        Playout consumption rate (use the media source's per-period rate).
    prefill_bytes:
        Playout starts once this much data is buffered.
    capacity_bytes:
        Buffer bound; arrivals beyond it are dropped (counted).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_sec: float,
        prefill_bytes: int,
        capacity_bytes: int,
    ) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError("rate must be positive")
        if prefill_bytes > capacity_bytes:
            raise ValueError("prefill cannot exceed capacity")
        self.sim = sim
        self.rate = rate_bytes_per_sec
        self.prefill_bytes = prefill_bytes
        self.capacity_bytes = capacity_bytes
        self._level = 0.0
        self._playing = False
        self._starved_since: Optional[int] = None
        self._last_drain = 0
        self._deadline: Optional[Handle] = None
        # --- observable state ---
        self.glitches: list[GlitchRecord] = []
        self.overflow_drops = 0
        self.bytes_played = 0.0
        self.peak_level = 0
        self.playout_started_at: Optional[int] = None

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def on_packet(self, data_bytes: int) -> None:
        """A packet's payload arrived at the sink."""
        self._drain_to_now()
        if self._level + data_bytes > self.capacity_bytes:
            self.overflow_drops += 1
            return
        self._level += data_bytes
        self.peak_level = max(self.peak_level, math.ceil(self._level))
        if not self._playing and self._level >= self.prefill_bytes:
            self._playing = True
            self.playout_started_at = self.sim.now
            self._last_drain = self.sim.now
        if self._playing and self._starved_since is not None:
            # Starvation ends when data returns; close the glitch record.
            self.glitches[-1].starved_for_ns = (
                self.sim.now - self._starved_since
            )
            self._starved_since = None
        self._arm_deadline()

    def attach_to_vca(self, vca_driver) -> None:
        """Hook a VCA sink driver's delivery path into this player."""
        original = vca_driver.ctms_deliver

        def wrapped(frame, residency, chain):
            packet = frame.payload
            if isinstance(packet, CTMSPPacket):
                self.on_packet(packet.data_bytes)
            result = yield from original(frame, residency, chain)
            return result

        vca_driver.ctms_deliver = wrapped
        if vca_driver.tr_driver is not None and vca_driver.tr_driver.ctms_deliver is not None:
            vca_driver.tr_driver.ctms_deliver = wrapped

    # ------------------------------------------------------------------
    # playout mechanics
    # ------------------------------------------------------------------
    def _drain_to_now(self) -> None:
        if not self._playing or self._starved_since is not None:
            self._last_drain = self.sim.now
            return
        elapsed = self.sim.now - self._last_drain
        self._last_drain = self.sim.now
        need = self.rate * (elapsed / SEC)
        if need <= self._level:
            self._level -= need
            self.bytes_played += need
            return
        # The consumer ran dry partway through the interval: one glitch.
        played = self._level
        self.bytes_played += played
        self._level = 0.0
        dry_at = self.sim.now - round((need - played) / self.rate * SEC)
        self.glitches.append(GlitchRecord(at_ns=max(0, dry_at)))
        self._starved_since = max(0, dry_at)

    def _arm_deadline(self) -> None:
        """Schedule a check at the moment the buffer would run dry."""
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        if not self._playing or self._starved_since is not None:
            return
        dry_in = round(self._level / self.rate * SEC) + 1
        self._deadline = self.sim.schedule(dry_in, self._deadline_check)

    def _deadline_check(self) -> None:
        self._deadline = None
        self._drain_to_now()
        # If we are now starved, the glitch was recorded by the drain.

    def stop(self) -> None:
        """End playback cleanly (end of the media, user pressed stop).

        Drains to now and disarms the dry-buffer deadline so the natural
        end of a stream is not miscounted as a glitch.
        """
        self._drain_to_now()
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        self._playing = False
        if self._starved_since is not None:
            self.glitches[-1].starved_for_ns = self.sim.now - self._starved_since
            self._starved_since = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def level_bytes(self) -> float:
        """Current buffer level (drained to now)."""
        self._drain_to_now()
        return self._level

    @property
    def glitch_count(self) -> int:
        return len(self.glitches)

    def is_glitch_free(self) -> bool:
        return not self.glitches and self.overflow_drops == 0
