"""The paper's contribution: CTMSP and direct driver-to-driver transfer.

This package is the *core library* of the reproduction -- everything a
downstream user touches to move continuous-time media across the ring:

* :mod:`~repro.core.ctmsp` -- the CTMS Protocol packet format (precomputed
  Token Ring header, destination device number, packet number) and its
  queueing/priority attributes;
* :mod:`~repro.core.direct` -- the direct driver-to-driver transfer model:
  the function-handle exchange the paper implements with new ``ioctl``
  calls, plus the pointer-passing extension for dual-DMA devices;
* :mod:`~repro.core.session` -- point-to-point CTMS connection setup between
  a source device on one machine and a sink device on another;
* :mod:`~repro.core.stream` -- stream sequencing and delivery statistics;
* :mod:`~repro.core.recovery` -- sequence tracking, duplicate suppression,
  and the optional Ring-Purge retransmission mode (Section 4's adapter the
  paper wished for);
* :mod:`~repro.core.buffering` -- playout buffer sizing (the Section 6
  "under 25KBytes" conclusion) and a playout simulator with glitch
  detection;
* :mod:`~repro.core.control` -- the session control plane: bandwidth-ledger
  admission control, watermark overload shedding, and mid-stream server
  failover (the sanctioned home of all control-plane policy decisions).
"""

from repro.core.buffering import PlayoutBuffer, required_buffer_bytes
from repro.core.control import (
    BandwidthLedger,
    ControlPlaneConfig,
    FailoverRecord,
    ManagedSession,
    SessionControlPlane,
)
from repro.core.ctmsp import (
    CTMSP_HEADER_BYTES,
    CTMSP_RING_PRIORITY,
    CTMSPPacket,
)
from repro.core.presentation import PresentationMachine
from repro.core.recovery import SequenceTracker
from repro.core.session import CTMSSession
from repro.core.stream import StreamStats

__all__ = [
    "BandwidthLedger",
    "CTMSP_HEADER_BYTES",
    "CTMSP_RING_PRIORITY",
    "CTMSPPacket",
    "CTMSSession",
    "ControlPlaneConfig",
    "FailoverRecord",
    "ManagedSession",
    "PlayoutBuffer",
    "PresentationMachine",
    "SequenceTracker",
    "SessionControlPlane",
    "StreamStats",
    "required_buffer_bytes",
]
