"""Sequence tracking and loss recovery.

The paper's shipped position (Section 5): "We decided to allow for the loss
of a single packet and to measure the frequency of this occurrence. ...
We decided that we could safely ignore this level of lost packets by adding
code to recover."  The recovery code is the sink-side bookkeeping here:
detect gaps (a purge ate a packet), tolerate duplicates (a purge-interrupt
transmitter may retransmit a packet that actually arrived), and never stall
the stream on either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Outcomes of recording a received packet number.
OK = "ok"
DUPLICATE = "duplicate"
GAP = "gap"
REORDERED = "reordered"


@dataclass
class SequenceTracker:
    """Tracks a single CTMSP stream's packet numbers at the sink.

    The stream starts at whatever number arrives first (the sink may attach
    mid-stream).  ``record`` classifies each arrival:

    * ``ok`` -- the next expected number;
    * ``gap`` -- one or more numbers were skipped (lost packets); the
      tracker resynchronizes to continue the stream;
    * ``duplicate`` -- a number at or below the highest seen, already
      delivered (purge-retransmit mode);
    * ``reordered`` -- a number below the highest seen that fills a known
      gap (should never happen on a ring that preserves order; counted so
      tests can assert it stays zero).
    """

    next_expected: int | None = None
    highest_seen: int = -1
    packets_ok: int = 0
    duplicates: int = 0
    gaps: int = 0
    lost_packets: int = 0
    reordered: int = 0
    _missing: set[int] = field(default_factory=set)

    def record(self, packet_no: int) -> str:
        if packet_no < 0:
            raise ValueError("negative packet number")
        if self.next_expected is None:
            self.next_expected = packet_no
        if packet_no == self.next_expected:
            self.packets_ok += 1
            self.highest_seen = packet_no
            self.next_expected = packet_no + 1
            return OK
        if packet_no > self.next_expected:
            skipped = packet_no - self.next_expected
            self.gaps += 1
            self.lost_packets += skipped
            self._missing.update(range(self.next_expected, packet_no))
            self.packets_ok += 1
            self.highest_seen = packet_no
            self.next_expected = packet_no + 1
            return GAP
        # packet_no < next_expected: either a late fill of a hole or a dup.
        if packet_no in self._missing:
            self._missing.discard(packet_no)
            self.lost_packets -= 1
            self.reordered += 1
            return REORDERED
        self.duplicates += 1
        return DUPLICATE

    @property
    def delivered(self) -> int:
        """Distinct packets accepted into the stream."""
        return self.packets_ok + self.reordered

    def missing(self) -> tuple[int, ...]:
        """Packet numbers currently known lost, in order.

        Gap-fill accounting invariant: ``len(self.missing())`` always equals
        ``lost_packets`` -- a late arrival that fills a hole is removed from
        the missing set *and* decrements the loss count atomically in
        :meth:`record`.
        """
        return tuple(sorted(self._missing))

    def loss_fraction(self) -> float:
        """Fraction of the stream lost so far."""
        total = self.delivered + self.lost_packets
        return self.lost_packets / total if total else 0.0

    def resume_point(self) -> int:
        """The packet number a replacement source should resume at.

        This is the high-water mark plus one (``next_expected``): a failover
        replica that continues numbering here splices onto the stream with
        no artificial gap and no duplicate storm.  Packets the dead source
        transmitted but the ring never delivered stay accounted as lost --
        the failover glitch is visible, bounded, and honest.  Zero before
        the first arrival.
        """
        return 0 if self.next_expected is None else self.next_expected
