"""Delivery statistics for one CTMSP stream.

Collects what the paper's Section 5.3 measurements need from the sink side:
per-packet source-to-classification latency, inter-arrival times, loss and
duplicate counts, and achieved throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ctmsp import CTMSPPacket
from repro.sim.units import SEC


@dataclass
class StreamStats:
    """Aggregated sink-side observations."""

    delivered: int = 0
    duplicates: int = 0
    gap_events: int = 0
    bytes_delivered: int = 0
    #: Source-interrupt-to-delivery latency per accepted packet (ns).
    latencies_ns: list[int] = field(default_factory=list)
    #: Delivery timestamps per accepted packet (ns).
    arrival_times: list[int] = field(default_factory=list)
    first_arrival: Optional[int] = None
    last_arrival: Optional[int] = None

    def record_delivery(
        self, packet: CTMSPPacket, now_ns: int, outcome: str = "ok"
    ) -> None:
        """Record one classified packet (called by the sink driver)."""
        if outcome == "duplicate":
            self.duplicates += 1
            return
        if outcome == "gap":
            self.gap_events += 1
        self.delivered += 1
        self.bytes_delivered += packet.info_bytes
        self.latencies_ns.append(now_ns - packet.born_at)
        self.arrival_times.append(now_ns)
        if self.first_arrival is None:
            self.first_arrival = now_ns
        self.last_arrival = now_ns

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def inter_arrival_ns(self) -> list[int]:
        """Gaps between consecutive accepted packets."""
        times = self.arrival_times
        return [b - a for a, b in zip(times, times[1:])]

    def throughput_bytes_per_sec(self) -> float:
        """Achieved delivery rate over the observed window."""
        if (
            self.first_arrival is None
            or self.last_arrival is None
            or self.last_arrival == self.first_arrival
        ):
            return 0.0
        span = self.last_arrival - self.first_arrival
        return self.bytes_delivered / (span / SEC)

    def max_latency_ns(self) -> int:
        return max(self.latencies_ns) if self.latencies_ns else 0

    def min_latency_ns(self) -> int:
        return min(self.latencies_ns) if self.latencies_ns else 0

    def jitter_ns(self) -> float:
        """Standard deviation of inter-arrival times -- delivery jitter.

        The quantity a playout buffer exists to absorb: zero for a perfect
        isochronous stream, growing with queueing interference.
        """
        gaps = self.inter_arrival_ns()
        if len(gaps) < 2:
            return 0.0
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        return var ** 0.5

    def worst_gap_ns(self) -> int:
        """Longest delivery stall (the buffer-sizing input of Section 6)."""
        gaps = self.inter_arrival_ns()
        return max(gaps) if gaps else 0
