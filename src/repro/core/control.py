"""The session control plane: admission, overload shedding, failover.

The paper sizes *one* CTMS stream on *one* 4 Mbit ring; the production
question (ROADMAP scale-out item) is what sits between hundreds of
``establish()`` requests and a handful of replicated media servers.  This
module is that layer, and it is the **sanctioned home of every
control-plane policy decision** (ctms-lint CTMS304): admission verdicts,
shed-victim selection, and failover replica choice live here and nowhere
else, so experiments and drivers can only *ask* for a session, never
decide one.

Three cooperating mechanisms:

**Admission control** -- a :class:`BandwidthLedger` tracks committed
bandwidth per media server and per ring segment.  A CTMSP stream's wire
rate is its packet size every DSP period (~167 KB/s gross for the paper's
150 KB/s payload commitment); the ledger admits a request only while the
segment's committed rate stays under ``capacity * headroom`` and a live
server has both a free VCA source slot and server-side bandwidth.
Otherwise the request queues (bounded) or is rejected.  The deterministic
churn workload that drives this lives in :mod:`repro.workloads.churn`.

**Overload shedding** -- a periodic control tick measures ring utilization
over the previous window.  Above ``shed_high_watermark`` the plane pauses
one victim per tick, chosen quality-centrically: lowest priority first,
newest admission first within a priority -- never the oldest session.
Resumption is hysteretic: only after utilization has stayed below
``shed_low_watermark`` for ``shed_resume_hold_ticks`` consecutive ticks is
the highest-priority, oldest shed session re-established (resuming at the
sink tracker's high-water mark), so shedding cannot flap.

**Mid-stream failover** -- the watchdog half of the tick monitors each
streaming session's sink-side high-water mark.  When a session's delivery
stalls past ``stall_detect_ns``, its server is declared down and *every*
session sourced there begins failover: a replica is chosen (least
committed live server with a free slot), and the session re-establishes
against it after a jittered backoff -- the jitter spreads the re-establish
attempts so one crash causes at most one, bounded, storm
(:class:`~repro.faults.invariants.StreamInvariantMonitor`'s
``reestablish_storm`` invariant).  The new source resumes packet numbering
at :meth:`~repro.core.recovery.SequenceTracker.resume_point` and starts
its DSP timer on a rebased tick grid, so the sink sees one bounded
delivery gap (the ``failover_gap`` invariant) instead of a duplicate storm
or an interrupt burst.

Observability: ``core`` may not import ``repro.obs`` (layering), so the
plane reports through a duck-typed ``observer`` with ``count``/``gauge``/
``span`` methods -- :class:`repro.obs.controlstats.ControlPlaneMetrics`
is the real implementation.  The observer is strictly observe-only: the
plane never branches on it.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.session import CTMSSession
from repro.hardware import calibration
from repro.sim.units import MS, SEC

# ----------------------------------------------------------------------
# vocabulary
# ----------------------------------------------------------------------

#: Admission verdicts.
ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"

#: Managed-session states.
PENDING = "pending"          # submitted, not yet decided
QUEUED = "queued"            # waiting for capacity
ESTABLISHING = "establishing"
STREAMING = "streaming"
SHED = "shed"                # paused by overload protection
FAILING_OVER = "failing-over"
STRANDED = "stranded"        # failover exhausted every replica
REJECTED = "rejected"
CLOSED = "closed"            # released by the client

#: Gross wire rate one CTMSP stream commits: a full information field
#: every DSP period.  The paper's 150 KB/s payload plus header framing.
def stream_gross_rate_bytes_per_sec(
    packet_bytes: int = calibration.CTMSP_PACKET_BYTES,
    period_ns: int = calibration.VCA_INTERRUPT_PERIOD,
) -> int:
    return round(packet_bytes * SEC / period_ns)


@dataclass
class ControlPlaneConfig:
    """Every knob of the control plane, in one inert record."""

    #: Gross bytes/sec one admitted session commits on the ring.
    session_rate_bytes_per_sec: int = field(
        default_factory=stream_gross_rate_bytes_per_sec
    )
    #: Raw ring-segment capacity (4 Mbit/s = 500 KB/s).
    ring_capacity_bytes_per_sec: int = 500_000
    #: Fraction of segment capacity the ledger may commit; the rest is
    #: headroom for MAC housekeeping, control frames, and purges.
    ring_commit_headroom: float = 0.85
    #: Bounded admission queue depth; beyond it requests are rejected.
    max_queue_depth: int = 8
    #: Control tick period (utilization sampling, watchdog, queue pump).
    tick_ns: int = 25 * MS
    #: Shed one victim per tick while measured utilization exceeds this.
    shed_high_watermark: float = 0.92
    #: Resume shed sessions only below this (hysteresis floor)...
    shed_low_watermark: float = 0.60
    #: ...and only after this many consecutive ticks below the floor.
    shed_resume_hold_ticks: int = 3
    #: Enable the shedding half of the tick.
    shed_enabled: bool = True
    #: Declare a streaming session stalled after this much sink silence.
    #: Must beat the playout deadline the invariant monitor enforces:
    #: detection latency is at most ``stall_detect + 2 * tick`` (~100 ms),
    #: comfortably inside the 150 ms inter-arrival budget, yet four media
    #: periods of tolerance against ordinary ring contention.
    stall_detect_ns: int = 50 * MS
    #: Enable the failover watchdog.
    failover_enabled: bool = True
    #: Base backoff before a failover re-establish attempt...
    failover_backoff_ns: int = 20 * MS
    #: ...plus a uniform jitter in [0, this) drawn per session, so one
    #: crash's victims spread their re-establishes instead of storming.
    failover_jitter_ns: int = 30 * MS
    #: Give up on a session after this many failover rounds.
    max_failover_rounds: int = 2

    def ring_budget_bytes_per_sec(self) -> int:
        return round(
            self.ring_capacity_bytes_per_sec * self.ring_commit_headroom
        )


# ----------------------------------------------------------------------
# the bandwidth ledger
# ----------------------------------------------------------------------


class BandwidthLedger:
    """Committed-bandwidth accounting per server and per ring segment.

    The ledger is pure arithmetic -- no clocks, no RNG -- so admission
    decisions are a deterministic function of the commitments it holds.
    Ring commitments and server commitments are tracked separately
    because failover moves a session between servers *without* touching
    its ring reservation (the stream keeps flowing on the same segment).
    """

    def __init__(self, ring_budget_bytes_per_sec: int) -> None:
        self.ring_budget_bytes_per_sec = ring_budget_bytes_per_sec
        self.ring_committed_bytes_per_sec = 0
        #: server -> {"budget": int, "committed": int, "free_slots": [str]}
        self._servers: dict[str, dict[str, Any]] = {}

    def add_server(
        self, name: str, slot_devices: list[str], budget_bytes_per_sec: int
    ) -> None:
        if name in self._servers:
            raise ValueError(f"duplicate server {name!r}")
        self._servers[name] = {
            "budget": budget_bytes_per_sec,
            "committed": 0,
            "free_slots": sorted(slot_devices),
        }

    def servers(self) -> list[str]:
        return sorted(self._servers)

    def server_committed(self, name: str) -> int:
        return self._servers[name]["committed"]

    def server_has_room(self, name: str, rate_bytes_per_sec: int) -> bool:
        entry = self._servers[name]
        return bool(entry["free_slots"]) and (
            entry["committed"] + rate_bytes_per_sec <= entry["budget"]
        )

    def ring_has_room(self, rate_bytes_per_sec: int) -> bool:
        return (
            self.ring_committed_bytes_per_sec + rate_bytes_per_sec
            <= self.ring_budget_bytes_per_sec
        )

    def commit(
        self, server: str, rate_bytes_per_sec: int, charge_ring: bool = True
    ) -> str:
        """Reserve one slot + bandwidth on ``server``; returns the slot."""
        entry = self._servers[server]
        if not entry["free_slots"]:
            raise RuntimeError(f"no free slot on {server}")
        slot = entry["free_slots"].pop(0)
        entry["committed"] += rate_bytes_per_sec
        if charge_ring:
            self.ring_committed_bytes_per_sec += rate_bytes_per_sec
        return slot

    def release(
        self,
        server: str,
        slot: str,
        rate_bytes_per_sec: int,
        release_ring: bool = True,
    ) -> None:
        entry = self._servers[server]
        entry["free_slots"].append(slot)
        entry["free_slots"].sort()
        entry["committed"] = max(0, entry["committed"] - rate_bytes_per_sec)
        if release_ring:
            self.ring_committed_bytes_per_sec = max(
                0, self.ring_committed_bytes_per_sec - rate_bytes_per_sec
            )

    def release_ring_only(self, rate_bytes_per_sec: int) -> None:
        """Drop a ring reservation whose server side is already released
        (a stranded failover kept the segment committed while it retried)."""
        self.ring_committed_bytes_per_sec = max(
            0, self.ring_committed_bytes_per_sec - rate_bytes_per_sec
        )

    def ring_commit_fraction(self) -> float:
        if self.ring_budget_bytes_per_sec <= 0:
            return 0.0
        return (
            self.ring_committed_bytes_per_sec / self.ring_budget_bytes_per_sec
        )


# ----------------------------------------------------------------------
# managed sessions
# ----------------------------------------------------------------------


@dataclass
class FailoverRecord:
    """One failover of one session, from detection to resumed delivery."""

    control_id: int
    from_server: str
    detected_at_ns: int
    #: Last sink arrival before the stall -- the delivery gap's left edge.
    gap_start_ns: int
    to_server: str = ""
    #: First sink arrival after re-establishment (closes the gap window).
    resumed_at_ns: Optional[int] = None
    #: ``CTMSSession.establish()`` invocations this failover needed.
    establish_rounds: int = 0
    #: The jittered backoff this session waited before re-establishing.
    backoff_ns: int = 0
    #: Packet number the replica resumed at (sink high-water mark).
    resume_from: int = 0

    def gap_ns(self, now_ns: int) -> int:
        end = self.resumed_at_ns if self.resumed_at_ns is not None else now_ns
        return end - self.gap_start_ns


@dataclass
class ManagedSession:
    """One client request under control-plane management.

    The underlying :class:`CTMSSession` object is *replaced* on failover,
    but the sink-side statistics and tracker live on the client's VCA
    driver, so :attr:`stats`/:attr:`sink_tracker` stay continuous across
    server moves -- which is exactly what the invariant monitor watches.
    """

    control_id: int
    client: str
    priority: int
    rate_bytes_per_sec: int
    submitted_at_ns: int
    state: str = PENDING
    decision: str = ""
    decision_reason: str = ""
    server: Optional[str] = None
    slot: Optional[str] = None
    session: Optional[CTMSSession] = None
    admitted_at_ns: Optional[int] = None
    closed_at_ns: Optional[int] = None
    sheds: int = 0
    failovers: list[FailoverRecord] = field(default_factory=list)
    #: Watchdog bookkeeping: last observed sink high-water mark and when
    #: it last advanced.
    _last_progress: int = -1
    _progress_at_ns: int = 0

    @property
    def stats(self):
        assert self.session is not None
        return self.session.stats

    @property
    def sink_tracker(self):
        assert self.session is not None
        return self.session.sink_tracker

    # Duck-typed interface consumed by StreamInvariantMonitor.
    def failover_windows(self) -> list[tuple[int, Optional[int]]]:
        """Delivery-gap windows, ends derived from arrival evidence.

        ``resumed_at_ns`` is stamped lazily (the control plane only walks
        arrivals at ``finish()``), so a mid-run reader computes the close
        itself: the first arrival after detection ends the window.  This
        keeps periodic invariant checks judging the *actual* glitch, not
        the bookkeeping lag.
        """
        arrivals = self.session.stats.arrival_times if self.session else []
        windows: list[tuple[int, Optional[int]]] = []
        for r in self.failovers:
            end = r.resumed_at_ns
            if end is None:
                i = bisect.bisect_right(arrivals, r.detected_at_ns)
                if i < len(arrivals):
                    end = arrivals[i]
            windows.append((r.gap_start_ns, end))
        return windows

    def failover_records(self) -> list[FailoverRecord]:
        return list(self.failovers)

    def live(self) -> bool:
        """Counted against ledgers/queues (admitted or waiting)."""
        return self.state in (
            QUEUED, ESTABLISHING, STREAMING, SHED, FAILING_OVER
        )


# ----------------------------------------------------------------------
# the control plane
# ----------------------------------------------------------------------


class SessionControlPlane:
    """Admission, shedding, and failover for one testbed's sessions.

    Determinism contract: all scheduling uses integer-ns delays on the
    testbed's simulator; the only randomness is the failover jitter,
    drawn from the named ``"control-plane"`` RNG stream in a fixed order
    (sessions are always iterated in submission order).
    """

    def __init__(
        self,
        testbed,
        config: Optional[ControlPlaneConfig] = None,
        observer=None,
    ) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.config = config or ControlPlaneConfig()
        self.observer = observer
        self.ledger = BandwidthLedger(self.config.ring_budget_bytes_per_sec())
        self._rng = testbed.rng.get("control-plane")
        self._ids = itertools.count(1)
        #: Every submission ever, in submission order (the deterministic
        #: iteration order for ticks and reports).
        self.sessions: list[ManagedSession] = []
        self._queue: list[ManagedSession] = []
        self._down: set[str] = set()
        self._ticking = False
        self._stopped = False
        # utilization sampling state: (sampled_at_ns, ring busy_ns then)
        self._busy_sample: tuple[int, int] = (0, 0)
        self.measured_utilization = 0.0
        self._below_low_ticks = 0
        # --- statistics ---
        self.stats_submitted = 0
        self.stats_admitted = 0
        self.stats_queued = 0
        self.stats_rejected = 0
        self.stats_shed = 0
        self.stats_resumed = 0
        self.stats_failovers = 0
        self.stats_stranded = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_server(
        self,
        name: str,
        slots: int = 1,
        budget_bytes_per_sec: Optional[int] = None,
    ) -> None:
        """Declare a media server with ``slots`` VCA source devices."""
        if name not in self.testbed.hosts:
            raise ValueError(f"unknown host {name!r}")
        if budget_bytes_per_sec is None:
            budget_bytes_per_sec = (
                slots * self.config.session_rate_bytes_per_sec
            )
        devices = [f"vca{i}" for i in range(slots)]
        self.ledger.add_server(name, devices, budget_bytes_per_sec)

    def start(self) -> "SessionControlPlane":
        """Begin the periodic control tick (idempotent)."""
        if not self._ticking:
            self._ticking = True
            self._busy_sample = (self.sim.now, self.testbed.ring.stats_busy_ns)
            self.sim.schedule(self.config.tick_ns, self._tick)
        return self

    def stop(self) -> None:
        """Stop ticking (end of campaign)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self,
        client: str,
        priority: int = 0,
        rate_bytes_per_sec: Optional[int] = None,
    ) -> ManagedSession:
        """One ``establish()`` request from ``client``; decided immediately.

        Returns the managed-session record; its ``state`` tells the caller
        whether it was admitted (``establishing``), ``queued``, or
        ``rejected``.
        """
        if client not in self.testbed.hosts:
            raise ValueError(f"unknown client host {client!r}")
        ms = ManagedSession(
            control_id=next(self._ids),
            client=client,
            priority=priority,
            rate_bytes_per_sec=(
                rate_bytes_per_sec
                if rate_bytes_per_sec is not None
                else self.config.session_rate_bytes_per_sec
            ),
            submitted_at_ns=self.sim.now,
        )
        self.sessions.append(ms)
        self.stats_submitted += 1
        verdict, reason = self.decide_admission(ms)
        ms.decision, ms.decision_reason = verdict, reason
        if verdict == ADMIT:
            self._admit(ms, reason)
        elif verdict == QUEUE:
            ms.state = QUEUED
            self._queue.append(ms)
            self.stats_queued += 1
            self._count("control.sessions.queued")
            self._span("queue", session=ms.control_id, reason=reason)
        else:
            ms.state = REJECTED
            self.stats_rejected += 1
            self._count("control.sessions.rejected")
            self._span("reject", session=ms.control_id, reason=reason)
        return ms

    def release(self, ms: ManagedSession) -> None:
        """Client departure: stop the stream and free its commitments."""
        if not ms.live():
            return
        was_committed = ms.state in (
            ESTABLISHING, STREAMING, FAILING_OVER
        )
        if ms.session is not None and ms.state == STREAMING:
            ms.session.stop()
        if was_committed and ms.server is not None:
            self.ledger.release(
                ms.server, ms.slot, ms.rate_bytes_per_sec
            )
        elif ms.state == QUEUED:
            self._queue.remove(ms)
        ms.state = CLOSED
        ms.closed_at_ns = self.sim.now
        self._span("release", session=ms.control_id)
        self._pump_queue()

    def decide_admission(self, ms: ManagedSession) -> tuple[str, str]:
        """The admission policy: one verdict, one human-readable reason.

        Order of checks: a client may carry one stream at a time; the
        ring segment must have committed headroom; some live server must
        have a free slot and server bandwidth.  Capacity misses queue
        (bounded) rather than reject, because churn departures free
        capacity on a timescale clients will plausibly wait out.
        """
        for other in self.sessions:
            if other is not ms and other.client == ms.client and other.live():
                return REJECT, f"client {ms.client} already has a session"
        capacity_miss: Optional[str] = None
        if not self.ledger.ring_has_room(ms.rate_bytes_per_sec):
            capacity_miss = "ring segment at committed capacity"
        elif self.select_server(ms.rate_bytes_per_sec) is None:
            capacity_miss = "no live server with a free slot"
        if capacity_miss is not None:
            if len(self._queue) < self.config.max_queue_depth:
                return QUEUE, capacity_miss
            return REJECT, f"{capacity_miss}; queue full"
        server = self.select_server(ms.rate_bytes_per_sec)
        assert server is not None
        return ADMIT, server

    def select_server(self, rate_bytes_per_sec: int) -> Optional[str]:
        """Placement policy: least-committed live server with room.

        Ties break by name, so placement is deterministic and spreads
        load across replicas -- which is also what makes failover cheap:
        a crash strands only the sessions of one replica.
        """
        best: Optional[str] = None
        best_committed = -1
        for name in self.ledger.servers():
            if name in self._down:
                continue
            if not self.ledger.server_has_room(name, rate_bytes_per_sec):
                continue
            committed = self.ledger.server_committed(name)
            if best is None or committed < best_committed:
                best, best_committed = name, committed
        return best

    def _admit(self, ms: ManagedSession, server: str) -> None:
        ms.server = server
        ms.slot = self.ledger.commit(server, ms.rate_bytes_per_sec)
        ms.admitted_at_ns = self.sim.now
        ms.state = ESTABLISHING
        self.stats_admitted += 1
        self._count("control.sessions.admitted")
        self._gauge(
            "control.ring.committed_fraction",
            self.ledger.ring_commit_fraction(),
        )
        self._span(
            "admit", session=ms.control_id, server=server, slot=ms.slot
        )
        self._establish(ms)

    def _pump_queue(self) -> None:
        """Admit queued requests (FIFO) while capacity allows."""
        admitted = True
        while admitted and self._queue:
            admitted = False
            head = self._queue[0]
            if not self.ledger.ring_has_room(head.rate_bytes_per_sec):
                break
            server = self.select_server(head.rate_bytes_per_sec)
            if server is None:
                break
            self._queue.pop(0)
            self._admit(head, server)
            admitted = True

    # ------------------------------------------------------------------
    # establishment (shared by admission, resume, and failover)
    # ------------------------------------------------------------------
    def _establish(
        self,
        ms: ManagedSession,
        resume_from: Optional[int] = None,
        record: Optional[FailoverRecord] = None,
    ) -> None:
        assert ms.server is not None and ms.slot is not None
        source = self.testbed.hosts[ms.server]
        sink = self.testbed.hosts[ms.client]
        align = resume_from is not None
        ms.session = CTMSSession(
            source.kernel,
            sink.kernel,
            source_vca_device=ms.slot,
            sink_vca_device="vca0",
            resume_from=resume_from,
            align_start=align,
        )
        if record is not None:
            record.establish_rounds += 1
        session = ms.session
        established = session.establish()
        established.add_callback(
            lambda event: self._establish_done(ms, session, record, event)
        )

    def _establish_done(
        self,
        ms: ManagedSession,
        session: CTMSSession,
        record: Optional[FailoverRecord],
        event,
    ) -> None:
        if session is not ms.session or ms.state not in (
            ESTABLISHING, FAILING_OVER
        ):
            return  # superseded (released or shed meanwhile)
        if event.ok:
            ms.state = STREAMING
            ms._last_progress = (
                session.sink_tracker.highest_seen
            )
            ms._progress_at_ns = self.sim.now
            self._span(
                "streaming", session=ms.control_id, server=ms.server
            )
            return
        # Establishment failed.  During failover, try the next replica;
        # otherwise give the capacity back and mark the session stranded.
        self._span(
            "establish-failed", session=ms.control_id, server=ms.server
        )
        if record is not None:
            # Give the failed replica's slot back before the next round --
            # the ring reservation is still held from before the crash.
            if ms.server is not None:
                self.ledger.release(
                    ms.server,
                    ms.slot,
                    ms.rate_bytes_per_sec,
                    release_ring=False,
                )
                ms.server = ms.slot = None
            self._retry_failover(ms, record)
        else:
            self._strand(ms)

    def _strand(self, ms: ManagedSession) -> None:
        if ms.server is not None:
            self.ledger.release(ms.server, ms.slot, ms.rate_bytes_per_sec)
            ms.server = ms.slot = None
        ms.state = STRANDED
        self.stats_stranded += 1
        self._count("control.sessions.stranded")
        self._span("strand", session=ms.control_id)
        self._pump_queue()

    # ------------------------------------------------------------------
    # the control tick: utilization, shedding, watchdog, queue pump
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        self._measure_utilization()
        if self.config.shed_enabled:
            self._shed_step()
        if self.config.failover_enabled:
            self._watchdog_step()
        self._pump_queue()
        self.sim.schedule(self.config.tick_ns, self._tick)

    def _measure_utilization(self) -> None:
        then, busy_then = self._busy_sample
        now = self.sim.now
        busy_now = self.testbed.ring.stats_busy_ns
        elapsed = now - then
        if elapsed > 0:
            self.measured_utilization = (busy_now - busy_then) / elapsed
        self._busy_sample = (now, busy_now)
        self._gauge("control.ring.utilization", self.measured_utilization)

    def _shed_step(self) -> None:
        util = self.measured_utilization
        if util > self.config.shed_high_watermark:
            self._below_low_ticks = 0
            victims = self.select_victims()
            if victims:
                self._shed(victims[0], util)
            return
        if util < self.config.shed_low_watermark:
            self._below_low_ticks += 1
            if self._below_low_ticks >= self.config.shed_resume_hold_ticks:
                self._resume_one_shed()
        else:
            self._below_low_ticks = 0

    def select_victims(self) -> list[ManagedSession]:
        """Shedding policy: who to pause, in order.

        Quality-centric (the Media-TCP argument): lowest priority first;
        within a priority, the newest admission first.  The oldest
        session of the highest priority is never shed -- someone must
        survive an overload for the service to have been worth running.
        """
        active = [ms for ms in self.sessions if ms.state == STREAMING]
        if len(active) <= 1:
            return []
        ordered = sorted(
            active, key=lambda ms: (ms.priority, -ms.control_id)
        )
        # Protect the oldest of the highest priority unconditionally.
        protected = min(
            active, key=lambda ms: (-ms.priority, ms.control_id)
        )
        return [ms for ms in ordered if ms is not protected]

    def _shed(self, ms: ManagedSession, util: float) -> None:
        assert ms.session is not None and ms.server is not None
        ms.session.stop()
        self.ledger.release(ms.server, ms.slot, ms.rate_bytes_per_sec)
        ms.server = ms.slot = None
        ms.state = SHED
        ms.sheds += 1
        self.stats_shed += 1
        self._count("control.sessions.shed")
        self._span(
            "shed",
            session=ms.control_id,
            utilization=round(util, 4),
        )

    def _resume_one_shed(self) -> None:
        shed = [ms for ms in self.sessions if ms.state == SHED]
        if not shed:
            return
        # Highest priority first, oldest first -- the mirror image of
        # the shedding order, so victims return in fairness order.
        ms = min(shed, key=lambda m: (-m.priority, m.control_id))
        if not self.ledger.ring_has_room(ms.rate_bytes_per_sec):
            return
        server = self.select_server(ms.rate_bytes_per_sec)
        if server is None:
            return
        ms.server = server
        ms.slot = self.ledger.commit(server, ms.rate_bytes_per_sec)
        ms.state = ESTABLISHING
        self.stats_resumed += 1
        self._count("control.sessions.resumed")
        self._span("resume", session=ms.control_id, server=server)
        self._below_low_ticks = 0
        self._establish(
            ms, resume_from=ms.session.sink_tracker.resume_point()
            if ms.session is not None
            else None,
        )

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def _watchdog_step(self) -> None:
        now = self.sim.now
        stalled_servers: list[str] = []
        for ms in self.sessions:
            if ms.state != STREAMING or ms.server is None:
                continue
            progress = ms.sink_tracker.highest_seen
            if progress != ms._last_progress:
                ms._last_progress = progress
                ms._progress_at_ns = now
                continue
            if progress < 0:
                continue  # nothing delivered yet; establishment covers this
            if (
                now - ms._progress_at_ns > self.config.stall_detect_ns
                and ms.server not in self._down
                and ms.server not in stalled_servers
            ):
                stalled_servers.append(ms.server)
        for server in stalled_servers:
            self._declare_down(server)

    def _declare_down(self, server: str) -> None:
        """Mark a server dead and start failover for all its sessions."""
        self._down.add(server)
        self._count("control.servers.down")
        self._span("server-down", server=server)
        for ms in self.sessions:
            if ms.server == server and ms.state == STREAMING:
                self._begin_failover(ms)

    def _begin_failover(self, ms: ManagedSession) -> None:
        assert ms.server is not None and ms.session is not None
        now = self.sim.now
        stats = ms.stats
        record = FailoverRecord(
            control_id=ms.control_id,
            from_server=ms.server,
            detected_at_ns=now,
            gap_start_ns=(
                stats.last_arrival
                if stats.last_arrival is not None
                else now
            ),
        )
        ms.failovers.append(record)
        ms.state = FAILING_OVER
        self.stats_failovers += 1
        self._count("control.sessions.failovers")
        self._span(
            "failover-detected",
            session=ms.control_id,
            from_server=record.from_server,
        )
        # Stop the dead source's session object (a no-op for a crashed
        # adapter, but a stalled-not-crashed server must not wake up and
        # double-transmit after the replica takes over).
        ms.session.stop()
        # The dead server's slot goes back to its ledger (it will not be
        # used while the server is down -- select_server skips it), but
        # the *ring* reservation stays: the stream is still committed to
        # this segment and will resume on it.
        self.ledger.release(
            ms.server, ms.slot, ms.rate_bytes_per_sec, release_ring=False
        )
        ms.server = ms.slot = None
        self._retry_failover(ms, record)

    def _retry_failover(self, ms: ManagedSession, record: FailoverRecord) -> None:
        if record.establish_rounds >= self.config.max_failover_rounds:
            # Give the ring reservation back too -- the stream is over.
            self.ledger.release_ring_only(ms.rate_bytes_per_sec)
            ms.state = STRANDED
            self.stats_stranded += 1
            self._count("control.sessions.stranded")
            self._span("strand", session=ms.control_id)
            self._pump_queue()
            return
        backoff = self.config.failover_backoff_ns * (
            2 ** record.establish_rounds
        )
        jitter = (
            self._rng.randrange(self.config.failover_jitter_ns)
            if self.config.failover_jitter_ns > 0
            else 0
        )
        record.backoff_ns = backoff + jitter
        self.sim.schedule(
            backoff + jitter, self._failover_attempt, ms, record
        )

    def _failover_attempt(
        self, ms: ManagedSession, record: FailoverRecord
    ) -> None:
        if ms.state != FAILING_OVER:
            return  # released meanwhile
        replica = self.plan_failover(ms)
        if replica is None:
            self._retry_failover(ms, record)
            return
        ms.server = replica
        # Ring bandwidth is still reserved from before the crash.
        ms.slot = self.ledger.commit(
            replica, ms.rate_bytes_per_sec, charge_ring=False
        )
        record.to_server = replica
        record.resume_from = ms.session.sink_tracker.resume_point()
        self._span(
            "failover-attempt",
            session=ms.control_id,
            to_server=replica,
            resume_from=record.resume_from,
            round=record.establish_rounds + 1,
        )
        self._establish(ms, resume_from=record.resume_from, record=record)

    def plan_failover(self, ms: ManagedSession) -> Optional[str]:
        """Failover policy: which replica inherits a stranded session.

        Same least-committed placement as admission, minus the down set
        -- a session follows capacity, not affinity.
        """
        return self.select_server(ms.rate_bytes_per_sec)

    # ------------------------------------------------------------------
    # post-establishment progress accounting (closes failover windows)
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End-of-run bookkeeping: close resumable failover windows."""
        for ms in self.sessions:
            self._close_failover_windows(ms)

    def _close_failover_windows(self, ms: ManagedSession) -> None:
        if not ms.failovers or ms.session is None:
            return
        arrivals = ms.stats.arrival_times
        for record in ms.failovers:
            if record.resumed_at_ns is not None:
                continue
            # First arrival after detection closes the window.
            for t in arrivals:
                if t > record.detected_at_ns:
                    record.resumed_at_ns = t
                    break

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Deterministic counters for reports and tests."""
        return {
            "submitted": self.stats_submitted,
            "admitted": self.stats_admitted,
            "queued": self.stats_queued,
            "rejected": self.stats_rejected,
            "shed": self.stats_shed,
            "resumed": self.stats_resumed,
            "failovers": self.stats_failovers,
            "stranded": self.stats_stranded,
            "servers_down": sorted(self._down),
            "queue_depth": len(self._queue),
            "ring_committed_bytes_per_sec": (
                self.ledger.ring_committed_bytes_per_sec
            ),
        }

    # ------------------------------------------------------------------
    # observe-only reporting (duck-typed; never affects behaviour)
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self.observer is not None:
            self.observer.count(name, n)

    def _gauge(self, name: str, value: float) -> None:
        if self.observer is not None:
            self.observer.gauge(name, value)

    def _span(self, event: str, **fields: Any) -> None:
        if self.observer is not None:
            self.observer.span(event, self.sim.now, **fields)
