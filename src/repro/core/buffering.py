"""Playout buffering: the Section 6 sizing argument and a playout simulator.

Section 6: "the worst case times between transmission and reception of a
single packet is 40 milliseconds.  There are two exceptional data points
within the 120 to 130 millisecond range. ... Even with these exceptional
data points, the buffer space needed for 150KBytes/sec CTMSP data transfer
is under 25KBytes."

The sizing rule is delay-bandwidth: to survive a delivery stall of D while
consuming at rate R, the sink must hold R*D of data (rounded up to whole
packets).  The :class:`PlayoutBuffer` checks a sizing against an actual
delivery trace: fill to a threshold, then drain at the nominal rate, and
count underruns ("discernible glitches").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.units import MS, SEC


def required_buffer_bytes(
    rate_bytes_per_sec: float,
    worst_case_delay_ns: int,
    packet_bytes: int = 2000,
) -> int:
    """Buffer needed to ride out ``worst_case_delay_ns`` at a given rate.

    Rounded up to whole packets, plus one packet of slop for the packet in
    transit when the stall begins (the paper's "under 25KBytes" for
    150 KB/s across a 130 ms worst case).
    """
    if rate_bytes_per_sec <= 0:
        raise ValueError("rate must be positive")
    if worst_case_delay_ns < 0:
        raise ValueError("negative delay")
    raw = rate_bytes_per_sec * (worst_case_delay_ns / SEC)
    packets = math.ceil(raw / packet_bytes) + 1
    return packets * packet_bytes


def max_drawdown_bytes(
    arrival_times_ns: list[int],
    rate_bytes_per_sec: float,
    packet_bytes: int = 2000,
) -> int:
    """Worst cumulative deficit of arrivals against a constant drain.

    The exact buffer requirement for a delivery trace: the largest amount by
    which consumption at ``rate_bytes_per_sec`` ever outruns the arrivals.
    Handles compound stalls (two ring insertions close together) that
    single-worst-gap sizing underestimates.
    """
    if not arrival_times_ns:
        return 0
    t0 = arrival_times_ns[0]
    worst = 0.0
    peak_credit = 0.0  # max of (arrived - drained) so far
    for i, t in enumerate(arrival_times_ns):
        drained = rate_bytes_per_sec * ((t - t0) / SEC)
        credit_before = i * packet_bytes - drained
        worst = max(worst, peak_credit - credit_before)
        peak_credit = max(peak_credit, credit_before + packet_bytes)
    return math.ceil(worst)


@dataclass
class PlayoutBuffer:
    """Replay a delivery trace through a fixed-size playout buffer.

    Packets of ``packet_bytes`` arrive at the times given to :meth:`run`;
    playout starts once ``prefill_bytes`` are buffered and then consumes at
    ``rate_bytes_per_sec`` continuously.  An underrun (buffer empty when the
    consumer needs data) is a glitch; an arrival that would exceed
    ``capacity_bytes`` is an overflow drop.
    """

    capacity_bytes: int
    rate_bytes_per_sec: float
    packet_bytes: int = 2000
    prefill_bytes: int = 0
    glitches: int = 0
    overflow_drops: int = 0
    peak_occupancy: int = 0
    playout_started_at: float | None = None

    _level: float = field(default=0.0, repr=False)
    _last_time: float = field(default=0.0, repr=False)
    _started: bool = field(default=False, repr=False)

    def run(self, arrival_times_ns: list[int]) -> "PlayoutBuffer":
        """Consume a full trace; returns self for chaining."""
        for t in arrival_times_ns:
            self.offer(t)
        return self

    def offer(self, t_ns: int) -> None:
        """One packet arrives at ``t_ns`` (times must be non-decreasing)."""
        self._drain_until(t_ns)
        if self._level + self.packet_bytes > self.capacity_bytes:
            self.overflow_drops += 1
            return
        self._level += self.packet_bytes
        self.peak_occupancy = max(self.peak_occupancy, math.ceil(self._level))
        if not self._started and self._level >= self.prefill_bytes:
            self._started = True
            self.playout_started_at = float(t_ns)

    def _drain_until(self, t_ns: int) -> None:
        if t_ns < self._last_time:
            raise ValueError("arrivals must be time-ordered")
        if self._started:
            elapsed = t_ns - self._last_time
            need = self.rate_bytes_per_sec * (elapsed / SEC)
            if need > self._level:
                # The consumer ran dry: one audible glitch for the stall.
                self.glitches += 1
                self._level = 0.0
            else:
                self._level -= need
        self._last_time = float(t_ns)

    def finish(self, t_ns: int) -> None:
        """Drain out to ``t_ns`` (end of experiment) to catch tail glitches."""
        self._drain_until(t_ns)
