"""The CTMS Protocol (CTMSP).

Section 3: "We propose that a new protocol be created, CTMS Protocol
(CTMSP), and added to the same layer as ARP and IP.  This protocol is
specifically designed for and limited to the assist of data transfers
between the network and other devices.  The protocol assumes a static
point-to-point connection between two machines."

The packet format the paper's prototype uses (Section 5.1): a precomputed
Token Ring header, a destination device number, and a packet number,
followed by data to a total information field of 2000 bytes.

CTMSP deliberately has *no* acknowledgements, retransmissions or dynamic
routing: on a single ring the transmitter's hardware already knows whether
the frame was copied, the route never changes, and the only loss source is
a Ring Purge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.hardware import calibration
from repro.ring.frames import Frame

#: CTMSP's own header inside the information field: destination device
#: number (2 bytes), packet number (4), stream id (2), plus the copy of the
#: precomputed Token Ring routing header the driver prepends (8).
CTMSP_HEADER_BYTES = 16

#: Token Ring media priority for CTMSP frames: "CTMSP uses a Token Ring
#: priority above any other traffic on our Token Ring."  Ordinary traffic
#: rides at 0; 802.5 reserves 7 for ring management, so the prototype uses 4.
CTMSP_RING_PRIORITY = 4


@dataclass(frozen=True, slots=True)
class PrecomputedHeader:
    """A Token Ring header computed once for the life of the connection.

    Section 3: "Splitting out the function that computes the Token Ring
    header.  This allows for precomputing the header once for the life of
    the connection."
    """

    src: str
    dst: str


@dataclass(slots=True)
class CTMSPPacket:
    """One CTMSP packet as the drivers see it."""

    stream_id: int
    packet_no: int
    dst_device: int
    data_bytes: int
    header: Optional[PrecomputedHeader] = None
    #: Timestamp of the source interrupt that produced this packet (set by
    #: the source driver; used by delivery statistics, not by the wire).
    born_at: int = 0
    #: Opaque observability context riding along the data path (set by
    #: ``repro.obs`` instrumentation when tracing; never read by the model).
    trace_ctx: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.data_bytes < 0:
            raise ValueError("negative payload")
        if self.packet_no < 0:
            raise ValueError("negative packet number")

    @property
    def info_bytes(self) -> int:
        """Total information-field length (header + data)."""
        return CTMSP_HEADER_BYTES + self.data_bytes

    @property
    def wire_packet_number(self) -> int:
        """The low 7 bits written to the measurement parallel port.

        Section 5.2.3: "the last 7 bits of the packet number were written to
        the parallel port".
        """
        return self.packet_no & 0x7F

    def to_frame(self, ring_priority: int = CTMSP_RING_PRIORITY) -> Frame:
        """Build the ring frame for this packet.

        Requires a bound (precomputed) header -- CTMSP never computes
        routing per packet.
        """
        if self.header is None:
            raise ValueError("CTMSP packet has no precomputed header bound")
        return Frame(
            src=self.header.src,
            dst=self.header.dst,
            info_bytes=self.info_bytes,
            priority=ring_priority,
            protocol="ctmsp",
            payload=self,
        )


def standard_packet(
    stream_id: int,
    packet_no: int,
    dst_device: int,
    header: Optional[PrecomputedHeader] = None,
    born_at: int = 0,
) -> CTMSPPacket:
    """The paper's 2000-byte packet (header + filler to 2000 bytes)."""
    return CTMSPPacket(
        stream_id=stream_id,
        packet_no=packet_no,
        dst_device=dst_device,
        data_bytes=calibration.CTMSP_PACKET_BYTES - CTMSP_HEADER_BYTES,
        header=header,
        born_at=born_at,
    )
