"""The Section 2 transfer-model analysis.

The paper's argument is a copy count: moving data between two devices
through a user process costs four-to-six copies ("as many as six and as few
as four.  The difference of two copies can be accounted for by the devices'
DMA capabilities.  There will always be four copies made by the CPU"); the
direct driver-to-driver change removes two CPU copies; and the
pointer-passing extension removes all CPU copies when both devices can DMA.

This module states those predictions as a model.  The COPIES experiment
*measures* the same quantities from the copy ledger after pushing packets
through each implemented path and checks them against this model -- the
reproduction of Figures 2-1 and 2-2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TransferPath(enum.Enum):
    """The three device-to-device disciplines Section 2 discusses."""

    #: Figure 2-1/2-2: device -> kernel -> user -> kernel -> device, with
    #: driver copies between fixed DMA buffers and mbufs on both sides.
    USER_PROCESS = "user_process"
    #: The paper's change: source driver hands packets straight to the
    #: destination driver; the user process only sets up handles.
    DIRECT_DRIVER = "direct_driver"
    #: The further extension: "transfers by pointer manipulation rather than
    #: by data copy" -- both drivers exchange DMA buffer pointers.
    POINTER_PASSING = "pointer_passing"


@dataclass(frozen=True)
class CopyCountModel:
    """Predicted copies for one path/device combination."""

    path: TransferPath
    source_has_dma: bool
    sink_has_dma: bool
    cpu_copies: int
    dma_copies: int

    @property
    def total_copies(self) -> int:
        return self.cpu_copies + self.dma_copies


def predicted_copies(
    path: TransferPath,
    source_has_dma: bool = True,
    sink_has_dma: bool = True,
) -> CopyCountModel:
    """The paper's copy arithmetic for each transfer discipline.

    USER_PROCESS (Figure 2-2), per side: a DMA device pays one DMA transfer
    into its fixed buffer plus a CPU copy between fixed buffer and mbufs; a
    non-DMA device's programmed-I/O read *is* the mbuf fill (one CPU copy,
    no DMA).  Either way the kernel<->user crossing adds one CPU copy per
    side.  Hence always four CPU copies, plus one DMA copy per DMA-capable
    device: "as many as six and as few as four", with "the difference of
    two copies ... accounted for by the devices' DMA capabilities."

    DIRECT_DRIVER: the two kernel<->user copies disappear; the driver-level
    buffer<->mbuf copies and the device transfers remain.

    POINTER_PASSING: each DMA-capable side sheds its buffer<->mbuf CPU copy
    by exchanging DMA buffer pointers -- "If only one of the two devices is
    capable of DMA, then only one copy can be eliminated."
    """
    dma = int(source_has_dma) + int(sink_has_dma)
    if path is TransferPath.USER_PROCESS:
        return CopyCountModel(path, source_has_dma, sink_has_dma, 4, dma)
    if path is TransferPath.DIRECT_DRIVER:
        return CopyCountModel(path, source_has_dma, sink_has_dma, 2, dma)
    if path is TransferPath.POINTER_PASSING:
        return CopyCountModel(path, source_has_dma, sink_has_dma, 2 - dma, dma)
    raise ValueError(f"unknown path {path}")


def paper_claims() -> dict[str, int]:
    """The headline numbers of Section 2, for the experiment report."""
    worst = predicted_copies(
        TransferPath.USER_PROCESS, source_has_dma=True, sink_has_dma=True
    )
    best = predicted_copies(
        TransferPath.USER_PROCESS, source_has_dma=False, sink_has_dma=False
    )
    direct = predicted_copies(
        TransferPath.DIRECT_DRIVER, source_has_dma=True, sink_has_dma=True
    )
    pointer = predicted_copies(
        TransferPath.POINTER_PASSING, source_has_dma=True, sink_has_dma=True
    )
    return {
        "user_process_max_total": worst.total_copies,  # "as many as six"
        "user_process_min_total": best.total_copies,  # "as few as four"
        "user_process_cpu": best.cpu_copies,  # "always four copies by CPU"
        "direct_cpu": direct.cpu_copies,  # two CPU copies eliminated
        "pointer_passing_cpu": pointer.cpu_copies,  # all CPU copies gone
    }
