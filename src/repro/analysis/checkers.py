"""AST checkers for the determinism and units-discipline rules.

One :class:`DeterminismVisitor` pass covers CTMS101-105 and CTMS201.  The
visitor is deliberately conservative: it flags patterns it can prove from
the syntax alone (a float literal in a delay expression, a call through a
``random`` module alias) and stays silent on anything it cannot see
through (a float smuggled in via a variable).  The dynamic tie-break
sanitizer (:mod:`repro.sim.sanitizer`) exists precisely to catch what
static analysis cannot.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    CONTROL_POLICY_NAMES,
    GLOBAL_RANDOM_FUNCTIONS,
    PROCESS_MACHINERY_MODULES,
    RULES,
    WALL_CLOCK_DATETIME_METHODS,
    WALL_CLOCK_TIME_FUNCTIONS,
)

#: Calendar entry points whose first positional argument is a delay or an
#: absolute simulated time, both integer nanoseconds.
_SCHEDULING_METHODS = frozenset({"schedule", "at", "timeout"})

#: Unit-conversion helpers that *return* floats (and so must never feed a
#: delay without an int()/round() around them).
_FLOAT_RETURNING_HELPERS = frozenset({"to_us", "to_ms", "to_sec", "float"})

#: Wrappers that launder any expression back to an int.
_INT_RETURNING_HELPERS = frozenset(
    {"int", "round", "len", "from_us", "from_ms", "from_sec"}
)


def def_anchor_line(node: ast.AST) -> int:
    """The ``def``/``class`` keyword's line, never a decorator's.

    ``node.lineno`` of a decorated definition pointed at the first
    decorator on older Pythons, and naive re-implementations (``min`` over
    the decorator list) repeat that bug -- which silently breaks inline
    suppressions, because the comment sits next to ``def`` while the
    finding anchors lines above it.  Anchoring past the last decorator's
    end is deterministic on every version.
    """
    line = getattr(node, "lineno", 1)
    for deco in getattr(node, "decorator_list", []):
        line = max(line, getattr(deco, "end_lineno", deco.lineno) + 1)
    return line


def call_anchor(node: ast.Call) -> ast.AST:
    """What a call-site finding anchors to: the call's opening line.

    For a multi-line call the argument expressions start on later lines;
    anchoring findings at the argument while documenting "suppress on the
    call's opening line" made suppressions silently ineffective.  All
    call-site findings now anchor at the call node itself.
    """
    return node


def _call_name(func: ast.expr) -> str:
    """The trailing identifier of a call target (``a.b.c()`` -> ``"c"``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_floaty(node: ast.expr) -> bool:
    """True when the expression is provably float-typed.

    ``max``/``min``/``abs`` pass through their argument types, so they are
    floaty exactly when some argument is; true division is always floaty.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floaty(node.left) or _is_floaty(node.right)
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if name in _FLOAT_RETURNING_HELPERS:
            return True
        if name in {"max", "min", "abs"}:
            return any(_is_floaty(arg) for arg in node.args)
        return False
    if isinstance(node, ast.IfExp):
        return _is_floaty(node.body) or _is_floaty(node.orelse)
    return False


def _launders_to_int(node: ast.expr) -> bool:
    """True when the expression's outermost operation guarantees an int."""
    return (
        isinstance(node, ast.Call)
        and _call_name(node.func) in _INT_RETURNING_HELPERS
    )


class DeterminismVisitor(ast.NodeVisitor):
    """Single-pass checker for CTMS101/102/103/104/105/201/303/304."""

    def __init__(
        self,
        path: str,
        *,
        rng_home: bool = False,
        process_home: bool = False,
        control_home: bool = False,
    ) -> None:
        self.path = path
        #: True for repro/sim/rng.py, the one sanctioned home of raw
        #: ``random`` machinery (CTMS101/102/105 are off there).
        self.rng_home = rng_home
        #: True for repro/experiments/fleet.py, the one sanctioned home of
        #: process machinery and host clocks (CTMS103/303 are off there --
        #: a supervisor cannot time out a hung worker on simulated time).
        self.process_home = process_home
        #: True for repro/core/control.py, the one sanctioned home of
        #: control-plane policy decisions (CTMS304 is off there).
        self.control_home = control_home
        self.findings: list[Finding] = []
        self._random_aliases: set[str] = set()
        self._time_aliases: set[str] = set()
        self._datetime_module_aliases: set[str] = set()
        self._datetime_type_aliases: set[str] = set()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if rule_id == "CTMS103" and self.process_home:
            return  # the fleet supervisor lives on the host clock
        rule = RULES[rule_id]
        self.findings.append(
            Finding(
                file=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule.id,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
            )
        )

    # ------------------------------------------------------------------
    # imports: track aliases, flag `from random import ...`
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(local)
            elif alias.name == "time":
                self._time_aliases.add(local)
            elif alias.name == "datetime":
                self._datetime_module_aliases.add(local)
            self._check_process_machinery(alias.name.split(".")[0], node)
        self.generic_visit(node)

    def _check_process_machinery(self, top_module: str, node: ast.stmt) -> None:
        """CTMS303: process/thread machinery outside the fleet module."""
        if self.process_home or top_module not in PROCESS_MACHINERY_MODULES:
            return
        self._emit(
            "CTMS303",
            node,
            f"`{top_module}` imported outside the fleet supervisor "
            "(repro/experiments/fleet.py)",
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_control_policy(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_control_policy(node)
        self.generic_visit(node)

    def _check_control_policy(self, node: ast.AST) -> None:
        """CTMS304: policy decisions outside the session control plane."""
        name = getattr(node, "name", "")
        if self.control_home or name not in CONTROL_POLICY_NAMES:
            return
        anchored = ast.copy_location(ast.Pass(), node)
        anchored.lineno = def_anchor_line(node)
        self._emit(
            "CTMS304",
            anchored,
            f"control-plane policy `{name}` defined outside "
            "repro/core/control.py",
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            self._check_process_machinery(node.module.split(".")[0], node)
        if node.module == "random" and not self.rng_home:
            names = ", ".join(a.name for a in node.names)
            self._emit(
                "CTMS105", node, f"`from random import {names}` outside sim/rng.py"
            )
        if node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_FUNCTIONS:
                    self._emit(
                        "CTMS103",
                        node,
                        f"`from time import {alias.name}` pulls a wall clock "
                        "into a simulated path",
                    )
        if node.module == "datetime":
            for alias in node.names:
                if alias.name in {"datetime", "date"}:
                    self._datetime_type_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # calls: global random, unseeded Random, wall clocks, float delays
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in self._random_aliases and not self.rng_home:
                if attr in GLOBAL_RANDOM_FUNCTIONS:
                    self._emit(
                        "CTMS101",
                        node,
                        f"random.{attr}() draws from the shared global RNG",
                    )
                elif attr == "Random" and not node.args and not node.keywords:
                    self._emit(
                        "CTMS102",
                        node,
                        "random.Random() without a seed is wall-clock seeded",
                    )
            if base in self._time_aliases and attr in WALL_CLOCK_TIME_FUNCTIONS:
                self._emit("CTMS103", node, f"time.{attr}() reads the host clock")
            if (
                base in self._datetime_type_aliases
                and attr in WALL_CLOCK_DATETIME_METHODS
            ):
                self._emit("CTMS103", node, f"{base}.{attr}() reads the host clock")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            # datetime.datetime.now() through the module alias.
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id in self._datetime_module_aliases
                and inner.attr in {"datetime", "date"}
                and func.attr in WALL_CLOCK_DATETIME_METHODS
            ):
                self._emit(
                    "CTMS103",
                    node,
                    f"datetime.{inner.attr}.{func.attr}() reads the host clock",
                )
        self._check_float_delay(node)
        self.generic_visit(node)

    def _check_float_delay(self, node: ast.Call) -> None:
        """CTMS201: float expressions feeding the event calendar."""
        name = _call_name(node.func)
        candidates: list[tuple[str, ast.expr]] = []
        if name in _SCHEDULING_METHODS and isinstance(node.func, ast.Attribute):
            if node.args:
                candidates.append((f"{name}() delay", node.args[0]))
        for kw in node.keywords:
            if kw.arg and kw.arg.endswith("_ns"):
                candidates.append((f"{kw.arg}=", kw.value))
        for label, expr in candidates:
            if _is_floaty(expr) and not _launders_to_int(expr):
                self._emit(
                    "CTMS201",
                    call_anchor(node),
                    f"float-typed expression passed as {label} (sim time is integer ns)",
                )

    # ------------------------------------------------------------------
    # loops: unordered iteration that schedules
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        reason = self._unordered_iterable(node.iter)
        if reason is not None:
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in (_SCHEDULING_METHODS | {"process"})
                ):
                    self._emit(
                        "CTMS104",
                        node,
                        f"loop over {reason} schedules events; hash order would "
                        "leak into the calendar",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _unordered_iterable(node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in {
                "set",
                "frozenset",
            }:
                return f"{node.func.id}(...)"
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return ".keys()"
        return None


def check_source(
    source: str,
    path: str,
    *,
    rng_home: bool = False,
    process_home: bool = False,
) -> list[Finding]:
    """Run the determinism/units pass over one module's source."""
    tree = ast.parse(source, filename=path)
    visitor = DeterminismVisitor(
        path, rng_home=rng_home, process_home=process_home
    )
    visitor.visit(tree)
    return visitor.findings
