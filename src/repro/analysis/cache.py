"""The incremental-analysis cache: per-file summaries keyed by content hash.

One JSON file (default ``.ctms-lint-cache.json``) maps every analyzed
path to its source's SHA-256 and the serialized :class:`ModuleSummary`.
On the next run a file whose hash is unchanged skips parsing entirely --
its summary (including per-file findings) is deserialized instead, and
only the whole-program phases (taint fixed-point, cross-module units,
CTMS001) re-run over summaries.  That makes ``repro lint --v2`` on an
unchanged tree near-instant and bounds a one-file edit's cost to that
file plus the cheap link.

The cache auto-invalidates on analyzer change: the fingerprint folds in
the rule registry and a version counter that must be bumped whenever
summary *content* changes meaning.  A corrupt or mismatched cache file is
simply ignored -- the cache is never allowed to change results, only to
skip work.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.analysis.graph import ModuleSummary
from repro.analysis.rules import RULES

#: Bump whenever summaries, rules, or checker behavior change shape or
#: meaning -- a stale-schema cache must never be trusted.
ANALYSIS_VERSION = 2


def analyzer_fingerprint() -> str:
    payload = f"v{ANALYSIS_VERSION}:" + ",".join(sorted(RULES))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


class SummaryCache:
    """Load-mutate-store wrapper around the cache file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries: dict[str, dict] = {}
        self.loaded_fingerprint: Optional[str] = None
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("fingerprint") != analyzer_fingerprint():
            return  # analyzer changed; every summary is suspect
        files = data.get("files")
        if isinstance(files, dict):
            self.entries = files
            self.loaded_fingerprint = data["fingerprint"]

    def get(self, path: str, sha: str) -> Optional[ModuleSummary]:
        """The cached summary for ``path`` iff its content still hashes to
        ``sha``; None forces re-analysis."""
        entry = self.entries.get(path)
        if not entry or entry.get("sha") != sha:
            return None
        try:
            return ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, path: str, sha: str, summary: ModuleSummary) -> None:
        self.entries[path] = {"sha": sha, "summary": summary.to_dict()}

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        for path in list(self.entries):
            if path not in live_paths:
                del self.entries[path]

    def store(self) -> None:
        payload = {
            "fingerprint": analyzer_fingerprint(),
            "files": self.entries,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.path)


__all__ = [
    "ANALYSIS_VERSION",
    "SummaryCache",
    "analyzer_fingerprint",
    "content_hash",
]
