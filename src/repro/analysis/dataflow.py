"""Unit dataflow: a lightweight abstract interpreter over dimensions.

Every value the simulation trades in carries an implicit dimension --
integer nanoseconds, bytes, bytes-per-second, a dimensionless count --
and the worst bugs are the silent ones where a value changes dimension
without a visible conversion (a seconds-typed timeout fed to an ns
calendar scales every deadline by 1e9).  This pass tags expressions with
dimensions seeded from naming conventions (``*_ns``, ``*_bytes``, ...)
and known APIs (``Simulator.now``, ``units.SEC``, ``units.from_us``),
propagates them through assignments and arithmetic, and reports:

* **CTMS211** -- a provably float value bound to an integer-ns slot (a
  ``*_ns`` variable, parameter, or return), including floats that arrive
  through a variable two statements away (which the syntactic CTMS201
  cannot see);
* **CTMS212** -- values of incompatible dimensions mixed: ns vs seconds
  in ``+``/``-``, a seconds-typed argument for an ``*_ns`` parameter,
  bytes vs bits, including across function boundaries when the callee is
  resolved through the project graph.

The interpreter is deliberately modest: one forward pass per function,
no branch joins, and an unknown dimension silences every check -- the
aim is zero false positives on idiomatic code, not completeness.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.checkers import _is_floaty, call_anchor
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    DATA_DIMENSIONS,
    DIMENSION_SUFFIXES,
    RATE_DIMENSIONS,
    RULES,
    TIME_DIMENSIONS,
)

#: Names that *are* a dimension by convention, matched as whole words.
WORD_DIMENSIONS: dict[str, str] = {
    "ns": "ns",
    "now": "ns",
    "seconds": "s",
    "secs": "s",
    "nbytes": "bytes",
}

#: ``units.py`` scale constants (integer ns per unit).  Multiplying by one
#: converts *to* ns; true-dividing by one converts *from* ns.
UNIT_CONSTANTS: dict[str, str] = {
    "NS": "ns",
    "US": "us",
    "MS": "ms",
    "SEC": "s",
    "MINUTE": "s",
    "HOUR": "s",
    "DAY": "s",
}

_NS_RETURNING = frozenset({"from_us", "from_ms", "from_sec"})
_FLOAT_TIME_RETURNING = {"to_us": "us", "to_ms": "ms", "to_sec": "s"}
#: Name prefixes exempt from suffix-based dimension inference: ``from_us``
#: names its *input* unit, not its result.
_CONVERSION_PREFIXES = ("from_", "to_", "as_", "is_", "per_")

_SCHEDULING_METHODS = frozenset({"schedule", "at", "timeout"})


def dim_of_name(name: str) -> Optional[str]:
    """The dimension a naming convention assigns, or None."""
    if not name or name.startswith(_CONVERSION_PREFIXES):
        return None
    if name in WORD_DIMENSIONS:
        return WORD_DIMENSIONS[name]
    lowered = name.lower()
    for suffix, dim in DIMENSION_SUFFIXES:
        if lowered.endswith(suffix):
            return dim
    if lowered.endswith("_s"):
        return "s"
    return None


def incompatible(a: Optional[str], b: Optional[str]) -> bool:
    """True when mixing the two dimensions is a reportable unit error.

    ``count`` (and unknown) mix with anything -- scalars multiply times
    and sizes all day.  Within a family (ns vs s, bytes vs bits) and
    across the time/data/rate families the mix is flagged.
    """
    if a is None or b is None or a == b or "count" in (a, b):
        return False
    families = (TIME_DIMENSIONS, DATA_DIMENSIONS, RATE_DIMENSIONS)
    a_fam = next((f for f in families if a in f), None)
    b_fam = next((f for f in families if b in f), None)
    return a_fam is not None and b_fam is not None


def symbolic_ref(expr: ast.expr) -> Optional[list]:
    """A serializable, link-time-resolvable description of a call target.

    ``["name", "foo"]`` for a bare name, ``["self", "meth"]`` for
    ``self.meth``, ``["attr", "a.b", "meth"]`` for a (possibly dotted)
    qualified access; None when the target is dynamic.
    """
    if isinstance(expr, ast.Name):
        return ["name", expr.id]
    if isinstance(expr, ast.Attribute):
        base = dotted_name(expr.value)
        if base == "self":
            return ["self", expr.attr]
        if base is not None:
            return ["attr", base, expr.attr]
    return None


def dotted_name(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure attribute chain of names, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        inner = dotted_name(expr.value)
        return None if inner is None else f"{inner}.{expr.attr}"
    return None


@dataclass
class Value:
    """The abstract value: a dimension (or None) plus float-ness."""

    dim: Optional[str] = None
    floaty: bool = False


@dataclass
class CallRecord:
    """One call site, as the summary serializes it."""

    line: int
    col: int
    ref: Optional[list]
    sched: Optional[str]
    args: list[Value] = field(default_factory=list)
    kwargs: dict[str, Value] = field(default_factory=dict)
    #: Symbolic ref of the callable scheduled onto the calendar, when this
    #: is a ``.schedule()/.at()`` call with a resolvable callback arg.
    callback: Optional[list] = None

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "ref": self.ref,
            "sched": self.sched,
            "args": [[v.dim, v.floaty] for v in self.args],
            "kwargs": {k: [v.dim, v.floaty] for k, v in self.kwargs.items()},
            "cb": self.callback,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallRecord":
        return cls(
            line=d["line"],
            col=d["col"],
            ref=d["ref"],
            sched=d["sched"],
            args=[Value(dim, floaty) for dim, floaty in d["args"]],
            kwargs={
                k: Value(dim, floaty) for k, (dim, floaty) in d["kwargs"].items()
            },
            callback=d["cb"],
        )


class FunctionAnalyzer:
    """One forward pass over a function (or module) body.

    Produces the call records the project graph links, the inferred
    return dimension, and the intra-function CTMS211/212 findings.
    """

    def __init__(
        self,
        name: str,
        args: Optional[ast.arguments],
        body: list[ast.stmt],
        path: str,
        *,
        returns_float: bool = False,
    ) -> None:
        self.name = name
        self.path = path
        self.body = body
        #: An explicit ``-> float`` annotation is a *visible* boundary --
        #: a declared float statistic about ns values is not the silent
        #: contamination CTMS211 hunts.
        self.returns_float = returns_float
        self.env: dict[str, Value] = {}
        self.calls: list[CallRecord] = []
        self.findings: list[Finding] = []
        self._return_dims: set[Optional[str]] = set()
        params: list[str] = []
        if args is not None:
            params = [a.arg for a in args.posonlyargs + args.args]
        self.is_method = bool(params) and params[0] in ("self", "cls")
        self.params = params[1:] if self.is_method else params
        kwonly = [a.arg for a in args.kwonlyargs] if args is not None else []
        for p in self.params + kwonly:
            dim = dim_of_name(p)
            if dim:
                self.env[p] = Value(dim)

    # ------------------------------------------------------------------
    def run(self) -> "FunctionAnalyzer":
        for stmt in self.body:
            self._stmt(stmt)
        return self

    @property
    def returns_dim(self) -> Optional[str]:
        dims = {d for d in self._return_dims if d is not None}
        return dims.pop() if len(dims) == 1 else None

    # ------------------------------------------------------------------
    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = RULES[rule_id]
        self.findings.append(
            Finding(
                file=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule.id,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
            )
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._record_calls(stmt.value)
            value = self._infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_calls(stmt.value)
                self._bind(stmt.target, self._infer(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._record_calls(stmt.value)
            target_dim = self._target_dim(stmt.target)
            value = self._infer(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and incompatible(
                target_dim, value.dim
            ):
                self._emit(
                    "CTMS212",
                    stmt,
                    f"augmented assignment mixes {target_dim} and {value.dim}",
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._record_calls(stmt.value)
                value = self._infer(stmt.value)
                self._return_dims.add(value.dim)
                self._check_return(stmt, value)
            else:
                self._return_dims.add(None)
        elif isinstance(stmt, ast.Expr):
            self._record_calls(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._record_calls(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._stmt(s)
        elif isinstance(stmt, ast.For):
            self._record_calls(stmt.iter)
            self._forget(stmt.target)
            for s in stmt.body + stmt.orelse:
                self._stmt(s)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._record_calls(item.context_expr)
            for s in stmt.body:
                self._stmt(s)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self._stmt(s)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later but in this function's sphere; fold
            # their calls/sources into the encloser (conservative).
            for s in stmt.body:
                self._stmt(s)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            self._record_calls(stmt)
        elif isinstance(stmt, ast.ClassDef):
            pass  # nested classes are out of scope for the light pass
        else:
            self._record_calls(stmt)

    def _forget(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env.pop(node.id, None)

    def _target_dim(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            got = self.env.get(target.id)
            return got.dim if got else dim_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return dim_of_name(target.attr)
        return None

    def _bind(self, target: ast.expr, value: Value, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._forget(elt)
            return
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return
        declared = dim_of_name(name)
        if declared == "ns" and value.floaty:
            self._emit(
                "CTMS211",
                stmt,
                f"float-typed value bound to `{name}` (integer-ns by convention)",
            )
        elif declared is not None and incompatible(declared, value.dim):
            self._emit(
                "CTMS212",
                stmt,
                f"{value.dim}-dimensioned value bound to `{name}` ({declared})",
            )
        if isinstance(target, ast.Name):
            self.env[name] = Value(declared or value.dim, value.floaty)

    def _check_return(self, stmt: ast.Return, value: Value) -> None:
        declared = dim_of_name(self.name.rsplit(".", 1)[-1])
        if declared == "ns" and value.floaty and not self.returns_float:
            self._emit(
                "CTMS211",
                stmt,
                f"`{self.name}` is *_ns-named but returns a float",
            )
        elif declared is not None and incompatible(declared, value.dim):
            self._emit(
                "CTMS212",
                stmt,
                f"`{self.name}` ({declared} by name) returns a {value.dim} value",
            )

    # ------------------------------------------------------------------
    # call sites
    # ------------------------------------------------------------------
    def _record_calls(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(sub)

    def _record_call(self, call: ast.Call) -> None:
        ref = symbolic_ref(call.func)
        name = ref[-1] if ref else ""
        sched = (
            name
            if name in _SCHEDULING_METHODS and isinstance(call.func, ast.Attribute)
            else None
        )
        record = CallRecord(
            line=call_anchor(call).lineno,
            col=call.col_offset,
            ref=ref,
            sched=sched,
            args=[
                self._infer(a) if not isinstance(a, ast.Starred) else Value()
                for a in call.args
            ],
            kwargs={
                kw.arg: self._infer(kw.value)
                for kw in call.keywords
                if kw.arg is not None
            },
        )
        if sched in ("schedule", "at") and len(call.args) >= 2:
            record.callback = symbolic_ref(call.args[1])
        self.calls.append(record)
        self._check_call_units(call, record)

    def _check_call_units(self, call: ast.Call, record: CallRecord) -> None:
        # Positional delay of the calendar entry points: must be time-ns.
        if record.sched and record.args:
            first = record.args[0]
            if first.dim is not None and incompatible("ns", first.dim):
                self._emit(
                    "CTMS212",
                    call_anchor(call),
                    f"{first.dim}-dimensioned delay passed to .{record.sched}() "
                    "(the calendar is integer ns)",
                )
        # Keyword args carry their expected dimension in their name.
        for kw in call.keywords:
            if kw.arg is None:
                continue
            expected = dim_of_name(kw.arg)
            if expected is None:
                continue
            value = record.kwargs[kw.arg]
            if expected == "ns" and value.floaty and not _is_floaty(kw.value):
                # Syntactically floaty *_ns kwargs are CTMS201's domain;
                # this catches floats that arrived through a variable.
                self._emit(
                    "CTMS211",
                    call_anchor(call),
                    f"float-typed value passed as {kw.arg}= (integer ns expected)",
                )
            elif incompatible(expected, value.dim):
                self._emit(
                    "CTMS212",
                    call_anchor(call),
                    f"{value.dim}-dimensioned value passed as {kw.arg}= "
                    f"({expected} expected)",
                )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _infer(self, expr: ast.expr) -> Value:
        if isinstance(expr, ast.Name):
            if expr.id in UNIT_CONSTANTS:
                return Value("ns")
            got = self.env.get(expr.id)
            return Value(got.dim, got.floaty) if got else Value(dim_of_name(expr.id))
        if isinstance(expr, ast.Attribute):
            if expr.attr in UNIT_CONSTANTS:
                return Value("ns")
            return Value(dim_of_name(expr.attr))
        if isinstance(expr, ast.Constant):
            return Value(None, isinstance(expr.value, float))
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.IfExp):
            a, b = self._infer(expr.body), self._infer(expr.orelse)
            return Value(a.dim if a.dim == b.dim else None, a.floaty or b.floaty)
        if isinstance(expr, ast.Call):
            return self._call_value(expr)
        return Value()

    @staticmethod
    def _unit_constant(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in UNIT_CONSTANTS:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in UNIT_CONSTANTS:
            return expr.attr
        return None

    def _binop(self, expr: ast.BinOp) -> Value:
        a, b = self._infer(expr.left), self._infer(expr.right)
        floaty = a.floaty or b.floaty
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if incompatible(a.dim, b.dim):
                self._emit(
                    "CTMS212",
                    expr,
                    f"`{'+' if isinstance(expr.op, ast.Add) else '-'}` mixes "
                    f"{a.dim} and {b.dim}",
                )
                return Value(None, floaty)
            return Value(a.dim or b.dim, floaty)
        if isinstance(expr.op, ast.Mult):
            # `x * SEC` converts a scalar (or lower unit) *to* ns.
            if self._unit_constant(expr.left) or self._unit_constant(expr.right):
                return Value("ns", floaty)
            if a.dim in RATE_DIMENSIONS and b.dim == "s":
                return Value("bytes" if a.dim == "Bps" else "bits", floaty)
            if b.dim in RATE_DIMENSIONS and a.dim == "s":
                return Value("bytes" if b.dim == "Bps" else "bits", floaty)
            # A dimension survives multiplication only by a plain scalar
            # (a literal or a count).  An unknown *named* factor is very
            # often a per-unit rate (`nbytes * ns_per_byte` is ns, not
            # bytes), so it deliberately erases the dimension.
            if a.dim is None or a.dim == "count":
                if a.dim == "count" or isinstance(expr.left, ast.Constant):
                    return Value(b.dim, floaty)
                return Value(None, floaty)
            if b.dim is None or b.dim == "count":
                if b.dim == "count" or isinstance(expr.right, ast.Constant):
                    return Value(a.dim, floaty)
                return Value(None, floaty)
            return Value(None, floaty)
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            floaty = floaty or isinstance(expr.op, ast.Div)
            # `x_ns / US` converts ns *to* the constant's unit.  Only a
            # known-ns numerator converts; an unknown numerator divided by
            # SEC is usually a per-second normalization, not a time.
            const = self._unit_constant(expr.right)
            if const and a.dim == "ns":
                return Value(UNIT_CONSTANTS[const], floaty)
            if a.dim is not None and a.dim == b.dim:
                return Value("count", floaty)
            if a.dim == "bytes" and b.dim == "s":
                return Value("Bps", floaty)
            if a.dim == "bits" and b.dim == "s":
                return Value("bps", floaty)
            # Same scalar-only survival rule as multiplication.
            if b.dim == "count" or isinstance(expr.right, ast.Constant):
                return Value(a.dim, floaty)
            return Value(None, floaty)
        if isinstance(expr.op, ast.Mod):
            return Value(a.dim, floaty)
        return Value(None, floaty)

    def _call_value(self, call: ast.Call) -> Value:
        ref = symbolic_ref(call.func)
        name = ref[-1] if ref else ""
        if name in ("int", "round"):
            inner = self._infer(call.args[0]) if call.args else Value()
            return Value(inner.dim, False)
        if name == "len":
            return Value("count")
        if name == "float":
            inner = self._infer(call.args[0]) if call.args else Value()
            return Value(inner.dim, True)
        if name in _NS_RETURNING:
            return Value("ns")
        if name in _FLOAT_TIME_RETURNING:
            return Value(_FLOAT_TIME_RETURNING[name], True)
        if name in ("min", "max", "abs", "sum"):
            values = [self._infer(a) for a in call.args]
            dims = {v.dim for v in values if v.dim is not None}
            return Value(
                dims.pop() if len(dims) == 1 else None,
                any(v.floaty for v in values),
            )
        declared = dim_of_name(name)
        if declared is not None:
            return Value(declared)
        return Value()


def analyze_function(
    name: str,
    args: Optional[ast.arguments],
    body: list[ast.stmt],
    path: str,
    *,
    returns_float: bool = False,
) -> FunctionAnalyzer:
    """Run the unit pass over one function (or module) body."""
    return FunctionAnalyzer(
        name, args, body, path, returns_float=returns_float
    ).run()


# ----------------------------------------------------------------------
# cross-module phase (runs over the linked project graph)
# ----------------------------------------------------------------------
def check_graph_units(graph) -> list[Finding]:
    """CTMS211/212 across function boundaries: positional args vs the
    resolved callee's parameter names.

    Keyword arguments need no resolution (their expected dimension is in
    the keyword itself) and are checked during the per-file pass; this
    phase adds what only the project graph knows -- which parameter a
    positional argument lands in.
    """
    findings: list[Finding] = []
    for module in graph.modules.values():
        for qualname, fn in module.functions.items():
            for record in fn.calls:
                target = graph.resolve(module, qualname, record.ref)
                if target is None:
                    continue
                callee_module, callee = graph.functions[target]
                for i, value in enumerate(record.args):
                    if i >= len(callee.params):
                        break
                    expected = dim_of_name(callee.params[i])
                    if expected is None:
                        continue
                    rule = None
                    if expected == "ns" and value.floaty:
                        rule, msg = "CTMS211", (
                            f"float-typed argument for `{callee.params[i]}` of "
                            f"{graph.display(target)}() (integer ns expected)"
                        )
                    elif incompatible(expected, value.dim):
                        rule, msg = "CTMS212", (
                            f"{value.dim}-dimensioned argument for "
                            f"`{callee.params[i]}` of {graph.display(target)}() "
                            f"({expected} expected)"
                        )
                    if rule is not None:
                        meta = RULES[rule]
                        findings.append(
                            Finding(
                                file=module.path,
                                line=record.line,
                                col=record.col,
                                rule=meta.id,
                                severity=meta.severity,
                                message=msg,
                                hint=meta.hint,
                            )
                        )
    return findings


__all__ = [
    "CallRecord",
    "FunctionAnalyzer",
    "Value",
    "analyze_function",
    "check_graph_units",
    "dim_of_name",
    "dotted_name",
    "incompatible",
    "symbolic_ref",
]
