"""SARIF 2.1.0 output for ctms-lint.

SARIF is the interchange format CI annotators (GitHub code scanning,
VS Code SARIF viewers) consume; emitting it makes the determinism gate's
findings show up inline on review diffs instead of in a build log.  Only
the core slice of the schema is produced: one run, the full rule
catalog, and one result per *new* (non-baselined) finding.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """The report's new findings as a SARIF 2.1.0 JSON document."""
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": _LEVELS.get(rule.severity, "warning")
            },
        }
        for rule in sorted(RULES.values(), key=lambda r: r.id)
    ]
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ctms-lint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": [_result(f) for f in report.new],
            }
        ],
    }
    return json.dumps(doc, indent=2)


__all__ = ["render_sarif"]
