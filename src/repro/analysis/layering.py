"""Layering checker: the package-level import rules (CTMS301/302).

The paper's architecture moves data driver-to-driver: hardware models sit
at the bottom, drivers above them, the CTMS session layer above that, and
experiments orchestrate from the top.  The measurement rig (``measure``)
and the observability layer (``obs``) hang strictly off to the side --
they may observe any layer's types but never drive actuators.  These
checks read only ``import`` statements, so they hold for lazy
function-level imports too.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    LAYERING_FORBIDDEN,
    OBSERVE_ONLY_FORBIDDEN,
    OBSERVE_ONLY_MODULE_SUFFIXES,
    RULES,
)


def package_of(path: str) -> Optional[str]:
    """The repro sub-package a file belongs to, or None when not in one.

    ``.../repro/hardware/cpu.py`` -> ``"hardware"``; a top-level module
    like ``.../repro/cli.py`` -> ``""`` (unconstrained); a file outside
    any ``repro`` tree -> ``None`` (layering rules do not apply).
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            remainder = parts[i + 1 :]
            if len(remainder) >= 2:
                return remainder[0]
            return ""
    return None


def _imported_repro_packages(tree: ast.AST) -> list[tuple[str, ast.stmt]]:
    """Every repro sub-package imported anywhere in the module."""
    found: list[tuple[str, ast.stmt]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    found.append((parts[1], node))
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            parts = node.module.split(".")
            if parts[0] == "repro":
                if len(parts) > 1:
                    found.append((parts[1], node))
                else:
                    # `from repro import X` -- X itself may be a package.
                    for alias in node.names:
                        found.append((alias.name, node))
    return found


def _observe_only_scope(
    package: str, path: str
) -> tuple[Optional[frozenset[str]], str]:
    """The CTMS302 forbidden set governing this module, and its label.

    Package-wide rules (``measure``/``obs``) and per-module rules
    (``OBSERVE_ONLY_MODULE_SUFFIXES``) compose by union, so a module named
    in both stays observe-only even if either map loosens.
    """
    norm = path.replace("\\", "/")
    module_forbidden: Optional[frozenset[str]] = None
    label = f"`{package}`"
    for suffix, forbidden in OBSERVE_ONLY_MODULE_SUFFIXES.items():
        if norm.endswith(suffix):
            module_forbidden = forbidden
            label = f"`{suffix.removeprefix('repro/')}`"
            break
    package_forbidden = OBSERVE_ONLY_FORBIDDEN.get(package)
    if package_forbidden is None and module_forbidden is None:
        return None, label
    return (package_forbidden or frozenset()) | (
        module_forbidden or frozenset()
    ), label


def check_layering(tree: ast.AST, path: str) -> list[Finding]:
    """CTMS301/302 findings for one parsed module."""
    package = package_of(path)
    if package is None or package == "":
        return []
    findings: list[Finding] = []
    forbidden = LAYERING_FORBIDDEN.get(package, frozenset())
    observe_only, observe_label = _observe_only_scope(package, path)
    for target, node in _imported_repro_packages(tree):
        if target == package:
            continue
        if observe_only is not None:
            if target in observe_only:
                rule = RULES["CTMS302"]
                findings.append(
                    Finding(
                        file=path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=rule.id,
                        severity=rule.severity,
                        message=f"observe-only {observe_label} imports `repro.{target}`",
                        hint=rule.hint,
                    )
                )
            continue
        if "*" in forbidden or target in forbidden:
            rule = RULES["CTMS301"]
            reason = (
                f"`{package}` must stay self-contained"
                if "*" in forbidden
                else f"`{package}` sits below `{target}`"
            )
            findings.append(
                Finding(
                    file=path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=rule.id,
                    severity=rule.severity,
                    message=f"`repro.{package}` imports `repro.{target}` ({reason})",
                    hint=rule.hint,
                )
            )
    return findings
