"""Finding records produced by the ctms-lint engine.

A finding pins one rule violation to one source location.  Findings are
plain data so the engine, the baseline machinery, and both renderers
(text and ``--json``) can share them without coupling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    hint: str

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: RULE message``)."""
        text = f"{self.file}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text

    def as_dict(self) -> dict:
        """JSON-serialisable form for ``repro lint --json``."""
        return asdict(self)
