"""Project graph: one parse of the tree into linkable per-file summaries.

The v2 engine analyzes each file exactly once into a :class:`ModuleSummary`
-- imports, classes, per-function call sites (with unit dataflow facts),
taint sources, the per-file rule findings, and the inline-suppression map.
Summaries are plain dicts end to end, so the incremental cache can
round-trip them through JSON, and everything whole-program (taint
fixed-point, cross-module unit checks, CTMS001) runs over summaries
without touching an AST again.

Call targets are recorded *symbolically* (``["self", "meth"]``,
``["attr", "a.b", "fn"]``) and resolved at link time by
:class:`ProjectGraph`, so a summary stays valid no matter how the rest of
the tree changes -- the property the content-hash cache rests on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Optional

from repro.analysis import dataflow
from repro.analysis.checkers import def_anchor_line
from repro.analysis.engine import raw_findings, suppressed_rules_by_line
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    GLOBAL_RANDOM_FUNCTIONS,
    OS_NONDETERMINISM_FUNCTIONS,
    SANCTIONED_HOME_SUFFIXES,
    TAINT_SOURCE_RULES,
    WALL_CLOCK_TIME_FUNCTIONS,
)

#: Per-file rule -> taint-source kind (the whole-program pass reuses the
#: battle-tested per-file detectors as its source oracle).
_RULE_TO_SOURCE_KIND = {
    "CTMS103": "wall-clock",
    "CTMS101": "global-random",
    "CTMS102": "unseeded-random",
    "CTMS104": "unordered-sched",
}


def module_name(path: str) -> tuple[str, bool]:
    """(dotted module name, is_package) for a source path.

    Anchored at the last ``repro`` path component when present
    (``src/repro/sim/engine.py`` -> ``repro.sim.engine``); otherwise the
    file stem, which the graph's suffix matching still resolves.
    """
    parts = list(PurePosixPath(path.replace("\\", "/")).parts)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    anchor = None
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            anchor = i
            break
    if anchor is None:
        return stem, stem == "__init__"
    dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(dotted), stem == "__init__"


@dataclass
class FunctionSummary:
    """Everything whole-program analysis needs to know about one function."""

    qualname: str
    line: int
    end_line: int
    params: list[str] = field(default_factory=list)
    is_method: bool = False
    returns_dim: Optional[str] = None
    calls: list[dataflow.CallRecord] = field(default_factory=list)
    #: Direct nondeterminism sources: {"kind", "line", "suppressed"}.
    sources: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "end_line": self.end_line,
            "params": self.params,
            "is_method": self.is_method,
            "returns_dim": self.returns_dim,
            "calls": [c.to_dict() for c in self.calls],
            "sources": self.sources,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        return cls(
            qualname=d["qualname"],
            line=d["line"],
            end_line=d["end_line"],
            params=d["params"],
            is_method=d["is_method"],
            returns_dim=d["returns_dim"],
            calls=[dataflow.CallRecord.from_dict(c) for c in d["calls"]],
            sources=d["sources"],
        )


@dataclass
class ModuleSummary:
    """The serializable whole-file analysis product."""

    path: str
    module: str
    is_package: bool = False
    imports: dict[str, str] = field(default_factory=dict)
    symbol_imports: dict[str, list] = field(default_factory=dict)
    classes: dict[str, dict] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    raw: list[Finding] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def is_boundary(self) -> bool:
        """Sanctioned homes never taint and are never tainted."""
        posix = self.path.replace("\\", "/")
        return any(posix.endswith(s) for s in SANCTIONED_HOME_SUFFIXES)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "imports": self.imports,
            "symbol_imports": self.symbol_imports,
            "classes": self.classes,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "raw": [f.as_dict() for f in self.raw],
            "suppressions": {
                str(line): sorted(rules)
                for line, rules in self.suppressions.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleSummary":
        return cls(
            path=d["path"],
            module=d["module"],
            is_package=d["is_package"],
            imports=d["imports"],
            symbol_imports=d["symbol_imports"],
            classes=d["classes"],
            functions={
                q: FunctionSummary.from_dict(f) for q, f in d["functions"].items()
            },
            raw=[Finding(**f) for f in d["raw"]],
            suppressions={
                int(line): set(rules)
                for line, rules in d["suppressions"].items()
            },
        )


# ----------------------------------------------------------------------
# summarization (the only phase that sees an AST)
# ----------------------------------------------------------------------
def summarize_module(source: str, path: str) -> ModuleSummary:
    """Parse one file and distill everything later phases need."""
    tree = ast.parse(source, filename=path)
    dotted, is_package = module_name(path)
    summary = ModuleSummary(path=path, module=dotted, is_package=is_package)
    summary.raw = raw_findings(tree, path)
    summary.suppressions = suppressed_rules_by_line(source)
    _collect_imports(tree, summary)

    module_body: list[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(summary, node, prefix="")
        elif isinstance(node, ast.ClassDef):
            _add_class(summary, node)
        else:
            module_body.append(node)
    _add_body(summary, "<module>", None, module_body, line=1, end_line=0)

    _attach_sources(summary, tree)
    return summary


def _collect_imports(tree: ast.Module, summary: ModuleSummary) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    summary.imports[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds `a`; dotted access is resolved
                    # against the full name, so record both spellings.
                    summary.imports.setdefault(
                        alias.name.split(".")[0], alias.name.split(".")[0]
                    )
                    summary.imports[alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            target = _absolute_import(summary, node)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.symbol_imports[local] = [target, alias.name]


def _absolute_import(
    summary: ModuleSummary, node: ast.ImportFrom
) -> Optional[str]:
    if node.level == 0:
        return node.module
    parts = summary.module.split(".")
    if not summary.is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[: -drop or None]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def _add_class(summary: ModuleSummary, node: ast.ClassDef) -> None:
    bases = [
        b for b in (dataflow.dotted_name(base) for base in node.bases) if b
    ]
    methods = []
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(item.name)
            _add_function(summary, item, prefix=f"{node.name}.")
    summary.classes[node.name] = {"bases": bases, "methods": methods}


def _add_function(
    summary: ModuleSummary,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    prefix: str,
) -> None:
    _add_body(
        summary,
        f"{prefix}{node.name}",
        node.args,
        node.body,
        line=def_anchor_line(node),
        end_line=getattr(node, "end_lineno", node.lineno),
        returns_float=(
            isinstance(node.returns, ast.Name) and node.returns.id == "float"
        ),
    )


def _add_body(
    summary: ModuleSummary,
    qualname: str,
    args: Optional[ast.arguments],
    body: list[ast.stmt],
    *,
    line: int,
    end_line: int,
    returns_float: bool = False,
) -> None:
    analyzed = dataflow.analyze_function(
        qualname, args, body, summary.path, returns_float=returns_float
    )
    summary.raw.extend(analyzed.findings)
    summary.functions[qualname] = FunctionSummary(
        qualname=qualname,
        line=line,
        end_line=end_line,
        params=analyzed.params,
        is_method=analyzed.is_method,
        returns_dim=analyzed.returns_dim,
        calls=analyzed.calls,
    )


def _attach_sources(summary: ModuleSummary, tree: ast.Module) -> None:
    """Seed taint sources from per-file findings plus the v2-only detectors."""

    def cleansed(line: int, kind: str) -> bool:
        disabled = summary.suppressions.get(line, set())
        return (
            "all" in disabled
            or "CTMS111" in disabled
            or TAINT_SOURCE_RULES.get(kind, "") in disabled
        )

    def add(kind: str, line: int) -> None:
        fn = _enclosing_function(summary, line)
        fn.sources.append(
            {"kind": kind, "line": line, "suppressed": cleansed(line, kind)}
        )

    # 1) The per-file rules double as source detectors.
    for finding in summary.raw:
        kind = _RULE_TO_SOURCE_KIND.get(finding.rule)
        if kind is not None:
            add(kind, finding.line)

    # 2) os.urandom / os.getenv / os.environ -- no per-file rule exists.
    os_aliases = {a for a, m in summary.imports.items() if m == "os"}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in os_aliases
            and node.func.attr in OS_NONDETERMINISM_FUNCTIONS
        ):
            kind = "env-read" if node.func.attr == "getenv" else "os-entropy"
            add(kind, node.lineno)
        elif (
            isinstance(node, ast.Attribute)
            and node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id in os_aliases
        ):
            add("env-read", node.lineno)

    # 3) Bare calls to wall-clock / global-RNG / os names pulled in via
    #    `from x import y` (the import line is flagged per-file; the *call*
    #    is what taints the enclosing function).
    impure_symbols: dict[str, str] = {}
    for local, (mod, name) in summary.symbol_imports.items():
        if mod == "time" and name in WALL_CLOCK_TIME_FUNCTIONS:
            impure_symbols[local] = "wall-clock"
        elif mod == "random" and name in GLOBAL_RANDOM_FUNCTIONS:
            impure_symbols[local] = "global-random"
        elif mod == "os" and name in OS_NONDETERMINISM_FUNCTIONS:
            impure_symbols[local] = (
                "env-read" if name == "getenv" else "os-entropy"
            )
    if impure_symbols:
        for fn in summary.functions.values():
            for record in fn.calls:
                if (
                    record.ref
                    and record.ref[0] == "name"
                    and record.ref[1] in impure_symbols
                ):
                    kind = impure_symbols[record.ref[1]]
                    fn.sources.append(
                        {
                            "kind": kind,
                            "line": record.line,
                            "suppressed": cleansed(record.line, kind),
                        }
                    )
    for fn in summary.functions.values():
        fn.sources.sort(key=lambda s: (s["line"], s["kind"]))


def _enclosing_function(summary: ModuleSummary, line: int) -> FunctionSummary:
    """The innermost function whose span contains ``line`` (else <module>)."""
    best = summary.functions["<module>"]
    best_span = None
    for fn in summary.functions.values():
        if fn.qualname == "<module>":
            continue
        # The span starts at the def anchor; decorators sit above it but
        # belong to the function for attribution purposes.
        if fn.line <= line <= fn.end_line:
            span = fn.end_line - fn.line
            if best_span is None or span < best_span:
                best, best_span = fn, span
    return best


# ----------------------------------------------------------------------
# the linked graph
# ----------------------------------------------------------------------
class ProjectGraph:
    """All module summaries, linked: resolve symbolic call refs to ids.

    A function id is ``"<module dotted name>:<qualname>"``.
    """

    def __init__(self, modules: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {m.path: m for m in modules}
        self.by_name: dict[str, ModuleSummary] = {m.module: m for m in modules}
        self.functions: dict[str, tuple[ModuleSummary, FunctionSummary]] = {}
        for m in modules:
            for qualname, fn in m.functions.items():
                self.functions[f"{m.module}:{qualname}"] = (m, fn)

    # ------------------------------------------------------------------
    def display(self, fid: str) -> str:
        return fid

    def fid(self, module: ModuleSummary, qualname: str) -> str:
        return f"{module.module}:{qualname}"

    def resolve_module(self, dotted: Optional[str]) -> Optional[ModuleSummary]:
        if not dotted:
            return None
        hit = self.by_name.get(dotted)
        if hit is not None:
            return hit
        # Suffix match lets fixture trees without the repo's exact layout
        # (and `src.repro.x` spellings) still link -- but only when unique.
        matches = [
            m
            for name, m in self.by_name.items()
            if dotted.endswith(f".{name}") or name.endswith(f".{dotted}")
        ]
        return matches[0] if len(matches) == 1 else None

    # ------------------------------------------------------------------
    def resolve(
        self,
        module: ModuleSummary,
        caller_qualname: str,
        ref: Optional[list],
    ) -> Optional[str]:
        """Function id a symbolic call ref denotes, or None (external)."""
        if not ref:
            return None
        kind = ref[0]
        if kind == "name":
            return self._resolve_name(module, ref[1])
        if kind == "self":
            cls = caller_qualname.split(".")[0] if "." in caller_qualname else None
            return self._resolve_method(module, cls, ref[1], set())
        if kind == "attr":
            return self._resolve_attr(module, ref[1], ref[2])
        return None

    def _function_in(
        self, module: ModuleSummary, name: str
    ) -> Optional[str]:
        if name in module.functions:
            return self.fid(module, name)
        if name in module.classes:
            init = f"{name}.__init__"
            if init in module.functions:
                return self.fid(module, init)
        return None

    def _resolve_name(self, module: ModuleSummary, name: str) -> Optional[str]:
        local = self._function_in(module, name)
        if local is not None:
            return local
        if name in module.symbol_imports:
            target_mod, symbol = module.symbol_imports[name]
            target = self.resolve_module(target_mod)
            if target is not None:
                return self._function_in(target, symbol)
        return None

    def _resolve_attr(
        self, module: ModuleSummary, base: str, attr: str
    ) -> Optional[str]:
        if "." not in base:
            if base in module.imports:
                target = self.resolve_module(module.imports[base])
                if target is not None:
                    return self._function_in(target, attr)
            if base in module.symbol_imports:
                target_mod, symbol = module.symbol_imports[base]
                target = self.resolve_module(target_mod)
                if target is not None:
                    # `from m import Cls; Cls.method(...)`
                    hit = self._function_in(target, f"{symbol}.{attr}")
                    if hit is not None:
                        return hit
                # `from pkg import mod; mod.fn(...)`
                target = self.resolve_module(f"{target_mod}.{symbol}")
                if target is not None:
                    return self._function_in(target, attr)
            if base in module.classes:
                return self._function_in(module, f"{base}.{attr}")
            return None
        # Dotted base: a full module path, or an alias-rooted one.
        target = self.resolve_module(base)
        if target is None:
            root, rest = base.split(".", 1)
            if root in module.imports:
                target = self.resolve_module(f"{module.imports[root]}.{rest}")
        if target is not None:
            return self._function_in(target, attr)
        return None

    def _resolve_method(
        self,
        module: ModuleSummary,
        cls: Optional[str],
        meth: str,
        visited: set[tuple[str, str]],
    ) -> Optional[str]:
        if cls is None or (module.path, cls) in visited:
            return None
        visited.add((module.path, cls))
        if f"{cls}.{meth}" in module.functions:
            return self.fid(module, f"{cls}.{meth}")
        info = module.classes.get(cls)
        if info is None:
            return None
        for base in info["bases"]:
            base_module, base_cls = self._resolve_class(module, base)
            if base_cls is None:
                continue
            hit = self._resolve_method(base_module, base_cls, meth, visited)
            if hit is not None:
                return hit
        return None

    def _resolve_class(
        self, module: ModuleSummary, dotted: str
    ) -> tuple[ModuleSummary, Optional[str]]:
        if "." not in dotted:
            if dotted in module.classes:
                return module, dotted
            if dotted in module.symbol_imports:
                target_mod, symbol = module.symbol_imports[dotted]
                target = self.resolve_module(target_mod)
                if target is not None and symbol in target.classes:
                    return target, symbol
            return module, None
        base, cls = dotted.rsplit(".", 1)
        target = self.resolve_module(module.imports.get(base, base))
        if target is not None and cls in target.classes:
            return target, cls
        return module, None

    # ------------------------------------------------------------------
    def edges(self):
        """Every resolved call edge: (caller_fid, callee_fid, line)."""
        for module in self.modules.values():
            for qualname, fn in module.functions.items():
                caller = self.fid(module, qualname)
                for record in fn.calls:
                    callee = self.resolve(module, qualname, record.ref)
                    if callee is not None:
                        yield caller, callee, record.line

    def importers_of(self, target: ModuleSummary) -> list[ModuleSummary]:
        """Modules that import ``target`` (the reverse dependency step the
        dirty frontier is built from)."""
        out = []
        for module in self.modules.values():
            if module.path == target.path:
                continue
            names = set(module.imports.values()) | {
                m for m, _sym in module.symbol_imports.values()
            } | {
                f"{m}.{sym}" for m, sym in module.symbol_imports.values()
            }
            if any(
                self.resolve_module(n) is target
                for n in names
            ):
                out.append(module)
        return out


__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "module_name",
    "summarize_module",
]
