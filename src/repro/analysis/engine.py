"""The ctms-lint engine: walk files, run checkers, honour suppressions.

Orchestration only -- the rules live in :mod:`repro.analysis.checkers`
(AST determinism/units pass) and :mod:`repro.analysis.layering` (import
rules), the debt ledger in :mod:`repro.analysis.baseline`.

Inline suppressions: append ``# ctms-lint: disable=CTMS201`` (comma lists
and ``disable=all`` accepted) to the offending line.  For multi-line
constructs the finding anchors to the construct's first line (the ``for``
of a loop, the call's opening line), so that is where the comment goes.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import BaselineResult, apply_baseline
from repro.analysis.checkers import DeterminismVisitor
from repro.analysis.findings import Finding
from repro.analysis.layering import check_layering

_SUPPRESS_RE = re.compile(r"ctms-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Files whose rules are relaxed: sim/rng.py is the sanctioned home of raw
#: ``random`` machinery.
_RNG_HOME_SUFFIX = "repro/sim/rng.py"

#: ...and these are the sanctioned homes of process machinery and host
#: clocks (CTMS103/CTMS303 off there): the campaign supervisor bridges
#: the clock domains (docs/FLEET.md), the bench harness *measures* the
#: host clock on purpose (docs/OBSERVABILITY.md), and the event-calendar
#: backends are sim-kernel machinery whose ordering the equivalence
#: golden tests pin down (docs/KERNEL.md).
_PROCESS_HOME_SUFFIXES = (
    "repro/experiments/fleet.py",
    "repro/bench/harness.py",
    "repro/sim/scheduler.py",
)

#: ...and the one sanctioned home of control-plane policy decisions
#: (CTMS304 off there): admission, placement, shedding, and failover
#: policy live in the session control plane, nowhere else.
_CONTROL_HOME_SUFFIX = "repro/core/control.py"


def suppressed_rules_by_line(source: str) -> dict[int, set[str]]:
    """Map line number -> rule IDs disabled by an inline comment there."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                out.setdefault(tok.start[0], set()).update(r for r in rules if r)
    except tokenize.TokenError:
        pass
    return out


def _is_suppressed(finding: Finding, suppressions: dict[int, set[str]]) -> bool:
    disabled = suppressions.get(finding.line, set())
    return "all" in disabled or finding.rule in disabled


@dataclass
class LintReport:
    """Everything one lint run produced."""

    files_scanned: int = 0
    findings: list[Finding] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    baseline: BaselineResult = field(default_factory=BaselineResult)
    #: v2 runs only: files actually re-parsed (cache misses) vs served from
    #: the incremental cache.  ``None`` on v1 runs (no cache in play).
    reparsed: list[str] | None = None
    cache_hits: int = 0

    @property
    def new(self) -> list[Finding]:
        return self.baseline.new

    @property
    def baselined(self) -> list[Finding]:
        return self.baseline.baselined

    def ok(self) -> bool:
        """True when nothing non-baselined was found and every file parsed.

        Stale baseline entries fail too: the ratchet only moves one way,
        so an allowance no finding consumes must be deleted, not kept as
        headroom for future debt.
        """
        return not self.new and not self.parse_errors and not self.baseline.stale

    def render_text(self) -> str:
        lines = [f.render() for f in self.new]
        lines += [f"{err}: syntax error (unparseable file)" for err in self.parse_errors]
        if self.baselined:
            lines.append(f"({len(self.baselined)} baselined finding(s) suppressed)")
        for file, rule in self.baseline.stale:
            lines.append(f"stale baseline entry: {file} {rule} (delete it)")
        verdict = "clean" if self.ok() else f"{len(self.new)} new finding(s)"
        summary = f"ctms-lint: {self.files_scanned} file(s) scanned, {verdict}"
        if self.reparsed is not None:
            summary += (
                f" ({self.cache_hits} from cache, {len(self.reparsed)} re-analyzed)"
            )
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "files_scanned": self.files_scanned,
            "findings": [f.as_dict() for f in self.new],
            "baselined": [f.as_dict() for f in self.baselined],
            "stale_baseline": [list(entry) for entry in self.baseline.stale],
            "parse_errors": self.parse_errors,
            "ok": self.ok(),
        }
        if self.reparsed is not None:
            payload["cache"] = {
                "hits": self.cache_hits,
                "reparsed": self.reparsed,
            }
        return json.dumps(payload, indent=2)


def is_rng_home(path: str) -> bool:
    return path.replace("\\", "/").endswith(_RNG_HOME_SUFFIX)


def is_process_home(path: str) -> bool:
    return path.replace("\\", "/").endswith(_PROCESS_HOME_SUFFIXES)


def is_control_home(path: str) -> bool:
    return path.replace("\\", "/").endswith(_CONTROL_HOME_SUFFIX)


def raw_findings(tree: ast.AST, path: str) -> list[Finding]:
    """Per-file findings for one parsed module, before suppressions.

    The v2 engine needs the pre-suppression list (CTMS001 reports inline
    disables that no longer suppress anything), so suppression filtering
    is separated out here.
    """
    visitor = DeterminismVisitor(
        path,
        rng_home=is_rng_home(path),
        process_home=is_process_home(path),
        control_home=is_control_home(path),
    )
    visitor.visit(tree)
    return visitor.findings + check_layering(tree, path)


def apply_suppressions(
    findings: list[Finding], suppressions: dict[int, set[str]]
) -> list[Finding]:
    return sorted(f for f in findings if not _is_suppressed(f, suppressions))


def lint_source(source: str, path: str) -> list[Finding]:
    """All findings for one module's source text (suppressions applied)."""
    tree = ast.parse(source, filename=path)
    return apply_suppressions(
        raw_findings(tree, path), suppressed_rules_by_line(source)
    )


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def run_lint(
    paths: list[str | Path],
    baseline: dict[str, dict[str, int]] | None = None,
) -> LintReport:
    """Lint every python file under ``paths`` against an optional baseline."""
    report = LintReport()
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        report.files_scanned += 1
        display = _display_path(file)
        try:
            source = file.read_text()
            findings.extend(lint_source(source, display))
        except SyntaxError:
            report.parse_errors.append(display)
    report.findings = findings
    report.baseline = apply_baseline(findings, baseline or {})
    return report


def _display_path(file: Path) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    try:
        rel = file.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return file.as_posix()
