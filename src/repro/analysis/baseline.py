"""Baseline files: burn pre-existing findings down incrementally.

A baseline is a JSON object mapping file path -> rule ID -> allowed count.
``repro lint`` subtracts the baseline from what it finds: up to the
allowed count of findings per (file, rule) are reported as *baselined*
(informational, exit 0); anything beyond is *new* and fails the run.
Deleting entries as violations are fixed ratchets the debt downward --
the committed ``lint-baseline.json`` is empty for ``src/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding


@dataclass
class BaselineResult:
    """The findings split against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: (file, rule) entries in the baseline no current finding consumes --
    #: stale debt that should be deleted from the file.
    stale: list[tuple[str, str]] = field(default_factory=list)


def load_baseline(path: str | Path) -> dict[str, dict[str, int]]:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text())
    if not isinstance(data, dict):
        raise ValueError(f"baseline {path} must be a JSON object")
    return {
        str(file): {str(rule): int(count) for rule, count in rules.items()}
        for file, rules in data.items()
    }


def write_baseline(findings: list[Finding], path: str | Path) -> dict:
    """Serialise current findings as a baseline (sorted, diff-stable)."""
    counts: dict[str, dict[str, int]] = {}
    for f in sorted(findings):
        counts.setdefault(f.file, {}).setdefault(f.rule, 0)
        counts[f.file][f.rule] += 1
    ordered = {
        file: dict(sorted(rules.items())) for file, rules in sorted(counts.items())
    }
    Path(path).write_text(json.dumps(ordered, indent=2) + "\n")
    return ordered


def apply_baseline(
    findings: list[Finding], baseline: dict[str, dict[str, int]]
) -> BaselineResult:
    """Split findings into new vs baselined, and report stale entries.

    Within one (file, rule) bucket the earliest findings (by line) consume
    the allowance, so a file that gains a violation fails even if an older
    one still exists elsewhere in it.
    """
    result = BaselineResult()
    remaining = {
        (file, rule): count
        for file, rules in baseline.items()
        for rule, count in rules.items()
    }
    for finding in sorted(findings):
        key = (finding.file, finding.rule)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    result.stale = sorted(key for key, count in remaining.items() if count > 0)
    return result
