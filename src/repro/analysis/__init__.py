"""ctms-lint: the repo's determinism & layering static-analysis pass.

The reproduction's claims rest on a bit-reproducible simulated data path
(integer-ns event calendar, named seeded RNG streams, strict layering).
This package enforces those disciplines mechanically -- see
``docs/ANALYSIS.md`` for every rule ID, its rationale, and the
``# ctms-lint: disable=RULE`` suppression syntax.  Run it as
``repro lint <paths>`` or ``make lint``.

The package is self-contained by design (it imports nothing from the
rest of :mod:`repro`) so it can lint the tree it lives in without import
cycles; its own purity is enforced by rule CTMS301.
"""

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    LintReport,
    iter_python_files,
    lint_source,
    run_lint,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import ModuleSummary, ProjectGraph, summarize_module
from repro.analysis.rules import RULES, Rule
from repro.analysis.sarif import render_sarif
from repro.analysis.v2 import run_lint_v2

__all__ = [
    "Finding",
    "LintReport",
    "ModuleSummary",
    "ProjectGraph",
    "RULES",
    "Rule",
    "apply_baseline",
    "iter_python_files",
    "lint_source",
    "load_baseline",
    "render_sarif",
    "run_lint",
    "run_lint_v2",
    "summarize_module",
    "write_baseline",
]
