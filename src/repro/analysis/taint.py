"""Interprocedural determinism inference: taint over the call graph.

The per-file rules see a wall-clock read only where it happens; they are
blind to the function two modules away that *calls* the reader inside a
simulated path.  This pass closes that hole: every unsuppressed
nondeterminism source (wall clock, global/unseeded RNG, ``os.urandom``,
environment reads, unordered-iteration scheduling) seeds an *impure* set,
and impurity propagates caller-ward over the resolved call graph to a
fixed point.

Two rules report on the result:

* **CTMS111** -- a call site whose resolved callee is (transitively)
  impure, anchored at the *caller's* line so the finding lands where the
  refactor has to happen;
* **CTMS112** -- an impure function scheduled onto the event calendar
  (``.schedule()/.at()`` callback), anchored at the function's ``def``.

The sanctioned homes (``sim/rng.py``, ``experiments/fleet.py``) are
boundaries: functions there are never impure and calls into them do not
propagate -- that is exactly what "sanctioned" means.  An inline
suppression on a source line (its per-file rule, or CTMS111 for sources
without one) cleanses the source: an audited read does not taint.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph
from repro.analysis.rules import RULES

#: Keep witness chains readable: at most this many hops are spelled out.
_MAX_CHAIN = 4


def propagate_impurity(graph: ProjectGraph) -> dict[str, str]:
    """fid -> human-readable witness for every (transitively) impure function."""
    impure: dict[str, str] = {}
    depth: dict[str, int] = {}
    for module in graph.modules.values():
        if module.is_boundary:
            continue
        for qualname, fn in module.functions.items():
            live = [s for s in fn.sources if not s["suppressed"]]
            if live:
                fid = graph.fid(module, qualname)
                src = live[0]
                impure[fid] = f"{src['kind']} at {module.path}:{src['line']}"
                depth[fid] = 0

    callers: dict[str, list[tuple[str, int]]] = {}
    for caller, callee, line in graph.edges():
        callers.setdefault(callee, []).append((caller, line))

    queue = deque(sorted(impure))
    while queue:
        callee = queue.popleft()
        for caller, line in callers.get(callee, []):
            if caller in impure:
                continue
            module, _fn = graph.functions[caller]
            if module.is_boundary:
                continue
            hops = depth[callee] + 1
            if hops <= _MAX_CHAIN:
                witness = f"{callee} -> {impure[callee]}"
            else:
                witness = f"{callee} -> ... -> a nondeterminism source"
            impure[caller] = witness
            depth[caller] = hops
            queue.append(caller)
    return impure


def check_taint(graph: ProjectGraph) -> list[Finding]:
    """CTMS111/112 findings over a linked project graph."""
    impure = propagate_impurity(graph)
    findings: list[Finding] = []

    rule111 = RULES["CTMS111"]
    for module in graph.modules.values():
        if module.is_boundary:
            continue
        for qualname, fn in module.functions.items():
            for record in fn.calls:
                callee = graph.resolve(module, qualname, record.ref)
                if callee is None or callee not in impure:
                    continue
                callee_module, _ = graph.functions[callee]
                if callee_module.is_boundary:
                    continue
                findings.append(
                    Finding(
                        file=module.path,
                        line=record.line,
                        col=record.col,
                        rule=rule111.id,
                        severity=rule111.severity,
                        message=(
                            f"call to {callee}() transitively reaches a "
                            f"nondeterminism source ({impure[callee]})"
                        ),
                        hint=rule111.hint,
                    )
                )

    rule112 = RULES["CTMS112"]
    reported: set[str] = set()
    for module in graph.modules.values():
        for qualname, fn in module.functions.items():
            for record in fn.calls:
                if record.callback is None:
                    continue
                scheduled = graph.resolve(module, qualname, record.callback)
                if (
                    scheduled is None
                    or scheduled not in impure
                    or scheduled in reported
                ):
                    continue
                target_module, target_fn = graph.functions[scheduled]
                if target_module.is_boundary:
                    continue
                reported.add(scheduled)
                findings.append(
                    Finding(
                        file=target_module.path,
                        line=target_fn.line,
                        col=0,
                        rule=rule112.id,
                        severity=rule112.severity,
                        message=(
                            f"{scheduled} is scheduled on the event calendar "
                            f"(at {module.path}:{record.line}) but is "
                            f"nondeterministic ({impure[scheduled]})"
                        ),
                        hint=rule112.hint,
                    )
                )
    return findings


__all__ = ["check_taint", "propagate_impurity"]
