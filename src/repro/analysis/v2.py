"""The whole-program (v2) ctms-lint engine.

One run:

1. hash every file; unchanged files load their :class:`ModuleSummary`
   from the incremental cache, changed ones are re-parsed and
   re-summarized (the per-file v1 rules and local unit dataflow run as
   part of summarization);
2. link all summaries into a :class:`ProjectGraph`;
3. run the whole-program phases over summaries only -- interprocedural
   taint (CTMS111/112) and cross-module unit checks (CTMS211/212);
4. flag unused inline suppressions (CTMS001) against the *pre-
   suppression* finding set, then apply suppressions and the baseline.

``changed_only`` narrows reporting to the dirty frontier: the files
whose content changed plus every module that imports one of them (their
findings are the only ones a content change can move).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import apply_baseline
from repro.analysis.cache import SummaryCache, content_hash
from repro.analysis.dataflow import check_graph_units
from repro.analysis.engine import (
    LintReport,
    _display_path,
    apply_suppressions,
    iter_python_files,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import ModuleSummary, ProjectGraph, summarize_module
from repro.analysis.rules import RULES
from repro.analysis.taint import check_taint

DEFAULT_CACHE_PATH = ".ctms-lint-cache.json"


def check_unused_suppressions(
    modules: list[ModuleSummary], findings: list[Finding]
) -> list[Finding]:
    """CTMS001: inline disables that no longer suppress anything.

    ``findings`` must be the pre-suppression set of every rule this run
    evaluated; a ``disable=RULE`` comment on a line where RULE does not
    fire is dead weight that would hide a future regression silently.
    """
    fired: dict[tuple[str, int], set[str]] = {}
    for f in findings:
        fired.setdefault((f.file, f.line), set()).add(f.rule)
    rule = RULES["CTMS001"]
    out: list[Finding] = []
    for module in modules:
        for line, rules in sorted(module.suppressions.items()):
            live = fired.get((module.path, line), set())
            for disabled in sorted(rules):
                if disabled == "CTMS001":
                    continue  # suppressing the unused-suppression check
                used = bool(live) if disabled == "all" else disabled in live
                if used:
                    continue
                out.append(
                    Finding(
                        file=module.path,
                        line=line,
                        col=0,
                        rule=rule.id,
                        severity=rule.severity,
                        message=(
                            f"suppression `disable={disabled}` no longer "
                            "matches a finding on this line"
                        ),
                        hint=rule.hint,
                    )
                )
    return out


def dirty_frontier(
    graph: ProjectGraph, reparsed: list[str]
) -> set[str]:
    """Changed files plus every module importing one of them."""
    frontier = set(reparsed)
    for path in reparsed:
        module = graph.modules.get(path)
        if module is None:
            continue
        frontier.update(m.path for m in graph.importers_of(module))
    return frontier


def run_lint_v2(
    paths: list[str | Path],
    baseline: dict[str, dict[str, int]] | None = None,
    *,
    cache_path: str | Path | None = DEFAULT_CACHE_PATH,
    changed_only: bool = False,
) -> LintReport:
    """Whole-program lint with the incremental cache.

    ``cache_path=None`` disables caching (every file re-analyzed); the
    results are identical either way -- the cache only skips work.
    """
    report = LintReport(reparsed=[])
    cache = SummaryCache(cache_path) if cache_path is not None else None

    modules: list[ModuleSummary] = []
    live_paths: set[str] = set()
    for file in iter_python_files(paths):
        report.files_scanned += 1
        display = _display_path(file)
        live_paths.add(display)
        try:
            source = file.read_text()
        except OSError:
            report.parse_errors.append(display)
            continue
        sha = content_hash(source)
        summary = cache.get(display, sha) if cache is not None else None
        if summary is None:
            try:
                summary = summarize_module(source, display)
            except SyntaxError:
                report.parse_errors.append(display)
                continue
            report.reparsed.append(display)
            if cache is not None:
                cache.put(display, sha, summary)
        else:
            report.cache_hits += 1
        modules.append(summary)

    graph = ProjectGraph(modules)
    pre_suppression: list[Finding] = []
    for module in modules:
        pre_suppression.extend(module.raw)
    pre_suppression.extend(check_taint(graph))
    pre_suppression.extend(check_graph_units(graph))
    pre_suppression.extend(
        check_unused_suppressions(modules, pre_suppression)
    )

    suppressions = {m.path: m.suppressions for m in modules}
    findings: list[Finding] = []
    for finding in pre_suppression:
        per_file = suppressions.get(finding.file, {})
        findings.extend(apply_suppressions([finding], per_file))
    findings.sort()

    if changed_only:
        frontier = dirty_frontier(graph, report.reparsed)
        findings = [f for f in findings if f.file in frontier]

    report.findings = findings
    report.baseline = apply_baseline(findings, baseline or {})
    if cache is not None:
        cache.prune(live_paths)
        cache.store()
    return report


__all__ = [
    "DEFAULT_CACHE_PATH",
    "check_unused_suppressions",
    "dirty_frontier",
    "run_lint_v2",
]
