"""The ctms-lint rule registry.

Every rule has a stable ID (referenced by inline suppressions and the
baseline file), a severity, a one-line summary, and a fix-it hint.  The
rationale for each rule lives in ``docs/ANALYSIS.md``; the short version:
the repo's throughput/latency claims are only meaningful if the simulated
data path is bit-reproducible, and these rules mechanically enforce the
disciplines (integer-ns time, named seeded RNG streams, strict layering)
that reproducibility rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable ID, severity, summary, and fix-it hint."""

    id: str
    name: str
    severity: str
    summary: str
    hint: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="CTMS001",
            name="unused-suppression",
            severity=WARNING,
            summary="inline `ctms-lint: disable=` comment no longer suppresses anything",
            hint="the rule it names does not fire on this line any more; delete "
            "the comment so suppression debt cannot accumulate silently",
        ),
        Rule(
            id="CTMS101",
            name="global-random",
            severity=ERROR,
            summary="call to a module-level random function (shared global RNG state)",
            hint="draw from a named RandomStreams stream (repro.sim.rng) instead",
        ),
        Rule(
            id="CTMS102",
            name="unseeded-random",
            severity=ERROR,
            summary="random.Random() constructed without an explicit seed",
            hint="pass an explicit integer seed, or use RandomStreams/seeded_stream",
        ),
        Rule(
            id="CTMS103",
            name="wall-clock",
            severity=ERROR,
            summary="wall-clock call inside a simulated path",
            hint="simulated time is Simulator.now (integer ns); never read the host clock",
        ),
        Rule(
            id="CTMS104",
            name="unordered-scheduling",
            severity=WARNING,
            summary="iteration over a set/dict view schedules events (ordering "
            "depends on hash order)",
            hint="iterate sorted(...) or an explicitly ordered list before scheduling",
        ),
        Rule(
            id="CTMS105",
            name="random-from-import",
            severity=WARNING,
            summary="`from random import ...` hides global-RNG functions behind bare names",
            hint="import the module (for typing/seeded constructors) or use repro.sim.rng",
        ),
        Rule(
            id="CTMS111",
            name="transitively-nondeterministic",
            severity=ERROR,
            summary="call reaches a nondeterminism source through the call graph",
            hint="the callee (or something it calls) reads a wall clock, the "
            "global RNG, os.urandom, or the environment; route the value "
            "through repro.sim.rng / Simulator.now, or suppress at the true "
            "source if it is sanctioned",
        ),
        Rule(
            id="CTMS112",
            name="impure-function-in-sim-path",
            severity=ERROR,
            summary="function scheduled on the event calendar is (transitively) "
            "nondeterministic",
            hint="calendar callbacks must be pure w.r.t. the host: depend only "
            "on Simulator.now and named seeded RNG streams",
        ),
        Rule(
            id="CTMS201",
            name="float-delay",
            severity=ERROR,
            summary="float-typed expression passed as a simulated delay/timeout",
            hint="all sim time is integer ns; build delays from units.NS/US/MS/SEC "
            "or convert with units.from_us/from_ms/from_sec",
        ),
        Rule(
            id="CTMS211",
            name="float-ns-contamination",
            severity=ERROR,
            summary="float-typed value crosses a function boundary into an "
            "integer-ns slot",
            hint="convert at the boundary with int()/round() or the "
            "units.from_* helpers; keep every *_ns value an int",
        ),
        Rule(
            id="CTMS212",
            name="unit-mismatch",
            severity=ERROR,
            summary="values of incompatible dimensions mixed (ns vs seconds, "
            "bytes vs bits, ...)",
            hint="convert explicitly (units.from_sec, *8 for bytes->bits) so "
            "the dimension change is visible at the use site",
        ),
        Rule(
            id="CTMS301",
            name="layering",
            severity=ERROR,
            summary="import breaks the driver-to-driver layering",
            hint="lower layers must not reach up; move the dependency or invert it "
            "with a callback/event",
        ),
        Rule(
            id="CTMS302",
            name="measure-observe-only",
            severity=ERROR,
            summary="observe-only package (measure/obs) imports an actuator package",
            hint="measurement taps and observability instruments may observe "
            "(sim/hardware/ring/core types) but never drive "
            "drivers/experiments/faults",
        ),
        Rule(
            id="CTMS303",
            name="fleet-confinement",
            severity=ERROR,
            summary="process machinery imported outside a sanctioned home",
            hint="multiprocessing/subprocess/threading/signal (and wall "
            "clocks) belong only in repro/experiments/fleet.py and "
            "repro/bench/harness.py -- keep every other module on the "
            "simulated clock, single-process",
        ),
        Rule(
            id="CTMS304",
            name="control-plane-confinement",
            severity=ERROR,
            summary="control-plane policy decision defined outside "
            "repro/core/control.py",
            hint="admission, placement, shedding, and failover policy "
            "(decide_admission/select_server/select_victims/plan_failover) "
            "live only in repro/core/control.py -- experiments and drivers "
            "consume decisions, they never make them",
        ),
    )
}

#: Packages whose import the layering rules reason about, and what each may
#: not import.  ``"*"`` means "no repro package outside itself" (kernel/tool
#: purity).  Mirrors the paper's architecture: hardware below drivers below
#: sessions below experiments, with measurement strictly off to the side.
LAYERING_FORBIDDEN: dict[str, frozenset[str]] = {
    "sim": frozenset({"*"}),
    "analysis": frozenset({"*"}),
    "hardware": frozenset(
        {"drivers", "core", "experiments", "workloads", "faults", "measure", "obs"}
    ),
    "unix": frozenset(
        {"drivers", "core", "experiments", "workloads", "measure", "obs"}
    ),
    "ring": frozenset(
        {"drivers", "core", "experiments", "workloads", "measure", "obs"}
    ),
    "protocols": frozenset(
        {"drivers", "experiments", "workloads", "measure", "obs"}
    ),
    "drivers": frozenset({"experiments", "workloads", "faults", "measure", "obs"}),
    "core": frozenset({"experiments", "workloads", "measure", "obs"}),
    "faults": frozenset({"experiments", "workloads", "measure", "obs"}),
    # measure and obs are handled by CTMS302 (observe-only) below.
}

#: What the observe-only ``measure`` package may never import.
MEASURE_FORBIDDEN: frozenset[str] = frozenset(
    {"drivers", "experiments", "workloads", "faults", "unix"}
)

#: What the observe-only ``obs`` package may never import.  Unlike
#: ``measure`` it may *not* reach ``obs``-adjacent actuators either; it is
#: allowed ``measure`` (it reuses the Histogram type) and the passive model
#: layers whose types it annotates.  Crucially: no ``experiments``.
OBS_FORBIDDEN: frozenset[str] = frozenset(
    {"drivers", "experiments", "workloads", "faults", "unix"}
)

#: CTMS302's per-package forbidden-import map.
OBSERVE_ONLY_FORBIDDEN: dict[str, frozenset[str]] = {
    "measure": MEASURE_FORBIDDEN,
    "obs": OBS_FORBIDDEN,
}

#: CTMS302's per-*module* forbidden-import map, for observe-only modules
#: living inside otherwise-unconstrained packages.  ``experiments/rollup``
#: aggregates journals other campaigns already wrote; the moment it could
#: import an actuator it could also re-run points, and "the rollup changed
#: the numbers" becomes a possibility the reader has to rule out.
#: ``obs/telemetry`` is already covered by the ``obs`` package rule and is
#: named here so the observe-only contract survives the module ever being
#: moved out of that package.
OBSERVE_ONLY_MODULE_SUFFIXES: dict[str, frozenset[str]] = {
    "repro/experiments/rollup.py": frozenset(
        {"core", "drivers", "workloads", "faults", "unix", "hardware",
         "ring", "protocols"}
    ),
    "repro/obs/telemetry.py": OBS_FORBIDDEN,
}

#: Module-level functions of :mod:`random` that mutate/read the shared
#: global RNG (the hidden-state hazard CTMS101 exists to catch).
GLOBAL_RANDOM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "binomialvariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "getstate",
        "setstate",
        "getrandbits",
    }
)

#: Wall-clock reading (or blocking) functions of :mod:`time`.
WALL_CLOCK_TIME_FUNCTIONS: frozenset[str] = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: Wall-clock classmethods of :mod:`datetime` types.
WALL_CLOCK_DATETIME_METHODS: frozenset[str] = frozenset({"now", "utcnow", "today"})

#: Top-level modules that spawn/steer processes or threads.  CTMS303
#: confines their import (and, via the same home-module exemption, wall
#: clocks) to the sanctioned homes: ``repro/experiments/fleet.py`` (the
#: campaign supervisor bridges the simulated clock domain and the host's)
#: and ``repro/bench/harness.py`` (benchmarking measures the host clock
#: by design).
PROCESS_MACHINERY_MODULES: frozenset[str] = frozenset(
    {"multiprocessing", "concurrent", "subprocess", "threading", "signal"}
)

#: Method/function names that *are* control-plane policy.  CTMS304 confines
#: their definition to ``repro/core/control.py`` (the session control
#: plane's sanctioned home): a second ``decide_admission`` in an experiment
#: forks the policy, and "which admission rule produced this campaign?"
#: stops having one answer.
CONTROL_POLICY_NAMES: frozenset[str] = frozenset(
    {"decide_admission", "select_server", "select_victims", "plan_failover"}
)

# ----------------------------------------------------------------------
# Whole-program (v2) vocabulary
# ----------------------------------------------------------------------

#: Functions of :mod:`os` that read entropy or the process environment --
#: taint sources for the interprocedural determinism inference (CTMS111/112)
#: that the per-file pass has no rule for.
OS_NONDETERMINISM_FUNCTIONS: frozenset[str] = frozenset(
    {"urandom", "getenv", "getrandom", "getpid", "times"}
)

#: Path suffixes of the sanctioned-home modules.  They are *boundaries* for
#: taint propagation: functions defined there are never reported impure, and
#: calls into them do not propagate impurity to the caller (sim/rng.py wraps
#: seeded streams; experiments/fleet.py is the one wall-clock bridge).
SANCTIONED_HOME_SUFFIXES: tuple[str, ...] = (
    "repro/sim/rng.py",
    "repro/sim/scheduler.py",
    "repro/experiments/fleet.py",
    "repro/bench/harness.py",
)

#: Which per-file rule an inline suppression must name to also cleanse the
#: matching taint *source* (an audited suppression is a sanction).  Sources
#: with no per-file rule (urandom/env) are cleansed by disable=CTMS111.
TAINT_SOURCE_RULES: dict[str, str] = {
    "wall-clock": "CTMS103",
    "global-random": "CTMS101",
    "unseeded-random": "CTMS102",
    "unordered-sched": "CTMS104",
    "os-entropy": "CTMS111",
    "env-read": "CTMS111",
}

#: Name-suffix conventions the unit dataflow seeds dimensions from.  Order
#: matters: longer suffixes are matched first (``_bps`` before ``_s``).
DIMENSION_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("bytes_per_sec", "Bps"),
    ("bits_per_sec", "bps"),
    ("_bps", "bps"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_sec", "s"),
    ("_secs", "s"),
    ("_seconds", "s"),
    ("_bytes", "bytes"),
    ("nbytes", "bytes"),
    ("_bits", "bits"),
    ("_count", "count"),
)

#: Dimension families: mixing members of the *same* family (ns + s) is the
#: classic silent-scaling bug CTMS212 exists for; mixing across families
#: (bytes + ns) is flagged too when both sides are provably dimensioned.
TIME_DIMENSIONS: frozenset[str] = frozenset({"ns", "us", "ms", "s"})
DATA_DIMENSIONS: frozenset[str] = frozenset({"bytes", "bits"})
RATE_DIMENSIONS: frozenset[str] = frozenset({"Bps", "bps"})
