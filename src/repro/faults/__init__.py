"""Unified fault injection (the environment the paper could not control).

The paper's prototype had to survive an environment that injured it at
every layer: station insertions purging the ring (Sections 4-5), soft
errors resetting the network, an adapter that loses frames "without telling
the transmitter", a shared CPU, and a disk with its own queue.  This
package makes every one of those injuries a first-class, seed-reproducible
object:

* :mod:`repro.faults.plan` -- :class:`FaultPlan`, a declarative schedule of
  timed/stochastic fault events (the taxonomy is documented in
  ``docs/FAULTS.md`` with paper citations per fault kind);
* :mod:`repro.faults.injectors` -- :class:`FaultInjector`, which arms a
  plan against a :class:`~repro.experiments.testbed.Testbed` and wounds the
  ring, the adapters/drivers, or the hosts at the scheduled instants;
* :mod:`repro.faults.invariants` -- :class:`StreamInvariantMonitor`, the
  defense-side watchdog that continuously asserts stream invariants
  (ordering, loss, inter-arrival deadline, playout underruns) and freezes a
  first-violation snapshot per invariant.

Chaos campaigns (:mod:`repro.experiments.chaos`, ``python -m repro chaos``)
sweep seeded random plans across transport configurations and report which
invariants held at which fault intensity.
"""

from repro.faults.injectors import FaultInjector
from repro.faults.invariants import StreamInvariantMonitor, Violation
from repro.faults.plan import (
    ADAPTER_KINDS,
    FAULT_KINDS,
    HOST_KINDS,
    RING_KINDS,
    SERVER_KINDS,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "ADAPTER_KINDS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HOST_KINDS",
    "RING_KINDS",
    "SERVER_KINDS",
    "StreamInvariantMonitor",
    "Violation",
]
