"""Worker-level fault specs: chaos for the campaign fleet itself.

The fault plans in :mod:`repro.faults.plan` wound the *simulated* system.
This module extends the same discipline one level up: the parallel
campaign runner (:mod:`repro.experiments.fleet`) is a supervisor of real
worker *processes*, and a supervisor that has never watched its workers
die is not known to tolerate it.  A :class:`WorkerFaultSpec` declares,
inertly, how a worker should injure itself while holding a campaign
point:

=======  ====================================================================
kind     models
=======  ====================================================================
crash    the worker SIGKILLs itself mid-point (OOM killer, segfault)
hang     the worker stops making progress (deadlock, runaway simulation)
fail     the point raises (a bug in the model surfaced by one seed)
=======  ====================================================================

Like :class:`~repro.faults.plan.FaultPlan`, the spec is pure data -- it
carries no process machinery and schedules nothing itself.  The fleet
supervisor ships it to workers, and the *worker-side application* (the
actual SIGKILL / sleep / raise) lives in ``repro.experiments.fleet``, the
one module the layering rules permit to touch processes and wall clocks
(ctms-lint CTMS303).  ``max_attempt`` bounds the injury to the first
attempts of a point so supervised retries are observably what heals it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: Every way a worker knows how to hurt itself.
WORKER_FAULT_KINDS = ("crash", "hang", "fail")


@dataclass(frozen=True)
class WorkerFaultSpec:
    """One declarative worker injury.

    ``seeds``/``profiles`` restrict which campaign points trigger the
    fault (``None`` matches every point); ``max_attempt`` fires the fault
    only while ``attempt <= max_attempt``, so a supervisor with retries
    eventually gets the point through -- set it very large to model a
    permanently poisoned point and exercise graceful degradation instead.
    """

    kind: str
    seeds: Optional[tuple[int, ...]] = None
    profiles: Optional[tuple[str, ...]] = None
    max_attempt: int = 1
    #: How long a hung worker sleeps; far beyond any sane point timeout.
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; "
                f"known: {WORKER_FAULT_KINDS}"
            )
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be >= 1")

    def matches(self, seed: int, profile: str, attempt: int) -> bool:
        """Should this fault fire for this (point, attempt)?"""
        if attempt > self.max_attempt:
            return False
        if self.seeds is not None and seed not in self.seeds:
            return False
        if self.profiles is not None and profile not in self.profiles:
            return False
        return True

    # ------------------------------------------------------------------
    # wire format (specs cross the process boundary as plain dicts)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "profiles": (
                list(self.profiles) if self.profiles is not None else None
            ),
            "max_attempt": self.max_attempt,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkerFaultSpec":
        return cls(
            kind=data["kind"],
            seeds=tuple(data["seeds"]) if data["seeds"] is not None else None,
            profiles=(
                tuple(data["profiles"])
                if data["profiles"] is not None
                else None
            ),
            max_attempt=data["max_attempt"],
            hang_s=data["hang_s"],
        )


class WorkerFaultError(RuntimeError):
    """The injected exception a ``fail``-kind worker fault raises."""
