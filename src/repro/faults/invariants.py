"""Continuous stream-invariant monitoring (the defense side of chaos).

:class:`StreamInvariantMonitor` watches one CTMS session the way the
paper's central control point watched its campaign (Section 5.2.1): it
checks a set of configurable invariants on a periodic tick and, like
:class:`~repro.experiments.controller.CampaignController`, freezes a
snapshot of every relevant counter the first time each invariant breaks.

Invariants (all optional):

* ``no_reordering`` -- the ring preserves order, so the sink must never
  classify an out-of-order CTMSP packet;
* ``max_loss_fraction`` -- the stream's loss stays below the level the
  paper decided it could "safely ignore";
* ``max_interarrival_ns`` -- no delivery gap longer than the playout
  deadline (the paper's 120-130 ms insertion outliers are the calibration
  point);
* ``min_throughput_bytes_per_sec`` -- checked at :meth:`finish`, once the
  whole window is observable;
* playout never underruns -- when a
  :class:`~repro.core.presentation.PresentationMachine` is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.units import MS, format_time

#: Invariant names (keys of first-violation snapshots).
NO_REORDERING = "no_reordering"
LOSS_FRACTION = "loss_fraction"
INTER_ARRIVAL = "inter_arrival"
THROUGHPUT = "throughput"
PLAYOUT_UNDERRUN = "playout_underrun"
FAILOVER_GAP = "failover_gap"
REESTABLISH_STORM = "reestablish_storm"


@dataclass(frozen=True)
class Violation:
    """One invariant broken, with state frozen at first detection."""

    invariant: str
    detail: str
    at_ns: int
    snapshot: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"VIOLATION at {format_time(self.at_ns)}: {self.invariant}",
            f"  {self.detail}",
        ]
        for key, value in self.snapshot.items():
            lines.append(f"    {key} = {value}")
        return "\n".join(lines)


class StreamInvariantMonitor:
    """Watches one session's sink-side invariants while the clock runs.

    Parameters
    ----------
    testbed, session:
        The laboratory and the stream under observation.
    check_period_ns:
        Tick between invariant evaluations (default: two media periods).
    grace_ns:
        No checks before this instant -- establishment (now a real
        handshake with retries) must be allowed to finish.
    min_packets:
        Loss/ordering checks wait for this many deliveries so a single
        early packet cannot dominate the fraction.
    failover_source:
        Duck-typed handle from the session control plane (a managed-session
        record) exposing ``failover_windows()`` -- a list of
        ``(gap_start_ns, resumed_at_ns | None)`` delivery-gap windows, one
        per failover -- and ``failover_records()`` with per-failover
        ``establish_rounds``.  When present, inter-arrival gaps covered by a
        failover window are exempt from ``max_interarrival_ns`` (the glitch
        is judged by its own budget instead) and two extra invariants arm:
        ``failover_gap`` (each window must close within
        ``failover_gap_budget_ns``) and ``reestablish_storm`` (no failover
        may take more than ``max_failover_rounds`` establish rounds -- the
        jittered-backoff contract that one crash causes at most one
        re-establish storm).
    """

    def __init__(
        self,
        testbed,
        session,
        presentation=None,
        no_reordering: bool = True,
        max_loss_fraction: Optional[float] = 0.01,
        loss_grace_packets: int = 10,
        max_interarrival_ns: Optional[int] = 150 * MS,
        min_throughput_bytes_per_sec: Optional[float] = None,
        check_period_ns: int = 24 * MS,
        grace_ns: int = 250 * MS,
        min_packets: int = 20,
        failover_source=None,
        failover_gap_budget_ns: Optional[int] = None,
        max_failover_rounds: int = 1,
    ) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.session = session
        self.presentation = presentation
        self.no_reordering = no_reordering
        self.max_loss_fraction = max_loss_fraction
        self.loss_grace_packets = loss_grace_packets
        self.max_interarrival_ns = max_interarrival_ns
        self.min_throughput_bytes_per_sec = min_throughput_bytes_per_sec
        self.check_period_ns = check_period_ns
        self.grace_ns = grace_ns
        self.min_packets = min_packets
        self.failover_source = failover_source
        self.failover_gap_budget_ns = failover_gap_budget_ns
        self.max_failover_rounds = max_failover_rounds
        self.violations: list[Violation] = []
        self._seen: set[str] = set()
        self._finished = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StreamInvariantMonitor":
        """Begin periodic checking (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.schedule_fast(
                max(self.grace_ns, self.check_period_ns), self._tick
            )
        return self

    def _tick(self) -> None:
        if self._finished:
            return
        self.check_now()
        self.sim.schedule_fast(self.check_period_ns, self._tick)

    def finish(self) -> list[Violation]:
        """End-of-run checks (throughput); returns all violations."""
        self._finished = True
        self.check_now()
        stats = self.session.stats
        if (
            self.min_throughput_bytes_per_sec is not None
            and stats.delivered >= self.min_packets
        ):
            achieved = stats.throughput_bytes_per_sec()
            if achieved < self.min_throughput_bytes_per_sec:
                self._trip(
                    THROUGHPUT,
                    f"delivered {achieved / 1000:.1f} KB/s, needed "
                    f"{self.min_throughput_bytes_per_sec / 1000:.1f} KB/s",
                )
        return self.violations

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Evaluate every live invariant against the current counters."""
        tracker = self.session.sink_tracker
        stats = self.session.stats
        if self.no_reordering and tracker.reordered > 0:
            self._trip(
                NO_REORDERING,
                f"{tracker.reordered} packet(s) classified out of order",
            )
        if (
            self.max_loss_fraction is not None
            and tracker.delivered >= self.min_packets
            # Absolute floor before the fraction means anything: the paper
            # "decided that we could safely ignore" single lost packets
            # (one per Ring Purge), and a campaign schedules many purges.
            # Against a small early denominator those tolerated losses
            # would read as fractional violations.
            and tracker.lost_packets > self.loss_grace_packets
        ):
            fraction = tracker.loss_fraction()
            if fraction > self.max_loss_fraction:
                self._trip(
                    LOSS_FRACTION,
                    f"loss fraction {fraction * 100:.2f}% exceeds "
                    f"{self.max_loss_fraction * 100:.2f}%",
                )
        windows = (
            tuple(self.failover_source.failover_windows())
            if self.failover_source is not None
            else ()
        )
        if self.max_interarrival_ns is not None and stats.delivered >= 2:
            if windows:
                worst = self._worst_unexempt_gap(stats, windows)
            else:
                worst = stats.worst_gap_ns()
            # A gap still in progress counts too -- the watchdog must fire
            # while the stream is stalled, not after it recovers.  An open
            # failover window exempts the live gap: that stall is being
            # judged by the failover-gap budget instead.
            if stats.last_arrival is not None and not any(
                end is None for _, end in windows
            ):
                worst = max(worst, self.sim.now - stats.last_arrival)
            if worst > self.max_interarrival_ns:
                self._trip(
                    INTER_ARRIVAL,
                    f"inter-arrival gap {format_time(worst)} exceeds "
                    f"{format_time(self.max_interarrival_ns)}",
                )
        if self.failover_gap_budget_ns is not None:
            for start, end in windows:
                gap = (end if end is not None else self.sim.now) - start
                if gap > self.failover_gap_budget_ns:
                    state = "closed at" if end is not None else "still open,"
                    self._trip(
                        FAILOVER_GAP,
                        f"failover delivery gap {state} {format_time(gap)} "
                        f"exceeds budget "
                        f"{format_time(self.failover_gap_budget_ns)}",
                    )
                    break
        if self.failover_source is not None:
            for record in self.failover_source.failover_records():
                rounds = record.establish_rounds
                if rounds > self.max_failover_rounds:
                    self._trip(
                        REESTABLISH_STORM,
                        f"failover took {rounds} establish round(s), "
                        f"budget {self.max_failover_rounds} (jittered "
                        "backoff should make one round suffice)",
                    )
                    break
        if self.presentation is not None and self.presentation.glitch_count:
            self._trip(
                PLAYOUT_UNDERRUN,
                f"playout buffer underran {self.presentation.glitch_count} "
                "time(s)",
            )

    @staticmethod
    def _worst_unexempt_gap(stats, windows) -> int:
        """Worst inter-arrival gap whose interval no failover window covers.

        A pair of consecutive arrivals ``(a, b)`` is exempt when some
        window overlaps the open interval between them -- that silence is
        the failover glitch, bounded by its own budget, not a stream
        stall the playout deadline should punish.
        """
        worst = 0
        arrivals = stats.arrival_times
        for i in range(1, len(arrivals)):
            a, b = arrivals[i - 1], arrivals[i]
            exempt = any(
                start < b and (end is None or end > a)
                for start, end in windows
            )
            if not exempt:
                worst = max(worst, b - a)
        return worst

    # ------------------------------------------------------------------
    # first-violation snapshots
    # ------------------------------------------------------------------
    def _trip(self, invariant: str, detail: str) -> None:
        if invariant in self._seen:
            return
        self._seen.add(invariant)
        snapshot = self._snapshot()
        self.violations.append(
            Violation(
                invariant=invariant,
                detail=detail,
                at_ns=self.sim.now,
                snapshot=snapshot,
            )
        )
        # Duck-typed hook into the observability flight recorder, when the
        # testbed carries one -- faults never imports repro.obs.
        flight = getattr(self.testbed, "flight_recorder", None)
        if flight is not None:
            flight.snapshot(
                invariant,
                self.sim.now,
                {"detail": detail, **snapshot},
            )

    def _snapshot(self) -> dict[str, Any]:
        tracker = self.session.sink_tracker
        stats = self.session.stats
        ring = self.testbed.ring
        snap = {
            "delivered": tracker.delivered,
            "lost_packets": tracker.lost_packets,
            "gaps": tracker.gaps,
            "duplicates": tracker.duplicates,
            "reordered": tracker.reordered,
            "worst_gap_ns": stats.worst_gap_ns(),
            "ring_purges": ring.stats_purges,
            "ring_lost_to_purge": ring.stats_frames_lost_to_purge,
            "ring_lost_to_fault": ring.stats_frames_lost_to_fault,
            "ring_pending": ring.pending_count(),
        }
        if self.presentation is not None:
            snap["playout_glitches"] = self.presentation.glitch_count
            snap["playout_skips"] = self.presentation.skips
        if self.failover_source is not None:
            snap["failovers"] = len(self.failover_source.failover_records())
        return snap

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def ok(self) -> bool:
        return not self.violations

    def violated(self) -> list[str]:
        """Invariant names broken so far, in first-detection order."""
        return [v.invariant for v in self.violations]
