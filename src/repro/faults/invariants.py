"""Continuous stream-invariant monitoring (the defense side of chaos).

:class:`StreamInvariantMonitor` watches one CTMS session the way the
paper's central control point watched its campaign (Section 5.2.1): it
checks a set of configurable invariants on a periodic tick and, like
:class:`~repro.experiments.controller.CampaignController`, freezes a
snapshot of every relevant counter the first time each invariant breaks.

Invariants (all optional):

* ``no_reordering`` -- the ring preserves order, so the sink must never
  classify an out-of-order CTMSP packet;
* ``max_loss_fraction`` -- the stream's loss stays below the level the
  paper decided it could "safely ignore";
* ``max_interarrival_ns`` -- no delivery gap longer than the playout
  deadline (the paper's 120-130 ms insertion outliers are the calibration
  point);
* ``min_throughput_bytes_per_sec`` -- checked at :meth:`finish`, once the
  whole window is observable;
* playout never underruns -- when a
  :class:`~repro.core.presentation.PresentationMachine` is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.units import MS, format_time

#: Invariant names (keys of first-violation snapshots).
NO_REORDERING = "no_reordering"
LOSS_FRACTION = "loss_fraction"
INTER_ARRIVAL = "inter_arrival"
THROUGHPUT = "throughput"
PLAYOUT_UNDERRUN = "playout_underrun"


@dataclass(frozen=True)
class Violation:
    """One invariant broken, with state frozen at first detection."""

    invariant: str
    detail: str
    at_ns: int
    snapshot: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"VIOLATION at {format_time(self.at_ns)}: {self.invariant}",
            f"  {self.detail}",
        ]
        for key, value in self.snapshot.items():
            lines.append(f"    {key} = {value}")
        return "\n".join(lines)


class StreamInvariantMonitor:
    """Watches one session's sink-side invariants while the clock runs.

    Parameters
    ----------
    testbed, session:
        The laboratory and the stream under observation.
    check_period_ns:
        Tick between invariant evaluations (default: two media periods).
    grace_ns:
        No checks before this instant -- establishment (now a real
        handshake with retries) must be allowed to finish.
    min_packets:
        Loss/ordering checks wait for this many deliveries so a single
        early packet cannot dominate the fraction.
    """

    def __init__(
        self,
        testbed,
        session,
        presentation=None,
        no_reordering: bool = True,
        max_loss_fraction: Optional[float] = 0.01,
        loss_grace_packets: int = 10,
        max_interarrival_ns: Optional[int] = 150 * MS,
        min_throughput_bytes_per_sec: Optional[float] = None,
        check_period_ns: int = 24 * MS,
        grace_ns: int = 250 * MS,
        min_packets: int = 20,
    ) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.session = session
        self.presentation = presentation
        self.no_reordering = no_reordering
        self.max_loss_fraction = max_loss_fraction
        self.loss_grace_packets = loss_grace_packets
        self.max_interarrival_ns = max_interarrival_ns
        self.min_throughput_bytes_per_sec = min_throughput_bytes_per_sec
        self.check_period_ns = check_period_ns
        self.grace_ns = grace_ns
        self.min_packets = min_packets
        self.violations: list[Violation] = []
        self._seen: set[str] = set()
        self._finished = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StreamInvariantMonitor":
        """Begin periodic checking (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.schedule_fast(
                max(self.grace_ns, self.check_period_ns), self._tick
            )
        return self

    def _tick(self) -> None:
        if self._finished:
            return
        self.check_now()
        self.sim.schedule_fast(self.check_period_ns, self._tick)

    def finish(self) -> list[Violation]:
        """End-of-run checks (throughput); returns all violations."""
        self._finished = True
        self.check_now()
        stats = self.session.stats
        if (
            self.min_throughput_bytes_per_sec is not None
            and stats.delivered >= self.min_packets
        ):
            achieved = stats.throughput_bytes_per_sec()
            if achieved < self.min_throughput_bytes_per_sec:
                self._trip(
                    THROUGHPUT,
                    f"delivered {achieved / 1000:.1f} KB/s, needed "
                    f"{self.min_throughput_bytes_per_sec / 1000:.1f} KB/s",
                )
        return self.violations

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Evaluate every live invariant against the current counters."""
        tracker = self.session.sink_tracker
        stats = self.session.stats
        if self.no_reordering and tracker.reordered > 0:
            self._trip(
                NO_REORDERING,
                f"{tracker.reordered} packet(s) classified out of order",
            )
        if (
            self.max_loss_fraction is not None
            and tracker.delivered >= self.min_packets
            # Absolute floor before the fraction means anything: the paper
            # "decided that we could safely ignore" single lost packets
            # (one per Ring Purge), and a campaign schedules many purges.
            # Against a small early denominator those tolerated losses
            # would read as fractional violations.
            and tracker.lost_packets > self.loss_grace_packets
        ):
            fraction = tracker.loss_fraction()
            if fraction > self.max_loss_fraction:
                self._trip(
                    LOSS_FRACTION,
                    f"loss fraction {fraction * 100:.2f}% exceeds "
                    f"{self.max_loss_fraction * 100:.2f}%",
                )
        if self.max_interarrival_ns is not None and stats.delivered >= 2:
            worst = stats.worst_gap_ns()
            # A gap still in progress counts too -- the watchdog must fire
            # while the stream is stalled, not after it recovers.
            if stats.last_arrival is not None:
                worst = max(worst, self.sim.now - stats.last_arrival)
            if worst > self.max_interarrival_ns:
                self._trip(
                    INTER_ARRIVAL,
                    f"inter-arrival gap {format_time(worst)} exceeds "
                    f"{format_time(self.max_interarrival_ns)}",
                )
        if self.presentation is not None and self.presentation.glitch_count:
            self._trip(
                PLAYOUT_UNDERRUN,
                f"playout buffer underran {self.presentation.glitch_count} "
                "time(s)",
            )

    # ------------------------------------------------------------------
    # first-violation snapshots
    # ------------------------------------------------------------------
    def _trip(self, invariant: str, detail: str) -> None:
        if invariant in self._seen:
            return
        self._seen.add(invariant)
        snapshot = self._snapshot()
        self.violations.append(
            Violation(
                invariant=invariant,
                detail=detail,
                at_ns=self.sim.now,
                snapshot=snapshot,
            )
        )
        # Duck-typed hook into the observability flight recorder, when the
        # testbed carries one -- faults never imports repro.obs.
        flight = getattr(self.testbed, "flight_recorder", None)
        if flight is not None:
            flight.snapshot(
                invariant,
                self.sim.now,
                {"detail": detail, **snapshot},
            )

    def _snapshot(self) -> dict[str, Any]:
        tracker = self.session.sink_tracker
        stats = self.session.stats
        ring = self.testbed.ring
        snap = {
            "delivered": tracker.delivered,
            "lost_packets": tracker.lost_packets,
            "gaps": tracker.gaps,
            "duplicates": tracker.duplicates,
            "reordered": tracker.reordered,
            "worst_gap_ns": stats.worst_gap_ns(),
            "ring_purges": ring.stats_purges,
            "ring_lost_to_purge": ring.stats_frames_lost_to_purge,
            "ring_lost_to_fault": ring.stats_frames_lost_to_fault,
            "ring_pending": ring.pending_count(),
        }
        if self.presentation is not None:
            snap["playout_glitches"] = self.presentation.glitch_count
            snap["playout_skips"] = self.presentation.skips
        return snap

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def ok(self) -> bool:
        return not self.violations

    def violated(self) -> list[str]:
        """Invariant names broken so far, in first-detection order."""
        return [v.invariant for v in self.violations]
