"""Declarative fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultEvent` entries -- *when* to
injure the system, *what* kind of injury, and the injury's parameters.  The
plan itself is inert data: it can be built by hand, generated from a seeded
RNG (:meth:`FaultPlan.random`), rendered for a report, and applied to a
testbed by :class:`~repro.faults.injectors.FaultInjector`.  Keeping the
schedule declarative is what makes chaos campaigns reproducible: the same
seed builds the same plan, and the same plan wounds two configurations in
exactly the same way.

Fault taxonomy (paper citations in ``docs/FAULTS.md``):

=====================  ======  ==============================================
kind                   layer   models
=====================  ======  ==============================================
purge                  ring    one Ring Purge (a soft error, Section 5)
purge_burst            ring    a station insertion's back-to-back purges
soft_error_storm       ring    Poisson purges at an elevated rate for a window
token_starvation       ring    hostile high-priority traffic holding the token
frame_loss             ring    frames of one protocol corrupted on the wire
tx_stall               adapter adapter ignores the transmit command for a while
rx_delay               adapter receive-interrupt coalescing/delay
rx_buffer_exhaustion   adapter fixed receive DMA buffers all busy
drop_tx_complete       adapter transmit-complete interrupts swallowed
cpu_steal              host    a DMA-class competitor slowing copyin/copyout
disk_slow              host    source disk serving reads late (seek storm)
server_crash           server  media server dies mid-stream (fail-stop, stays down)
server_stall           server  media server freezes, then resumes after a window
=====================  ======  ==============================================
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.hardware import calibration
from repro.sim.units import HOUR, MS, SEC

#: Ring-level fault kinds (no target host; they wound the shared medium).
RING_KINDS = frozenset(
    {
        "purge",
        "purge_burst",
        "soft_error_storm",
        "token_starvation",
        "frame_loss",
    }
)

#: Adapter/driver-level fault kinds (require a target host).
ADAPTER_KINDS = frozenset(
    {"tx_stall", "rx_delay", "rx_buffer_exhaustion", "drop_tx_complete"}
)

#: Host-level fault kinds (require a target host).
HOST_KINDS = frozenset({"cpu_steal", "disk_slow"})

#: Media-server fault kinds (require a target host).  ``server_crash`` is
#: fail-stop: every VCA source on the host halts, its transmit path wedges,
#: and its receive buffers never come back -- the host stays dead for the
#: rest of the run.  ``server_stall`` freezes the same machinery for a
#: window, then restarts the sources on a rebased tick grid.
SERVER_KINDS = frozenset({"server_crash", "server_stall"})

#: Every kind an injector knows how to apply.
FAULT_KINDS = RING_KINDS | ADAPTER_KINDS | HOST_KINDS | SERVER_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injury.

    ``at_ns`` is relative to the moment the plan is armed; ``host`` names
    the wounded machine for adapter- and host-level kinds (must be None for
    ring-level kinds); ``params`` carries kind-specific knobs.
    """

    at_ns: int
    kind: str
    host: Optional[str] = None
    params: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"fault scheduled in the past: {self.at_ns}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.kind in RING_KINDS and self.host is not None:
            raise ValueError(f"{self.kind} is ring-level; host must be None")
        if self.kind not in RING_KINDS and self.host is None:
            raise ValueError(f"{self.kind} needs a target host")

    def describe(self) -> str:
        where = self.host or "ring"
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"t+{self.at_ns / MS:9.3f}ms  {self.kind:<20} {where:<12} {extras}"
        ).rstrip()


class FaultPlan:
    """An ordered schedule of fault events.

    Builder methods return ``self`` so plans read as one expression::

        plan = (FaultPlan()
                .purge_burst(at_ns=2 * SEC, count=10)
                .cpu_steal(at_ns=4 * SEC, duration_ns=SEC, host="receiver"))
    """

    def __init__(self, events: Optional[list[FaultEvent]] = None) -> None:
        self.events: list[FaultEvent] = list(events or [])

    # ------------------------------------------------------------------
    # generic construction
    # ------------------------------------------------------------------
    def add(
        self,
        at_ns: int,
        kind: str,
        host: Optional[str] = None,
        **params: Any,
    ) -> "FaultPlan":
        event = FaultEvent(at_ns=at_ns, kind=kind, host=host, params=params)
        event.validate()
        self.events.append(event)
        return self

    # ------------------------------------------------------------------
    # ring-level builders
    # ------------------------------------------------------------------
    def purge(
        self,
        at_ns: int,
        duration_ns: int = calibration.RING_PURGE_DURATION,
    ) -> "FaultPlan":
        """One isolated Ring Purge (the paper's soft-error reset)."""
        return self.add(at_ns, "purge", duration_ns=duration_ns)

    def purge_burst(
        self,
        at_ns: int,
        count: int = calibration.RING_INSERTION_PURGE_BURST,
        spacing_ns: int = calibration.RING_PURGE_DURATION,
    ) -> "FaultPlan":
        """A station insertion: ~10 Ring Purges back to back (Section 5)."""
        return self.add(at_ns, "purge_burst", count=count, spacing_ns=spacing_ns)

    def soft_error_storm(
        self,
        at_ns: int,
        duration_ns: int,
        rate_per_hour: float = 3600.0,
    ) -> "FaultPlan":
        """Poisson single purges at ``rate_per_hour`` for the window."""
        return self.add(
            at_ns,
            "soft_error_storm",
            duration_ns=duration_ns,
            rate_per_hour=rate_per_hour,
        )

    def token_starvation(
        self,
        at_ns: int,
        duration_ns: int,
        priority: int = 2,
        frame_bytes: int = 2000,
        utilization: float = 0.9,
    ) -> "FaultPlan":
        """Hostile traffic at ``priority`` claiming ~``utilization`` of the wire.

        Priority 2 starves stock priority-0 streams while CTMSP's media
        priority (4) still preempts it -- the paper's Section 3 argument for
        Token Ring media priority, weaponized.
        """
        return self.add(
            at_ns,
            "token_starvation",
            duration_ns=duration_ns,
            priority=priority,
            frame_bytes=frame_bytes,
            utilization=utilization,
        )

    def frame_loss(
        self,
        at_ns: int,
        duration_ns: int,
        protocol: str = "ctmsp",
        fraction: float = 1.0,
    ) -> "FaultPlan":
        """Corrupt ``fraction`` of ``protocol`` frames on the wire.

        The transmitter still sees a normal completion -- the Section 4
        silent-loss semantics, generalized beyond purges.  ``protocol``
        may be ``"*"`` to injure everything.
        """
        return self.add(
            at_ns,
            "frame_loss",
            duration_ns=duration_ns,
            protocol=protocol,
            fraction=fraction,
        )

    # ------------------------------------------------------------------
    # adapter-level builders
    # ------------------------------------------------------------------
    def tx_stall(self, at_ns: int, duration_ns: int, host: str) -> "FaultPlan":
        """The adapter's microcode sits on the transmit command."""
        return self.add(at_ns, "tx_stall", host=host, duration_ns=duration_ns)

    def rx_delay(
        self, at_ns: int, duration_ns: int, host: str, delay_ns: int
    ) -> "FaultPlan":
        """Receive interrupts delivered ``delay_ns`` late (coalescing)."""
        return self.add(
            at_ns, "rx_delay", host=host, duration_ns=duration_ns, delay_ns=delay_ns
        )

    def rx_buffer_exhaustion(
        self, at_ns: int, duration_ns: int, host: str
    ) -> "FaultPlan":
        """All fixed receive DMA buffers busy; arrivals overrun."""
        return self.add(
            at_ns, "rx_buffer_exhaustion", host=host, duration_ns=duration_ns
        )

    def drop_tx_complete(
        self, at_ns: int, host: str, count: int = 1, delay_ns: int = 0
    ) -> "FaultPlan":
        """Swallow the next ``count`` transmit-complete interrupts.

        With ``delay_ns`` > 0 the interrupt is delivered late instead of
        never -- the difference between a degraded stream and a wedged
        transmit path the invariant monitor must catch.
        """
        return self.add(
            at_ns, "drop_tx_complete", host=host, count=count, delay_ns=delay_ns
        )

    # ------------------------------------------------------------------
    # host-level builders
    # ------------------------------------------------------------------
    def cpu_steal(
        self, at_ns: int, duration_ns: int, host: str, layers: int = 1
    ) -> "FaultPlan":
        """``layers`` DMA-class competitors stretch every CPU copy."""
        return self.add(
            at_ns, "cpu_steal", host=host, duration_ns=duration_ns, layers=layers
        )

    def disk_slow(
        self, at_ns: int, duration_ns: int, host: str, extra_ns: int = 30 * MS
    ) -> "FaultPlan":
        """Every disk read pays ``extra_ns`` more (a competing seek storm)."""
        return self.add(
            at_ns, "disk_slow", host=host, duration_ns=duration_ns, extra_ns=extra_ns
        )

    # ------------------------------------------------------------------
    # media-server builders
    # ------------------------------------------------------------------
    def server_crash(self, at_ns: int, host: str) -> "FaultPlan":
        """Fail-stop death of a media server: it never comes back.

        Every VCA source on the host halts mid-period, the Token Ring
        transmit path wedges, and the receive DMA buffers are seized for
        the rest of the run.  Sessions sourced there go silent at the sink;
        only a control plane with a replica can save them.
        """
        return self.add(at_ns, "server_crash", host=host)

    def server_stall(
        self, at_ns: int, duration_ns: int, host: str
    ) -> "FaultPlan":
        """The media server freezes for a window, then resumes.

        Models a GC pause, a swap storm, or an operator mistake: the DSP
        timers stop for ``duration_ns`` and then restart on a tick grid
        rebased at the resume instant (no catch-up interrupt burst).
        """
        return self.add(
            at_ns, "server_stall", host=host, duration_ns=duration_ns
        )

    # ------------------------------------------------------------------
    # interrogation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def sorted_events(self) -> list[FaultEvent]:
        """Events in firing order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.at_ns)

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    def horizon_ns(self) -> int:
        """Last instant any event is still active (start + duration)."""
        horizon = 0
        for event in self.events:
            duration = int(event.params.get("duration_ns", 0))
            if event.kind == "purge_burst":
                duration = int(event.params.get("count", 1)) * int(
                    event.params.get("spacing_ns", calibration.RING_PURGE_DURATION)
                )
            horizon = max(horizon, event.at_ns + duration)
        return horizon

    def describe(self) -> str:
        lines = [f"FaultPlan ({len(self.events)} events)"]
        lines += [f"  {event.describe()}" for event in self.sorted_events()]
        return "\n".join(lines)

    def stable_hash(self) -> str:
        """A short content hash of the schedule (order-insensitive).

        Two plans with the same events hash identically regardless of the
        insertion order, so the hash names *what will happen to the
        system*, not how the plan object was built.  Campaign journals key
        results by this value: a result is reusable exactly when the plan
        that produced it would injure the testbed identically.
        """
        canonical = json.dumps(
            [
                {
                    "at_ns": e.at_ns,
                    "kind": e.kind,
                    "host": e.host,
                    "params": {k: e.params[k] for k in sorted(e.params)},
                }
                for e in self.sorted_events()
            ],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    # ------------------------------------------------------------------
    # seeded random generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng: random.Random,
        duration_ns: int,
        intensity: float = 1.0,
        hosts: Optional[list[str]] = None,
        start_ns: int = 250 * MS,
        kinds: Optional[list[str]] = None,
    ) -> "FaultPlan":
        """A seeded random plan whose severity scales with ``intensity``.

        Determinism contract: the same ``rng`` state, duration, intensity
        and host list produce an identical plan.  Events land in
        ``[start_ns, duration_ns)`` so a session can establish before the
        weather turns.
        """
        if intensity < 0:
            raise ValueError("negative intensity")
        hosts = hosts or []
        plan = cls()
        if intensity == 0 or duration_ns <= start_ns:
            return plan
        window = duration_ns - start_ns
        chosen_kinds = kinds or [
            "purge",
            "purge_burst",
            "soft_error_storm",
            "token_starvation",
            "cpu_steal",
            "rx_delay",
            "tx_stall",
        ]
        # ~2 events/sim-second at intensity 1.0, at least one.
        count = max(1, round(2.0 * intensity * (window / SEC)))
        for _ in range(count):
            kind = rng.choice(chosen_kinds)
            at = start_ns + rng.randrange(window)
            if kind in RING_KINDS:
                host = None
            elif hosts:
                host = rng.choice(hosts)
            else:
                continue  # no hosts to wound; skip host-scoped kinds
            burst_len = max(10 * MS, round(intensity * 60 * MS))
            if kind == "purge":
                plan.purge(at)
            elif kind == "purge_burst":
                plan.purge_burst(at, count=rng.randint(8, 13))
            elif kind == "soft_error_storm":
                plan.soft_error_storm(
                    at,
                    duration_ns=burst_len * 4,
                    rate_per_hour=3600.0 * 20 * intensity,
                )
            elif kind == "token_starvation":
                plan.token_starvation(
                    at,
                    duration_ns=burst_len * 8,
                    utilization=min(0.95, 0.5 + 0.2 * intensity),
                )
            elif kind == "cpu_steal":
                plan.cpu_steal(
                    at,
                    duration_ns=burst_len * 6,
                    host=host,
                    layers=max(1, round(intensity)),
                )
            elif kind == "rx_delay":
                plan.rx_delay(
                    at,
                    duration_ns=burst_len * 4,
                    host=host,
                    delay_ns=round(min(8 * MS, 1 * MS * intensity)),
                )
            elif kind == "tx_stall":
                plan.tx_stall(
                    at,
                    duration_ns=round(min(30 * MS, 4 * MS * intensity)),
                    host=host,
                )
        return plan
