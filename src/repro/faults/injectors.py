"""Apply a :class:`~repro.faults.plan.FaultPlan` to a live testbed.

:class:`FaultInjector` turns the declarative schedule into concrete injuries
using only hooks the hardware and ring models expose:

* ring kinds drive the Active Monitor (``monitor.purge()``), install wire
  corruption filters (``ring.fault_filters``), or attach a hostile
  high-priority traffic station;
* adapter kinds poke the Token Ring adapter's ``fault_*`` knobs;
* host kinds lean on the CPU contention hooks (a phantom DMA competitor)
  and the disk's ``fault_extra_service_ns``.

Determinism: the injector draws all stochastic behaviour (storm spacing,
partial frame loss) from the testbed's named RNG streams, so the same seed
and plan wound the system identically, event for event.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultEvent, FaultPlan
from repro.hardware import calibration
from repro.ring.frames import Frame
from repro.ring.station import RingStation
from repro.sim.units import HOUR

#: Protocol tag on hostile starvation frames (kept distinct so reports can
#: separate attack traffic from the workload under test).
HOSTILE_PROTOCOL = "chaos-hostile"


class FaultInjector:
    """Arms one fault plan against one testbed."""

    def __init__(self, testbed, plan: FaultPlan) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.plan = plan
        self._rng = testbed.rng.get("fault-injector")
        self._armed = False
        self._hostile_tx: Optional[RingStation] = None
        self._hostile_rx: Optional[RingStation] = None
        # --- statistics ---
        self.stats_fired = 0
        self.stats_skipped_no_target = 0
        self.stats_hostile_frames = 0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every event in the plan relative to *now*."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        self.plan.validate()
        for event in self.plan.sorted_events():
            self.sim.schedule(event.at_ns, self._fire, event)
        return self

    def _fire(self, event: FaultEvent) -> None:
        self.stats_fired += 1
        getattr(self, f"_do_{event.kind}")(event)

    def _host(self, event: FaultEvent):
        host = self.testbed.hosts.get(event.host)
        if host is None:
            self.stats_skipped_no_target += 1
            self.stats_fired -= 1
        return host

    # ------------------------------------------------------------------
    # ring-level kinds
    # ------------------------------------------------------------------
    def _do_purge(self, event: FaultEvent) -> None:
        self.testbed.monitor.purge(
            event.params.get("duration_ns", calibration.RING_PURGE_DURATION)
        )

    def _do_purge_burst(self, event: FaultEvent) -> None:
        count = int(event.params["count"])
        spacing = int(event.params["spacing_ns"])
        for i in range(count):
            self.sim.schedule(i * spacing, self.testbed.monitor.purge)

    def _do_soft_error_storm(self, event: FaultEvent) -> None:
        end = self.sim.now + int(event.params["duration_ns"])
        rate = float(event.params["rate_per_hour"]) / HOUR

        def next_purge() -> None:
            if self.sim.now > end:
                return
            self.testbed.monitor.purge()
            gap = max(1, round(self._rng.expovariate(rate)))
            if self.sim.now + gap <= end:
                self.sim.schedule(gap, next_purge)

        gap = max(1, round(self._rng.expovariate(rate)))
        if self.sim.now + gap <= end:
            self.sim.schedule(gap, next_purge)

    def _do_token_starvation(self, event: FaultEvent) -> None:
        if self._hostile_tx is None:
            self._hostile_tx = RingStation(self.testbed.ring, "chaos-hostile")
            self._hostile_rx = RingStation(self.testbed.ring, "chaos-hostile-sink")
        priority = int(event.params["priority"])
        frame_bytes = int(event.params["frame_bytes"])
        utilization = float(event.params["utilization"])
        end = self.sim.now + int(event.params["duration_ns"])
        frame = Frame(
            src=self._hostile_tx.address,
            dst=self._hostile_rx.address,
            info_bytes=frame_bytes,
            priority=priority,
            protocol=HOSTILE_PROTOCOL,
        )
        gap = max(1, round(frame.wire_time_ns / max(1e-6, utilization)))

        def emit() -> None:
            if self.sim.now > end:
                return
            self.stats_hostile_frames += 1
            self._hostile_tx.transmit(
                Frame(
                    src=self._hostile_tx.address,
                    dst=self._hostile_rx.address,
                    info_bytes=frame_bytes,
                    priority=priority,
                    protocol=HOSTILE_PROTOCOL,
                )
            )
            if self.sim.now + gap <= end:
                self.sim.schedule(gap, emit)

        emit()

    def _do_frame_loss(self, event: FaultEvent) -> None:
        protocol = event.params["protocol"]
        fraction = float(event.params["fraction"])
        rng = self._rng

        def corrupt(frame: Frame) -> bool:
            if protocol != "*" and frame.protocol != protocol:
                return False
            return fraction >= 1.0 or rng.random() < fraction

        self.testbed.ring.fault_filters.append(corrupt)
        self.sim.schedule(
            int(event.params["duration_ns"]), self._remove_filter, corrupt
        )

    def _remove_filter(self, filter_fn) -> None:
        try:
            self.testbed.ring.fault_filters.remove(filter_fn)
        except ValueError:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # adapter-level kinds
    # ------------------------------------------------------------------
    def _do_tx_stall(self, event: FaultEvent) -> None:
        host = self._host(event)
        if host is None:
            return
        adapter = host.tr_adapter
        adapter.fault_tx_stall_until = max(
            adapter.fault_tx_stall_until,
            self.sim.now + int(event.params["duration_ns"]),
        )

    def _do_rx_delay(self, event: FaultEvent) -> None:
        host = self._host(event)
        if host is None:
            return
        adapter = host.tr_adapter
        adapter.fault_rx_delay_ns = int(event.params["delay_ns"])
        self.sim.schedule(
            int(event.params["duration_ns"]), self._end_rx_delay, adapter
        )

    @staticmethod
    def _end_rx_delay(adapter) -> None:
        adapter.fault_rx_delay_ns = 0

    def _do_rx_buffer_exhaustion(self, event: FaultEvent) -> None:
        host = self._host(event)
        if host is None:
            return
        adapter = host.tr_adapter
        adapter.fault_seize_rx_buffers()
        self.sim.schedule(
            int(event.params["duration_ns"]),
            adapter.fault_release_rx_buffers,
        )

    def _do_drop_tx_complete(self, event: FaultEvent) -> None:
        host = self._host(event)
        if host is None:
            return
        adapter = host.tr_adapter
        adapter.fault_drop_tx_complete += int(event.params["count"])
        adapter.fault_drop_tx_complete_delay_ns = int(event.params["delay_ns"])

    # ------------------------------------------------------------------
    # host-level kinds
    # ------------------------------------------------------------------
    def _do_cpu_steal(self, event: FaultEvent) -> None:
        host = self._host(event)
        if host is None:
            return
        cpu = host.machine.cpu
        layers = int(event.params["layers"])
        for _ in range(layers):
            cpu.contention_started()
        self.sim.schedule(
            int(event.params["duration_ns"]), self._end_cpu_steal, cpu, layers
        )

    @staticmethod
    def _end_cpu_steal(cpu, layers: int) -> None:
        for _ in range(layers):
            cpu.contention_ended()

    def _do_disk_slow(self, event: FaultEvent) -> None:
        host = self._host(event)
        if host is None:
            return
        extra = int(event.params["extra_ns"])
        disks = [
            a
            for a in host.machine.adapters.values()
            if hasattr(a, "fault_extra_service_ns")
        ]
        if not disks:
            self.stats_skipped_no_target += 1
            return
        for disk in disks:
            disk.fault_extra_service_ns += extra
            self.sim.schedule(
                int(event.params["duration_ns"]),
                self._end_disk_slow,
                disk,
                extra,
            )

    @staticmethod
    def _end_disk_slow(disk, extra: int) -> None:
        disk.fault_extra_service_ns = max(
            0, disk.fault_extra_service_ns - extra
        )

    # ------------------------------------------------------------------
    # media-server kinds
    # ------------------------------------------------------------------
    @staticmethod
    def _host_vca_adapters(host) -> list:
        """Every VCA adapter on the host, in device-name order."""
        adapters = getattr(host, "vca_adapters", None)
        if adapters:
            return [adapters[name] for name in sorted(adapters)]
        return [host.vca_adapter]

    #: Sentinel "forever" instant for a wedged transmit path -- far past any
    #: realistic run horizon, without risking integer-size surprises.
    _NEVER_NS = 1 << 62

    def _do_server_crash(self, event: FaultEvent) -> None:
        """Fail-stop: the media server dies and stays dead.

        Every VCA source halts mid-period, the Token Ring adapter ignores
        transmit commands forever, and the receive DMA buffers are seized
        for the rest of the run.  ``host.crashed`` is set so control planes
        and reports can tell a dead server from a quiet one.
        """
        host = self._host(event)
        if host is None:
            return
        for adapter in self._host_vca_adapters(host):
            adapter.stop()
        tr = host.tr_adapter
        tr.fault_tx_stall_until = self._NEVER_NS
        tr.fault_seize_rx_buffers()
        host.crashed = True

    def _do_server_stall(self, event: FaultEvent) -> None:
        """Freeze the media server for a window, then resume it.

        Only VCA sources that were actually running when the stall hit are
        restarted, on a tick grid rebased at the resume instant -- a stalled
        server must not replay every missed 12 ms edge as a burst.
        """
        host = self._host(event)
        if host is None:
            return
        duration = int(event.params["duration_ns"])
        stalled = [
            a for a in self._host_vca_adapters(host) if a.running
        ]
        for adapter in stalled:
            adapter.stop()
        tr = host.tr_adapter
        tr.fault_tx_stall_until = max(
            tr.fault_tx_stall_until, self.sim.now + duration
        )
        self.sim.schedule(duration, self._end_server_stall, host, stalled)

    @staticmethod
    def _end_server_stall(host, stalled: list) -> None:
        if getattr(host, "crashed", False):
            return  # a crash while stalled wins: the server stays dead
        for adapter in stalled:
            adapter.start(align_to_now=True)
