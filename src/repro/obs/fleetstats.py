"""Fleet telemetry: the instrument names the campaign supervisor fills.

The parallel campaign runner (:mod:`repro.experiments.fleet`) owns a
:class:`~repro.obs.metrics.MetricsRegistry` and counts everything its
supervision loop does -- points dispatched, retried, timed out, failed;
workers spawned, crashed, killed -- plus a histogram of worker process
lifetimes.  This module gives those instruments their canonical dotted
names and a one-stop summary renderer, so tests and the CLI interrogate
fleet health by name instead of by string literal.

Observe-only contract: like the rest of ``repro.obs`` this module never
imports the fleet (or any actuator layer); the dependency points the other
way.  Worker lifetimes are *host* nanoseconds -- the fleet is explicitly
outside the simulated clock domain, and these instruments measure the
machinery around the simulations, never the simulations themselves.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: Points handed to a worker (every attempt counts once).
POINTS_DISPATCHED = "fleet.points.dispatched"
#: Points whose result reached the journal.
POINTS_COMPLETED = "fleet.points.completed"
#: Points found already journalled at startup (a resumed campaign).
POINTS_RESUMED = "fleet.points.resumed"
#: Re-dispatches after a crash, hang, or point exception.
POINTS_RETRIED = "fleet.points.retried"
#: Points whose worker exceeded the per-point deadline and was killed.
POINTS_TIMED_OUT = "fleet.points.timed_out"
#: Points that exhausted their retry budget (reported, not dropped).
POINTS_FAILED = "fleet.points.failed"

#: Worker processes started over the campaign's lifetime.
WORKERS_SPAWNED = "fleet.workers.spawned"
#: Workers that died without being asked to (crash faults, OOM, bugs).
WORKERS_CRASHED = "fleet.workers.crashed"
#: Workers the supervisor killed (hung past the point deadline).
WORKERS_KILLED = "fleet.workers.killed"

#: Host-clock lifetime of each worker process, spawn to exit.
WORKER_LIFETIME_NS = "fleet.worker.lifetime_ns"

#: Every fleet counter, in render order.
FLEET_COUNTERS = (
    POINTS_DISPATCHED,
    POINTS_COMPLETED,
    POINTS_RESUMED,
    POINTS_RETRIED,
    POINTS_TIMED_OUT,
    POINTS_FAILED,
    WORKERS_SPAWNED,
    WORKERS_CRASHED,
    WORKERS_KILLED,
)


def fleet_counts(registry: MetricsRegistry) -> dict[str, int]:
    """Current value of every fleet counter (zero when never touched)."""
    return {name: registry.counter(name).value for name in FLEET_COUNTERS}


def fleet_summary(registry: MetricsRegistry) -> str:
    """One line of fleet health for progress output and logs."""
    c = fleet_counts(registry)
    parts = [
        f"dispatched {c[POINTS_DISPATCHED]}",
        f"completed {c[POINTS_COMPLETED]}",
    ]
    if c[POINTS_RESUMED]:
        parts.append(f"resumed {c[POINTS_RESUMED]}")
    if c[POINTS_RETRIED]:
        parts.append(f"retried {c[POINTS_RETRIED]}")
    if c[POINTS_TIMED_OUT]:
        parts.append(f"timed-out {c[POINTS_TIMED_OUT]}")
    if c[POINTS_FAILED]:
        parts.append(f"failed {c[POINTS_FAILED]}")
    parts.append(
        f"workers {c[WORKERS_SPAWNED]} spawned"
        + (f"/{c[WORKERS_CRASHED]} crashed" if c[WORKERS_CRASHED] else "")
        + (f"/{c[WORKERS_KILLED]} killed" if c[WORKERS_KILLED] else "")
    )
    return "fleet: " + ", ".join(parts)
