"""Control-plane observability: the observer behind the duck type.

Layering keeps :mod:`repro.core.control` from importing ``repro.obs``, so
the control plane reports through a duck-typed ``observer`` exposing three
methods -- ``count(name, n)``, ``gauge(name, value)``, and
``span(event, t_ns, **fields)``.  :class:`ControlPlaneMetrics` is the real
implementation: counters and gauges land in a
:class:`~repro.obs.metrics.MetricsRegistry`, decisions become
:class:`~repro.obs.span.InstantEvent` markers on a ``control`` track, and
an ordered ``decisions`` list keeps the full policy trace for tests and
reports.

Observe-only contract (CTMS302): nothing here mutates model state or
schedules events; attaching this observer must not change a single event
count or timestamp -- the failover experiment's observe-only guard test
pins that.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecorder

#: Span category for control-plane decision markers.
CATEGORY_CONTROL = "control"

#: Canonical metric names the control plane emits (one place to grep).
CONTROL_SESSIONS_ADMITTED = "control.sessions.admitted"
CONTROL_SESSIONS_QUEUED = "control.sessions.queued"
CONTROL_SESSIONS_REJECTED = "control.sessions.rejected"
CONTROL_SESSIONS_SHED = "control.sessions.shed"
CONTROL_SESSIONS_RESUMED = "control.sessions.resumed"
CONTROL_SESSIONS_FAILOVERS = "control.sessions.failovers"
CONTROL_SESSIONS_STRANDED = "control.sessions.stranded"
CONTROL_SERVERS_DOWN = "control.servers.down"
CONTROL_RING_UTILIZATION = "control.ring.utilization"
CONTROL_RING_COMMITTED_FRACTION = "control.ring.committed_fraction"

CONTROL_COUNTERS = (
    CONTROL_SESSIONS_ADMITTED,
    CONTROL_SESSIONS_QUEUED,
    CONTROL_SESSIONS_REJECTED,
    CONTROL_SESSIONS_SHED,
    CONTROL_SESSIONS_RESUMED,
    CONTROL_SESSIONS_FAILOVERS,
    CONTROL_SESSIONS_STRANDED,
    CONTROL_SERVERS_DOWN,
)


class ControlPlaneMetrics:
    """Bridges control-plane reports into metrics and decision spans."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        #: Every ``span()`` report in emission order:
        #: ``(t_ns, event, fields)`` -- the policy audit trail.
        self.decisions: list[tuple[int, str, dict[str, Any]]] = []

    # ------------------------------------------------------------------
    # the duck-typed observer interface consumed by SessionControlPlane
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).incr(n)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def span(self, event: str, t_ns: int, **fields: Any) -> None:
        self.decisions.append((t_ns, event, dict(fields)))
        if self.recorder is not None:
            self.recorder.instant(
                event, CATEGORY_CONTROL, "control-plane", t_ns=t_ns, **fields
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def decision_counts(self) -> dict[str, int]:
        """How many times each decision event fired, sorted by name."""
        counts: dict[str, int] = {}
        for _, event, _ in self.decisions:
            counts[event] = counts.get(event, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        """Deterministic text table of the decision trail."""
        lines = [f"control-plane decisions ({len(self.decisions)})"]
        for t_ns, event, fields in self.decisions:
            extras = " ".join(
                f"{k}={v}" for k, v in sorted(fields.items())
            )
            lines.append(f"  t={t_ns:>14}ns  {event:<20} {extras}".rstrip())
        return "\n".join(lines)
