"""Named per-layer instruments: counters, gauges, histograms.

The paper's analysis artifact was the histogram ("Histograms as well as
means and standard deviations were computed...").  The registry reuses the
same :class:`~repro.measure.histogram.Histogram` type for distribution
instruments so every layer's telemetry renders and summarizes exactly like
the paper's figures, and adds counters (monotonic totals: packets, copies,
retries) and gauges (point-in-time levels: pool occupancy, queue depth).

Instrument names are dotted paths mirroring the package that owns the
quantity -- ``unix.mbuf.transmitter.bytes_in_use``,
``drivers.tr.transmitter.tx_queue_depth``, ``ring.utilization``,
``core.playout.depth_bytes``, ``obs.span.kernel-copy_ns`` -- so tables sort
into layers on their own.

Everything renders deterministically: JSON is emitted with sorted keys and
fixed separators, tables are sorted by instrument name.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.measure.histogram import Histogram
from repro.sim.units import US


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    unit: str = "count"
    value: int = 0

    def incr(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only count up")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time level with min/max envelope."""

    name: str
    unit: str = "count"
    value: Optional[float] = None
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        self.min_value = value if self.min_value is None else min(self.min_value, value)
        self.max_value = value if self.max_value is None else max(self.max_value, value)


class HistogramInstrument:
    """A distribution instrument wrapping the paper's Histogram type."""

    def __init__(self, name: str, unit: str = "ns", bin_width: int = 100 * US) -> None:
        self.name = name
        self.unit = unit
        self.histogram = Histogram(name=name, bin_width=bin_width)

    def record(self, value: int) -> None:
        self.histogram.add(value)

    @property
    def count(self) -> int:
        return self.histogram.count

    def summary(self) -> dict[str, float]:
        """Count/mean/std/min/max in the instrument's own unit."""
        h = self.histogram
        if h.count == 0:
            return {"count": 0}
        scale = US if self.unit == "ns" else 1
        return {
            "count": h.count,
            "mean": h.mean() / scale,
            "std": h.std() / scale,
            "min": h.min() / scale,
            "max": h.max() / scale,
        }


@dataclass
class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, HistogramInstrument] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, unit: str = "count") -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name=name, unit=unit)
        return inst

    def gauge(self, name: str, unit: str = "count") -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name=name, unit=unit)
        return inst

    def histogram(
        self, name: str, unit: str = "ns", bin_width: int = 100 * US
    ) -> HistogramInstrument:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = HistogramInstrument(
                name, unit=unit, bin_width=bin_width
            )
        return inst

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Plain-data view of every instrument (deterministic ordering)."""
        return {
            "counters": {
                name: {"unit": c.unit, "value": c.value}
                for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: {
                    "unit": g.unit,
                    "value": g.value,
                    "min": g.min_value,
                    "max": g.max_value,
                    "samples": g.samples,
                }
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {"unit": h.unit, **h.summary()}
                for name, h in sorted(self.histograms.items())
            },
        }

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, compact separators)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def render_tables(self) -> str:
        """Aligned-text tables, one per instrument kind."""
        parts: list[str] = []
        if self.counters:
            parts.append(
                _table(
                    "counters",
                    ["name", "value", "unit"],
                    [
                        [name, str(c.value), c.unit]
                        for name, c in sorted(self.counters.items())
                    ],
                )
            )
        if self.gauges:
            parts.append(
                _table(
                    "gauges",
                    ["name", "value", "min", "max", "n", "unit"],
                    [
                        [
                            name,
                            _num(g.value),
                            _num(g.min_value),
                            _num(g.max_value),
                            str(g.samples),
                            g.unit,
                        ]
                        for name, g in sorted(self.gauges.items())
                    ],
                )
            )
        if self.histograms:
            rows = []
            for name, h in sorted(self.histograms.items()):
                s = h.summary()
                if s["count"] == 0:
                    rows.append([name, "0", "-", "-", "-", "-", h.unit])
                    continue
                unit = "us" if h.unit == "ns" else h.unit
                rows.append(
                    [
                        name,
                        str(int(s["count"])),
                        f"{s['mean']:.1f}",
                        f"{s['std']:.1f}",
                        f"{s['min']:.1f}",
                        f"{s['max']:.1f}",
                        unit,
                    ]
                )
            parts.append(
                _table(
                    "histograms",
                    ["name", "n", "mean", "std", "min", "max", "unit"],
                    rows,
                )
            )
        return "\n\n".join(parts) if parts else "(no instruments registered)"


def _num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    if isinstance(value, float) and math.isfinite(value):
        return str(int(value))
    return str(value)


def _table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([title, bar, line(headers), bar] + [line(r) for r in rows] + [bar])
