"""Chrome-trace / Perfetto JSON export for recorded spans.

Spans become *async* begin/end pairs (``ph: "b"`` / ``ph: "e"``) in the
Trace Event Format, because data-path spans legitimately overlap on one
track (during driver catch-up, packet N+1's kernel-copy span starts while
packet N's is still open -- the very effect behind Figure 5-2's second
mode) and async events are the phase pair that tolerates overlap.
Instants become ``ph: "i"`` markers.

The ``track`` string of a span maps to the pid/tid plane: the part before
the first ``/`` is the *process* (a machine, or the ring itself), the rest
is the *thread* (a path layer).  Metadata events name both so Perfetto and
``chrome://tracing`` render labeled lanes.

Output is byte-deterministic for a deterministic recorder: events sort on
``(ts, phase, id, name)``, ids are assigned in sorted-span order, and JSON
is serialized with sorted keys and fixed separators -- the property the
golden-file test locks.
"""

from __future__ import annotations

import json
from typing import Any, Sequence, Union

from repro.obs.span import SpanRecorder

#: Phase sort ranks: metadata first, then begins before ends at equal ts.
_PHASE_ORDER = {"M": 0, "b": 1, "i": 2, "e": 3}


def _split_track(track: str) -> tuple[str, str]:
    if "/" in track:
        process, thread = track.split("/", 1)
    else:
        process, thread = track, track
    return process, thread


def chrome_trace(
    recorders: Union[SpanRecorder, Sequence[tuple[str, SpanRecorder]]],
) -> dict[str, Any]:
    """Build the Trace Event Format dict for one or more recorders.

    ``recorders`` is a single :class:`SpanRecorder` or a sequence of
    ``(label, recorder)`` pairs; labels prefix process names so two runs
    (say ``stock`` and ``ctmsp``) can share one timeline side by side.
    """
    if isinstance(recorders, SpanRecorder):
        named: list[tuple[str, SpanRecorder]] = [("", recorders)]
    else:
        named = list(recorders)

    raw: list[tuple[int, str, str, str, str, dict[str, Any]]] = []
    for label, recorder in named:
        # The label prefixes *process* names, so a stock and a ctmsp run
        # render as separate per-host process groups on one timeline.
        prefix = f"{label}/" if label else ""
        for span in sorted(
            recorder.spans,
            key=lambda s: (s.start_ns, s.end_ns, s.track, s.category, s.name),
        ):
            process, thread = _split_track(span.track)
            raw.append(
                (span.start_ns, "b", span.name, span.category, prefix + process, {"thread": thread, "args": span.args, "end_ns": span.end_ns})
            )
        for inst in sorted(
            recorder.instants, key=lambda i: (i.t_ns, i.track, i.name)
        ):
            process, thread = _split_track(inst.track)
            raw.append(
                (inst.t_ns, "i", inst.name, inst.category, prefix + process, {"thread": thread, "args": inst.args})
            )

    # pid/tid assignment: sorted process names, then sorted threads within.
    processes = sorted({entry[4] for entry in raw})
    pids = {proc: i + 1 for i, proc in enumerate(processes)}
    threads: dict[str, list[str]] = {proc: [] for proc in processes}
    for entry in raw:
        proc, thread = entry[4], entry[5]["thread"]
        if thread not in threads[proc]:
            threads[proc].append(thread)
    tids = {
        (proc, thread): j + 1
        for proc in processes
        for j, thread in enumerate(sorted(threads[proc]))
    }

    events: list[dict[str, Any]] = []
    for proc in processes:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pids[proc],
                "tid": 0,
                "args": {"name": proc},
            }
        )
        for thread in sorted(threads[proc]):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pids[proc],
                    "tid": tids[(proc, thread)],
                    "args": {"name": thread},
                }
            )

    span_events: list[dict[str, Any]] = []
    next_id = 1
    for t_ns, ph, name, category, process, extra in raw:
        pid = pids[process]
        tid = tids[(process, extra["thread"])]
        if ph == "b":
            span_id = f"0x{next_id:x}"
            next_id += 1
            common = {
                "cat": category,
                "id": span_id,
                "name": name,
                "pid": pid,
                "tid": tid,
            }
            span_events.append(
                {**common, "ph": "b", "ts": t_ns / 1000, "args": extra["args"]}
            )
            span_events.append(
                {**common, "ph": "e", "ts": extra["end_ns"] / 1000, "args": {}}
            )
        else:
            span_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": category,
                    "name": name,
                    "pid": pid,
                    "tid": tid,
                    "ts": t_ns / 1000,
                    "args": extra["args"],
                }
            )
    span_events.sort(
        key=lambda e: (
            e["ts"],
            _PHASE_ORDER[e["ph"]],
            e.get("id", ""),
            e["name"],
        )
    )
    events.extend(span_events)

    dropped = sum(
        rec.open_count + rec.stats_dropped_open for _label, rec in named
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-ns",
            "dropped_open_spans": dropped,
        },
    }


def render_chrome_json(
    recorders: Union[SpanRecorder, Sequence[tuple[str, SpanRecorder]]],
) -> str:
    """Deterministic JSON text for :func:`chrome_trace`."""
    return json.dumps(chrome_trace(recorders), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(
    path: str,
    recorders: Union[SpanRecorder, Sequence[tuple[str, SpanRecorder]]],
) -> None:
    """Write a trace file loadable by Perfetto / ``chrome://tracing``."""
    with open(path, "w") as f:
        f.write(render_chrome_json(recorders))
        f.write("\n")
