"""Span-based per-packet tracing over the simulated clock.

The paper measured its data path at four fixed points (Section 5.2).  This
module generalizes that idea: any stretch of the path -- source interrupt
latency, the kernel copy path, adapter DMA, ring transit, playout -- becomes
a :class:`Span` with integer-nanosecond ``start``/``end`` read from the
*simulated* clock.  Nothing here ever reads a wall clock or schedules a
simulation event: a :class:`SpanRecorder` is a passive notebook that the
instrumentation layer writes into from inside existing callbacks, so a
traced run and an untraced run execute the exact same event calendar.

The recorder also owns :class:`PointEvent`, the unified point-record type
shared with the paper-era tools (``measure.pseudo_driver`` aliases its
``TraceEntry`` to it), so the four classic measurement points and the span
tracer live on one timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.sim.engine import Simulator

#: The data-path span categories, in path order.  Exporters and metrics key
#: off these exact strings.
CATEGORY_DISK = "disk"
CATEGORY_KERNEL_COPY = "kernel-copy"
CATEGORY_PROTOCOL = "protocol"
CATEGORY_ADAPTER = "adapter"
CATEGORY_RING = "ring"
CATEGORY_PLAYOUT = "playout"

CATEGORIES = (
    CATEGORY_DISK,
    CATEGORY_KERNEL_COPY,
    CATEGORY_ADAPTER,
    CATEGORY_RING,
    CATEGORY_PROTOCOL,
    CATEGORY_PLAYOUT,
)


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The context a packet carries along the data path.

    Attached to ``CTMSPPacket.trace_ctx`` by the transmit-side
    instrumentation; every later observation point keys its spans off it.
    """

    stream_id: int
    packet_no: int
    born_ns: int


@dataclass(frozen=True, slots=True)
class PointEvent:
    """One timestamped occurrence of a named measurement point.

    This is the shape the paper's pseudo device driver recorded (point
    name, packet number, timestamp); ``measure.pseudo_driver.TraceEntry``
    is an alias of this type.
    """

    point: str
    packet_no: int
    t_ns: int


@dataclass(slots=True)
class Span:
    """A named interval on the simulated clock."""

    name: str
    category: str
    track: str
    start_ns: int
    end_ns: int
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(slots=True)
class InstantEvent:
    """A zero-duration marker (a lost frame, a TAP capture)."""

    name: str
    category: str
    track: str
    t_ns: int
    args: dict[str, Any] = field(default_factory=dict)


def packet_key(stream_id: int, packet_no: int, category: str) -> tuple:
    """The open-span key for one packet's span in one category."""
    return ("pkt", stream_id, packet_no, category)


class SpanRecorder:
    """Collects spans, instants and point events against one simulator.

    All methods are plain synchronous calls intended to run inside
    existing model callbacks (probes, listeners, delivery wrappers); none
    of them schedules anything, so recording is invisible to the event
    calendar.  Spans begun but never ended are *dropped at export* --
    determinism over completeness.
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        #: Bound lazily when None: harnesses that build their simulator
        #: internally (``run_scenario``) bind the recorder on assembly.
        self.sim = sim
        self.enabled = True
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.points: list[PointEvent] = []
        self._open: dict[Hashable, Span] = {}
        self.stats_dropped_open = 0

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def begin(
        self,
        key: Hashable,
        name: str,
        category: str,
        track: str,
        **args: Any,
    ) -> None:
        """Open a span at ``sim.now``.  Re-beginning a live key replaces it."""
        if not self.enabled:
            return
        if key in self._open:
            self.stats_dropped_open += 1
        self._open[key] = Span(
            name=name,
            category=category,
            track=track,
            start_ns=self.sim.now,
            end_ns=self.sim.now,
            args=dict(args),
        )

    def end(self, key: Hashable, **args: Any) -> Optional[Span]:
        """Close the span opened under ``key`` at ``sim.now``.

        Unknown keys are ignored (the matching ``begin`` may belong to a
        packet that predates attachment, or the span was already closed).
        """
        if not self.enabled:
            return None
        span = self._open.pop(key, None)
        if span is None:
            return None
        span.end_ns = self.sim.now
        span.args.update(args)
        self.spans.append(span)
        return span

    def discard(self, key: Hashable) -> None:
        """Abandon an open span (e.g. its packet was lost on the wire)."""
        if self._open.pop(key, None) is not None:
            self.stats_dropped_open += 1

    def add_span(
        self,
        name: str,
        category: str,
        track: str,
        start_ns: int,
        end_ns: int,
        **args: Any,
    ) -> Optional[Span]:
        """Record a span with explicit endpoints (e.g. a wire transit)."""
        if not self.enabled:
            return None
        if end_ns < start_ns:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(name, category, track, start_ns, end_ns, dict(args))
        self.spans.append(span)
        return span

    def instant(
        self,
        name: str,
        category: str,
        track: str,
        t_ns: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record a zero-duration marker (defaults to ``sim.now``)."""
        if not self.enabled:
            return
        self.instants.append(
            InstantEvent(
                name,
                category,
                track,
                self.sim.now if t_ns is None else t_ns,
                dict(args),
            )
        )

    def point(
        self, point: str, packet_no: int, t_ns: Optional[int] = None
    ) -> None:
        """Record one classic measurement-point occurrence."""
        if not self.enabled:
            return
        self.points.append(
            PointEvent(point, packet_no, self.sim.now if t_ns is None else t_ns)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        return len(self._open)

    def categories(self) -> list[str]:
        """Distinct span categories recorded, sorted."""
        return sorted({s.category for s in self.spans})

    def spans_by_category(self) -> dict[str, list[Span]]:
        out: dict[str, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span.category, []).append(span)
        return out

    def packet_waterfalls(self) -> dict[tuple[int, int], list[Span]]:
        """Per-packet span groups keyed by ``(stream_id, packet_no)``.

        Only spans carrying both ``stream_id`` and ``packet_no`` args
        participate; each group is sorted by start time.
        """
        out: dict[tuple[int, int], list[Span]] = {}
        for span in self.spans:
            sid = span.args.get("stream_id")
            no = span.args.get("packet_no")
            if sid is None or no is None:
                continue
            out.setdefault((sid, no), []).append(span)
        for group in out.values():
            group.sort(key=lambda s: (s.start_ns, s.end_ns, s.category))
        return out

    def worst_packet(self) -> Optional[tuple[tuple[int, int], list[Span]]]:
        """The packet with the largest first-span-start to last-span-end."""
        worst: Optional[tuple[tuple[int, int], list[Span]]] = None
        worst_ns = -1
        waterfalls = self.packet_waterfalls()
        for key in sorted(waterfalls):
            group = waterfalls[key]
            total = max(s.end_ns for s in group) - min(s.start_ns for s in group)
            if total > worst_ns:
                worst_ns = total
                worst = (key, group)
        return worst
