"""Testbed-level flight recorder.

A :class:`FlightRecorder` rides along on a testbed and, when asked --
typically by the fault-injection invariant monitor at the *first* moment a
stream invariant trips -- freezes a :class:`FlightSnapshot`: the metric
registry's current values, the tail of the recent span record, and the
open spans that were in flight.  This is the avionics idiom: the verdict
("stream starved at t=4.2s") comes with the last seconds of telemetry that
led up to it, instead of only an end-state report.

The coupling is deliberately one-way and duck-typed: ``repro.faults`` never
imports ``repro.obs`` -- the invariant monitor just calls
``testbed.flight_recorder.snapshot(...)`` if the attribute is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, SpanRecorder


@dataclass
class FlightSnapshot:
    """Everything the recorder froze at one trigger instant."""

    reason: str
    at_ns: int
    detail: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    recent_spans: list[Span] = field(default_factory=list)
    open_spans: list[Span] = field(default_factory=list)


class FlightRecorder:
    """Snapshot-on-trigger wrapper around a recorder and a registry."""

    def __init__(
        self,
        recorder: Optional[SpanRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        tail: int = 32,
        max_snapshots: int = 8,
    ) -> None:
        self.recorder = recorder
        self.metrics = metrics
        self.tail = tail
        self.max_snapshots = max_snapshots
        self.snapshots: list[FlightSnapshot] = []
        self.stats_suppressed = 0

    def snapshot(
        self, reason: str, at_ns: int, detail: Optional[dict[str, Any]] = None
    ) -> Optional[FlightSnapshot]:
        """Freeze current telemetry.  Bounded; extra triggers are counted."""
        if len(self.snapshots) >= self.max_snapshots:
            self.stats_suppressed += 1
            return None
        snap = FlightSnapshot(
            reason=reason,
            at_ns=at_ns,
            detail=dict(detail or {}),
            metrics=self.metrics.as_dict() if self.metrics is not None else {},
            recent_spans=(
                list(self.recorder.spans[-self.tail :])
                if self.recorder is not None
                else []
            ),
            open_spans=(
                sorted(
                    self.recorder._open.values(),
                    key=lambda s: (s.start_ns, s.track, s.name),
                )
                if self.recorder is not None
                else []
            ),
        )
        self.snapshots.append(snap)
        return snap

    @property
    def triggered(self) -> bool:
        return bool(self.snapshots)

    def render(self) -> str:
        """Human-readable dump of every snapshot, deterministic."""
        if not self.snapshots:
            return "flight recorder: no snapshots"
        lines: list[str] = []
        for i, snap in enumerate(self.snapshots):
            lines.append(
                f"snapshot {i}: {snap.reason} at t={snap.at_ns / 1_000_000:.3f} ms"
            )
            for key in sorted(snap.detail):
                lines.append(f"  {key}: {snap.detail[key]}")
            if snap.open_spans:
                lines.append(f"  in flight ({len(snap.open_spans)} spans):")
                for span in snap.open_spans:
                    lines.append(
                        f"    {span.track:<28} {span.name:<22} "
                        f"open since {span.start_ns / 1_000_000:.3f} ms"
                    )
            if snap.recent_spans:
                lines.append(f"  last {len(snap.recent_spans)} closed spans:")
                for span in snap.recent_spans:
                    lines.append(
                        f"    {span.track:<28} {span.name:<22} "
                        f"[{span.start_ns / 1_000_000:.3f}, "
                        f"{span.end_ns / 1_000_000:.3f}] ms "
                        f"({span.duration_ns / 1000:.1f} us)"
                    )
            counters = snap.metrics.get("counters", {})
            if counters:
                lines.append("  counters:")
                for name in sorted(counters):
                    lines.append(
                        f"    {name:<44} {counters[name]['value']}"
                    )
        if self.stats_suppressed:
            lines.append(f"({self.stats_suppressed} further triggers suppressed)")
        return "\n".join(lines)
