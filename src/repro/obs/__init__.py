"""Observability layer: spans, metrics, exporters, flight recorder.

``repro.obs`` is *observe-only* in exactly the sense ``repro.measure`` is:
it may read from any model layer but must never mutate model state,
schedule simulation events, or read a wall clock -- ctms-lint rule CTMS302
holds both packages to that contract.  Everything here rides inside hook
points the model already exposes (IRQ listeners, driver probes, ring
monitors, delivery handles), so a traced run replays the exact event
calendar of an untraced one.
"""

from repro.obs.controlstats import (
    CATEGORY_CONTROL,
    CONTROL_COUNTERS,
    ControlPlaneMetrics,
)
from repro.obs.export import chrome_trace, render_chrome_json, write_chrome_trace
from repro.obs.fleetstats import FLEET_COUNTERS, fleet_counts, fleet_summary
from repro.obs.flight import FlightRecorder, FlightSnapshot
from repro.obs.instrument import DataPathTracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    HistogramInstrument,
    MetricsRegistry,
)
from repro.obs.span import (
    CATEGORIES,
    CATEGORY_ADAPTER,
    CATEGORY_DISK,
    CATEGORY_KERNEL_COPY,
    CATEGORY_PLAYOUT,
    CATEGORY_PROTOCOL,
    CATEGORY_RING,
    InstantEvent,
    PointEvent,
    Span,
    SpanRecorder,
    TraceContext,
    packet_key,
)
from repro.obs.telemetry import (
    CampaignProgress,
    WorkerSpotlight,
    is_telemetry,
    progress,
)

__all__ = [
    "CATEGORIES",
    "CATEGORY_ADAPTER",
    "CATEGORY_CONTROL",
    "CATEGORY_DISK",
    "CATEGORY_KERNEL_COPY",
    "CATEGORY_PLAYOUT",
    "CATEGORY_PROTOCOL",
    "CATEGORY_RING",
    "CONTROL_COUNTERS",
    "CampaignProgress",
    "ControlPlaneMetrics",
    "Counter",
    "DataPathTracer",
    "FLEET_COUNTERS",
    "FlightRecorder",
    "FlightSnapshot",
    "Gauge",
    "HistogramInstrument",
    "InstantEvent",
    "MetricsRegistry",
    "PointEvent",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "WorkerSpotlight",
    "chrome_trace",
    "fleet_counts",
    "fleet_summary",
    "is_telemetry",
    "packet_key",
    "progress",
    "render_chrome_json",
    "write_chrome_trace",
]
