"""Campaign telemetry: structured fleet-journal records and live progress.

Between launch and final merge a thousand-seed campaign used to be a black
box: the journal said which points had *finished*, nothing said how fast
points were finishing, which worker was dragging, or when the campaign
would end.  This module is the schema and the arithmetic for answering
those questions from the journal alone.

**Record schema.**  A telemetry record is one JSONL line in the same
crash-safe journal the fleet already fsyncs, distinguished from point
results by a ``"telemetry"`` field naming the event:

========================  ==================================================
event                     extra fields
========================  ==================================================
``campaign_started``      ``campaign``, ``kind``, ``total_points``
``point_started``         ``point``, ``seed``, ``attempt``, ``worker``
``point_finished``        ``point``, ``seed``, ``attempt``, ``worker``,
                          ``status`` (``ok``/``error``), ``wall_ms``,
                          ``events`` (sim calendar entries, when known)
``point_retried``         ``point``, ``seed``, ``attempt``, ``error``,
                          ``backoff_s``
``point_killed``          ``point``, ``seed``, ``attempt``, ``worker``,
                          ``timeout_s``
``campaign_finished``     ``completed``, ``failed``, ``metrics`` (a
                          MetricsRegistry snapshot)
========================  ==================================================

Every record carries ``ts`` -- a *host*-clock timestamp in seconds.  This
module never reads that clock itself: the fleet supervisor (the one
sanctioned wall-clock bridge, ctms-lint CTMS303) stamps records as it
writes them, and everything here is pure arithmetic over the stamped
values.  Progress, rate, and ETA are therefore computable from a journal
alone -- by ``repro fleet status`` long after the campaign exited, or by
``repro fleet watch`` while it runs.

**Observe-only contract.**  Telemetry records are invisible to the merge:
the result loader keys records by ``"key"``, which telemetry records never
carry (they reference points via ``"point"``).  A golden test pins that a
campaign's merged report is byte-identical with telemetry on or off.
Like the rest of ``repro.obs``, this module imports no actuator layer
(ctms-lint CTMS302 covers it by name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

#: Field that marks (and names) a telemetry record inside the journal.
TELEMETRY_FIELD = "telemetry"

EVENT_CAMPAIGN_STARTED = "campaign_started"
EVENT_POINT_STARTED = "point_started"
EVENT_POINT_FINISHED = "point_finished"
EVENT_POINT_RETRIED = "point_retried"
EVENT_POINT_KILLED = "point_killed"
EVENT_CAMPAIGN_FINISHED = "campaign_finished"

#: Every event the schema knows, in lifecycle order.
EVENTS = (
    EVENT_CAMPAIGN_STARTED,
    EVENT_POINT_STARTED,
    EVENT_POINT_FINISHED,
    EVENT_POINT_RETRIED,
    EVENT_POINT_KILLED,
    EVENT_CAMPAIGN_FINISHED,
)

#: Telemetry schema version (bump on incompatible record changes).
TELEMETRY_VERSION = 1


def record(event: str, ts: float, **fields: Any) -> dict[str, Any]:
    """Build one telemetry record (the caller supplies the timestamp).

    ``ts`` is host-clock seconds stamped by the fleet supervisor; this
    module stays off the wall clock by construction.  The returned dict is
    JSON-safe as long as ``fields`` are.
    """
    if event not in EVENTS:
        raise ValueError(f"unknown telemetry event {event!r}; known: {EVENTS}")
    if "key" in fields:
        raise ValueError(
            "telemetry records must not carry 'key' (reserved for point "
            "results; reference points via 'point')"
        )
    return {TELEMETRY_FIELD: event, "v": TELEMETRY_VERSION, "ts": ts, **fields}


def is_telemetry(obj: Any) -> bool:
    """True when a decoded journal line is a telemetry record."""
    return isinstance(obj, dict) and TELEMETRY_FIELD in obj


def events_of(records: Iterable[dict[str, Any]], event: str) -> list[dict[str, Any]]:
    """The telemetry records of one event kind, in journal order."""
    return [r for r in records if r.get(TELEMETRY_FIELD) == event]


# ----------------------------------------------------------------------
# progress arithmetic
# ----------------------------------------------------------------------
@dataclass
class WorkerSpotlight:
    """The slowest worker (or longest-running in-flight point) right now."""

    worker: int
    #: Why this worker is in the spotlight: "in-flight" (longest currently
    #: running point) or "slowest" (worst mean wall-clock per finished point).
    reason: str
    point: str = ""
    seed: Optional[int] = None
    #: Seconds the in-flight point has been running, or the worker's mean
    #: wall-clock seconds per finished point.
    seconds: float = 0.0

    def render(self) -> str:
        if self.reason == "in-flight":
            what = f"seed {self.seed}" if self.seed is not None else self.point
            return f"worker {self.worker} on {what} for {self.seconds:.1f}s"
        return f"worker {self.worker} slowest ({self.seconds:.1f}s/point)"


@dataclass
class CampaignProgress:
    """One campaign's live (or final) state, computed from its journal."""

    campaign: str
    kind: str
    total: int
    done: int = 0
    failed: int = 0
    #: Points currently waiting out a retry backoff (seen a ``point_retried``
    #: with no later terminal record).
    retrying: int = 0
    #: Points started but not yet finished/killed.
    in_flight: int = 0
    #: Seconds from the first record timestamp to the last (or to ``now``).
    elapsed_s: float = 0.0
    #: Completed points per second of elapsed time.
    points_per_sec: float = 0.0
    #: Estimated seconds until the campaign completes (None: unknowable).
    eta_s: Optional[float] = None
    #: Whether the journal carried any telemetry timestamps at all
    #: (distinguishes "telemetry off" from "on but zero-width window").
    has_telemetry: bool = False
    spotlight: Optional[WorkerSpotlight] = None
    #: Sum of sim calendar entries over finished points that reported one.
    sim_events: int = 0
    #: wall_ms of every finished point, journal order (drives spotlights
    #: and per-point statistics downstream).
    point_wall_ms: list[float] = field(default_factory=list)

    @property
    def pending(self) -> int:
        return max(0, self.total - self.done - self.failed)

    @property
    def finished(self) -> bool:
        return self.total > 0 and self.pending == 0

    def render_line(self) -> str:
        """The one-line live progress readout ``repro fleet watch`` prints."""
        parts = [
            f"{self.campaign} [{self.kind}]",
            f"{self.done}/{self.total} done",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retrying:
            parts.append(f"{self.retrying} retrying")
        if self.in_flight:
            parts.append(f"{self.in_flight} in flight")
        parts.append(f"{self.points_per_sec:.2f} pts/s")
        if self.finished:
            parts.append(f"finished in {self.elapsed_s:.1f}s")
        elif self.eta_s is not None:
            parts.append(f"ETA {self.eta_s:.0f}s")
        else:
            parts.append("ETA --")
        if self.spotlight is not None and not self.finished:
            parts.append(self.spotlight.render())
        return "  ".join(parts)


def progress(
    header: dict[str, Any],
    results: dict[str, dict[str, Any]],
    telemetry: list[dict[str, Any]],
    now_ts: Optional[float] = None,
) -> CampaignProgress:
    """Compute a campaign's progress from its journal's three ingredients.

    ``header``/``results`` are what the fleet journal loader returns
    (results keyed by point key, last writer wins); ``telemetry`` is the
    decoded telemetry records in journal order.  ``now_ts`` extends the
    elapsed window to "now" for a live watch; when omitted (a post-mortem
    ``status`` call) the window ends at the last record timestamp, so the
    computation is sim-clock-free *and* wall-clock-free.
    """
    total = int(header.get("total_points") or 0)
    prog = CampaignProgress(
        campaign=str(header.get("campaign", "?")),
        kind=str(header.get("kind", "?")),
        total=total,
    )
    for rec in results.values():
        if rec.get("status") == "ok":
            prog.done += 1
        elif rec.get("status") == "failed":
            prog.failed += 1

    timestamps = [r["ts"] for r in telemetry if isinstance(r.get("ts"), (int, float))]
    prog.has_telemetry = bool(timestamps)
    start_ts = min(timestamps) if timestamps else None
    end_ts = max(timestamps) if timestamps else None
    if now_ts is not None and start_ts is not None:
        end_ts = max(now_ts, end_ts if end_ts is not None else now_ts)
    if start_ts is not None and end_ts is not None:
        prog.elapsed_s = max(0.0, end_ts - start_ts)
    # Rate and ETA need a real denominator on both axes: at least one
    # finished point *and* a non-zero elapsed window.  An empty or
    # telemetry-only journal (nothing finished yet) gets rate 0 and
    # ETA None -- never a division by zero or a fantasy "ETA 0s".
    if prog.elapsed_s > 0 and prog.done > 0:
        prog.points_per_sec = prog.done / prog.elapsed_s
    # A journal with an unknown/torn total has nothing to count down to.
    if prog.points_per_sec > 0 and prog.total > 0:
        prog.eta_s = prog.pending / prog.points_per_sec

    # Point lifecycle: the latest event per point decides its live state.
    latest: dict[str, dict[str, Any]] = {}
    finished_points: set[str] = set()
    per_worker_ms: dict[int, list[float]] = {}
    for rec in telemetry:
        event = rec.get(TELEMETRY_FIELD)
        point = rec.get("point")
        if point is None:
            continue
        latest[point] = rec
        if event == EVENT_POINT_FINISHED:
            finished_points.add(point)
            wall_ms = rec.get("wall_ms")
            if isinstance(wall_ms, (int, float)):
                prog.point_wall_ms.append(float(wall_ms))
                per_worker_ms.setdefault(int(rec.get("worker", 0)), []).append(
                    float(wall_ms)
                )
            events = rec.get("events")
            if isinstance(events, int):
                prog.sim_events += events
    in_flight: list[dict[str, Any]] = []
    for point, rec in latest.items():
        event = rec.get(TELEMETRY_FIELD)
        if event == EVENT_POINT_STARTED:
            in_flight.append(rec)
        elif event == EVENT_POINT_RETRIED and point not in results:
            prog.retrying += 1
    prog.in_flight = len(in_flight)

    prog.spotlight = _spotlight(in_flight, per_worker_ms, end_ts)
    return prog


def _spotlight(
    in_flight: list[dict[str, Any]],
    per_worker_ms: dict[int, list[float]],
    end_ts: Optional[float],
) -> Optional[WorkerSpotlight]:
    """Pick the worker worth a second look.

    Preference order: the longest-running in-flight point (that is where a
    hang shows first), else the worker with the worst mean wall-clock per
    finished point (the straggler slowing the whole pool).
    """
    if in_flight and end_ts is not None:
        oldest = min(in_flight, key=lambda r: (r.get("ts", 0.0), str(r.get("point"))))
        return WorkerSpotlight(
            worker=int(oldest.get("worker", 0)),
            reason="in-flight",
            point=str(oldest.get("point", "")),
            seed=oldest.get("seed"),
            seconds=max(0.0, end_ts - float(oldest.get("ts", end_ts))),
        )
    if per_worker_ms:
        worker, samples = max(
            per_worker_ms.items(),
            key=lambda kv: (sum(kv[1]) / len(kv[1]), kv[0]),
        )
        return WorkerSpotlight(
            worker=worker,
            reason="slowest",
            seconds=sum(samples) / len(samples) / 1000.0,
        )
    return None
