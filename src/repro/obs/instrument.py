"""Attach-only instrumentation of the CTMS data path.

:class:`DataPathTracer` wires a :class:`~repro.obs.span.SpanRecorder` (and
optionally a :class:`~repro.obs.metrics.MetricsRegistry`) into an
assembled host pair using only the hook points the model already exposes
for measurement: the VCA's electrical IRQ listeners, the driver probe
points p2/p3/p4, the ring's wire monitors, and the sink delivery handle
(the same instance-attribute wrap ``PresentationMachine.attach_to_vca``
uses).  The actuator layers never import ``repro.obs``; the tracer reaches
*down* into them, which is why ctms-lint can hold ``obs`` to the same
observe-only rule as ``measure``.

Zero perturbation is a hard guarantee, kept three ways:

* probe callbacks return ``None``, so ``_fire_probe`` yields no extra
  ``Exec`` and the CPU timeline is untouched;
* listeners and monitors are synchronous appends to existing lists,
  called inline by code that already runs;
* the delivery wrapper is a generator with no yields of its own -- it
  delegates with ``yield from`` and records on completion.

Nothing here calls ``sim.schedule``/``sim.at``; the overhead-guard test
asserts a traced run's event-sequence counter equals the untraced run's.

Span plan (one packet, six categories):

====================  =====================================================
``disk``              VCA IRQ pulse -> interrupt-handler entry (p2)
``kernel-copy``       p2 -> pre-transmit (p3): mbuf alloc, header/data
                      copies, queueing, fixed-DMA-buffer copy
``adapter``           tx: p3 -> frame on the wire; rx: wire end -> CTMSP
                      classification (p4)
``ring``              wire transit (serialization at 4 Mbit/s)
``protocol``          p4 -> sink delivery complete
``playout``           delivery -> projected drain of the playout buffer
                      (a projection: level / rate at delivery time)
====================  =====================================================
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.ctmsp import CTMSPPacket
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import (
    CATEGORY_ADAPTER,
    CATEGORY_DISK,
    CATEGORY_KERNEL_COPY,
    CATEGORY_PLAYOUT,
    CATEGORY_PROTOCOL,
    CATEGORY_RING,
    SpanRecorder,
    TraceContext,
    packet_key,
)
from repro.sim.units import SEC, US


class DataPathTracer:
    """End-to-end per-packet tracing across one ring's hosts."""

    def __init__(
        self,
        recorder: SpanRecorder,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.recorder = recorder
        self.metrics = metrics
        #: wire-end times awaiting the receive-side p4 probe, keyed by
        #: (stream_id, packet_no).
        self._rx_pending: dict[tuple[int, int], int] = {}
        self._playouts: dict[str, Any] = {}
        self._tx_hosts: list[Any] = []
        self._rx_hosts: list[Any] = []
        self._rings: list[Any] = []

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_transmitter(self, host: Any) -> None:
        """Instrument a source host: IRQ line, p2, p3."""
        rec = self.recorder
        name = host.name
        vca_driver = host.vca_driver
        stream_id = vca_driver.config.stream_id
        pulse = {"n": 0}

        def on_irq_pulse(_t_ns: int) -> None:
            packet_no = pulse["n"]
            pulse["n"] += 1
            rec.begin(
                packet_key(stream_id, packet_no, CATEGORY_DISK),
                name=f"{CATEGORY_DISK} #{packet_no}",
                category=CATEGORY_DISK,
                track=f"{name}/{CATEGORY_DISK}",
                stream_id=stream_id,
                packet_no=packet_no,
            )

        host.vca_adapter.irq_listeners.append(on_irq_pulse)

        def probe_p2(packet_no: int) -> None:
            rec.end(packet_key(stream_id, packet_no, CATEGORY_DISK))
            rec.begin(
                packet_key(stream_id, packet_no, CATEGORY_KERNEL_COPY),
                name=f"{CATEGORY_KERNEL_COPY} #{packet_no}",
                category=CATEGORY_KERNEL_COPY,
                track=f"{name}/{CATEGORY_KERNEL_COPY}",
                stream_id=stream_id,
                packet_no=packet_no,
            )
            if self.metrics is not None:
                self.metrics.histogram(
                    f"unix.mbuf.{name}.bytes_in_use", unit="bytes", bin_width=2048
                ).record(host.kernel.mbufs.bytes_in_use())
            return None

        vca_driver.add_probe("p2", probe_p2)

        def probe_p3(frame: Any) -> None:
            packet = frame.payload
            if isinstance(packet, CTMSPPacket):
                rec.end(
                    packet_key(
                        packet.stream_id, packet.packet_no, CATEGORY_KERNEL_COPY
                    )
                )
                rec.begin(
                    packet_key(packet.stream_id, packet.packet_no, CATEGORY_ADAPTER),
                    name=f"adapter-tx #{packet.packet_no}",
                    category=CATEGORY_ADAPTER,
                    track=f"{name}/{CATEGORY_ADAPTER}",
                    stream_id=packet.stream_id,
                    packet_no=packet.packet_no,
                    side="tx",
                )
                packet.trace_ctx = TraceContext(
                    stream_id=packet.stream_id,
                    packet_no=packet.packet_no,
                    born_ns=packet.born_at,
                )
                if self.metrics is not None:
                    self.metrics.histogram(
                        f"drivers.tr.{name}.tx_queue_depth", unit="frames", bin_width=1
                    ).record(host.tr_driver.tx_queue_depth)
            return None

        host.tr_driver.add_probe("p3", probe_p3)
        self._tx_hosts.append(host)

    def attach_ring(self, ring: Any) -> None:
        """Instrument the wire: adapter-tx handoff, ring transit, losses."""
        rec = self.recorder

        def on_wire(frame: Any, t_ns: int, status: str) -> None:
            ctx = getattr(frame.payload, "trace_ctx", None)
            if ctx is None:
                return
            rec.end(
                packet_key(ctx.stream_id, ctx.packet_no, CATEGORY_ADAPTER)
            )
            if status != "wire":
                rec.instant(
                    f"lost #{ctx.packet_no}",
                    CATEGORY_RING,
                    "ring/wire",
                    stream_id=ctx.stream_id,
                    packet_no=ctx.packet_no,
                    status=status,
                )
                if self.metrics is not None:
                    self.metrics.counter("ring.frames_lost").incr()
                return
            rec.add_span(
                f"{CATEGORY_RING} #{ctx.packet_no}",
                CATEGORY_RING,
                "ring/wire",
                t_ns,
                t_ns + frame.wire_time_ns,
                stream_id=ctx.stream_id,
                packet_no=ctx.packet_no,
                wire_bytes=frame.wire_bytes,
            )
            self._rx_pending[(ctx.stream_id, ctx.packet_no)] = (
                t_ns + frame.wire_time_ns
            )

        ring.monitors.append(on_wire)
        self._rings.append(ring)

    def attach_receiver(self, host: Any) -> None:
        """Instrument a sink host: p4 and the delivery handle.

        Must run *before* session establishment: the delivery wrapper is
        installed as an instance attribute so the establishment ioctl
        registers the wrapped handle with the Token Ring driver.
        """
        rec = self.recorder
        name = host.name

        def probe_p4(frame: Any) -> None:
            packet = frame.payload
            if isinstance(packet, CTMSPPacket):
                ctx = getattr(packet, "trace_ctx", None)
                if ctx is not None:
                    start = self._rx_pending.pop(
                        (ctx.stream_id, ctx.packet_no), None
                    )
                    if start is not None:
                        rec.add_span(
                            f"adapter-rx #{ctx.packet_no}",
                            CATEGORY_ADAPTER,
                            f"{name}/{CATEGORY_ADAPTER}",
                            start,
                            rec.sim.now,
                            stream_id=ctx.stream_id,
                            packet_no=ctx.packet_no,
                            side="rx",
                        )
                    rec.begin(
                        packet_key(ctx.stream_id, ctx.packet_no, CATEGORY_PROTOCOL),
                        name=f"{CATEGORY_PROTOCOL} #{ctx.packet_no}",
                        category=CATEGORY_PROTOCOL,
                        track=f"{name}/{CATEGORY_PROTOCOL}",
                        stream_id=ctx.stream_id,
                        packet_no=ctx.packet_no,
                    )
            return None

        host.tr_driver.add_probe("p4", probe_p4)

        original = host.vca_driver.ctms_deliver

        def traced_deliver(frame, residency, chain):
            result = yield from original(frame, residency, chain)
            ctx = getattr(frame.payload, "trace_ctx", None)
            if ctx is not None:
                rec.end(
                    packet_key(ctx.stream_id, ctx.packet_no, CATEGORY_PROTOCOL)
                )
                self._record_playout(name, ctx)
            return result

        host.vca_driver.ctms_deliver = traced_deliver
        self._rx_hosts.append(host)

    def attach_playout(self, presentation: Any, host_name: str) -> None:
        """Register a PresentationMachine for projected playout spans."""
        self._playouts[host_name] = presentation

    def _record_playout(self, host_name: str, ctx: TraceContext) -> None:
        presentation = self._playouts.get(host_name)
        if presentation is None:
            return
        # level_bytes drains to now first; at the same instant as the
        # delivery that is a zero-elapsed no-op, so reading it is safe.
        level = presentation.level_bytes
        now = self.recorder.sim.now
        self.recorder.add_span(
            f"{CATEGORY_PLAYOUT} #{ctx.packet_no}",
            CATEGORY_PLAYOUT,
            f"{host_name}/{CATEGORY_PLAYOUT}",
            now,
            now + round(level / presentation.rate * SEC),
            stream_id=ctx.stream_id,
            packet_no=ctx.packet_no,
            level_bytes=int(level),
        )
        if self.metrics is not None:
            self.metrics.histogram(
                f"core.playout.{host_name}.depth_bytes",
                unit="bytes",
                bin_width=1024,
            ).record(int(level))

    # ------------------------------------------------------------------
    # end-of-run metric collection
    # ------------------------------------------------------------------
    def finalize(
        self,
        elapsed_ns: int,
        session: Any = None,
        testbed: Any = None,
    ) -> None:
        """Fold counters, ledgers and span durations into the registry."""
        if self.metrics is None:
            return
        m = self.metrics
        rec = self.recorder
        for category, spans in sorted(rec.spans_by_category().items()):
            hist = m.histogram(f"obs.span.{category}_ns", unit="ns", bin_width=50 * US)
            for span in spans:
                hist.record(span.duration_ns)
        m.counter("obs.spans_recorded").incr(len(rec.spans))
        m.counter("obs.spans_dropped_open").incr(
            rec.open_count + rec.stats_dropped_open
        )
        for host in self._tx_hosts + self._rx_hosts:
            name = host.name
            ledger = host.kernel.ledger
            m.counter(f"unix.copy.{name}.cpu_copies").incr(ledger.cpu_copy_count())
            m.counter(f"unix.copy.{name}.dma_copies").incr(ledger.dma_copy_count())
            m.counter(f"unix.copy.{name}.cpu_bytes", unit="bytes").incr(
                ledger.cpu_bytes()
            )
            pool = host.kernel.mbufs
            m.gauge(f"unix.mbuf.{name}.peak_bytes_in_use", unit="bytes").set(
                pool.peak_bytes_in_use()
            )
            m.counter(f"unix.mbuf.{name}.alloc_failures").incr(pool.stats_failures)
        for i, ring in enumerate(self._rings):
            suffix = "" if len(self._rings) == 1 else f".{i}"
            m.gauge(f"ring.utilization{suffix}", unit="fraction").set(
                round(ring.utilization(elapsed_ns), 6)
            )
            m.counter(f"ring.purges{suffix}").incr(ring.stats_purges)
            m.counter(f"ring.frames_lost_to_purge{suffix}").incr(
                ring.stats_frames_lost_to_purge
            )
        if session is not None:
            m.counter("core.session.setup_attempts").incr(session.setup_attempts)
            m.counter("core.session.delivered").incr(session.sink_tracker.delivered)
            m.counter("core.session.lost_packets").incr(
                session.sink_tracker.lost_packets
            )
        for host_name, presentation in sorted(self._playouts.items()):
            m.counter(f"core.playout.{host_name}.glitches").incr(
                presentation.glitch_count
            )
            m.counter(f"core.playout.{host_name}.skips").incr(presentation.skips)
            m.gauge(f"core.playout.{host_name}.peak_level", unit="bytes").set(
                presentation.peak_level
            )
        if testbed is not None:
            m.gauge("sim.events_scheduled").set(testbed.sim._seq)
