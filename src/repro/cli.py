"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro list                  # what can be run
    python -m repro fig5-2 [--seconds 60] [--seed 1]
    python -m repro fig5-3
    python -m repro fig5-4 [--minutes 6]
    python -m repro histograms {a,b}
    python -m repro baseline
    python -m repro copies
    python -m repro quickstart
    python -m repro lint src/repro [--json] [--baseline lint-baseline.json]
    python -m repro lint src/repro --v2 [--changed] [--sarif out.sarif]
    python -m repro chaos --jobs 4 --seeds 8 [--resume]
    python -m repro fleet status [--state-dir .fleet]
    python -m repro fleet watch [--interval 1.0] [--campaign SUBSTR]
    python -m repro fleet rollup [--json]
    python -m repro bench [--check] [--quick] [--out BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.units import MINUTE, SEC


def _cmd_fig5_2(args) -> int:
    from repro.experiments.reporting import figure_5_2_report
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import test_case_b

    result = run_scenario(
        test_case_b(duration_ns=args.seconds * SEC, seed=args.seed)
    )
    print(figure_5_2_report(result.histograms[6]))
    return 0


def _cmd_fig5_3(args) -> int:
    from repro.experiments.reporting import figure_5_3_report
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import test_case_a

    result = run_scenario(
        test_case_a(duration_ns=args.seconds * SEC, seed=args.seed)
    )
    print(figure_5_3_report(result.histograms[7]))
    return 0


def _cmd_fig5_4(args) -> int:
    from repro.experiments.reporting import figure_5_4_report
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import test_case_b

    duration = args.minutes * MINUTE
    result = run_scenario(
        test_case_b(
            duration_ns=duration,
            seed=args.seed,
            insertions_per_day=24 * 60.0 / max(1, args.minutes // 3),
        )
    )
    print(
        figure_5_4_report(
            result.histograms[7],
            result.testbed.inserter.stats_insertions,
            args.minutes,
        )
    )
    return 0


def _cmd_histograms(args) -> int:
    from repro.experiments.reporting import histogram_summary_table
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import test_case_a, test_case_b

    factory = test_case_a if args.case == "a" else test_case_b
    result = run_scenario(factory(duration_ns=args.seconds * SEC, seed=args.seed))
    print(
        histogram_summary_table(
            result.histograms, f"Test Case {args.case.upper()}"
        )
    )
    for i in sorted(result.histograms):
        print()
        print(result.histograms[i].to_ascii(width=50, max_rows=25))
    return 0


def _cmd_baseline(args) -> int:
    from repro.experiments.baseline import run_rate_comparison

    results = run_rate_comparison(duration_ns=args.seconds * SEC, seed=args.seed)
    print("Stock UNIX relay (Section 1):")
    for rate, r in sorted(results.items()):
        verdict = "works" if r.works() else "FAILS COMPLETELY"
        print(
            f"  {rate // 1000:>4} KB/s: delivered "
            f"{r.delivered_fraction * 100:5.1f}%, "
            f"{r.glitch_rate_per_sec():5.2f} glitches/s -> {verdict}"
        )
    return 0


def _cmd_copies(args) -> int:
    from repro.experiments.copies import measure_all

    print("Data copies per packet (Section 2):")
    for m in measure_all(duration_ns=args.seconds * SEC, seed=args.seed):
        status = "ok" if m.matches_model() else "MISMATCH"
        print(
            f"  {m.path.value:>16}: {m.cpu_per_packet:.2f} CPU + "
            f"{m.dma_per_packet:.2f} DMA  (model "
            f"{m.model.cpu_copies}+{m.model.dma_copies})  [{status}]"
        )
    return 0


def _cmd_ablate(args) -> int:
    from repro.experiments.ablations import TABLE_HEADERS, run_matrix
    from repro.experiments.reporting import format_table

    if args.jobs >= 1 or args.seeds > 1 or args.resume:
        from repro.experiments.fleet import ablation_fleet_spec

        spec = ablation_fleet_spec(
            args.seconds * SEC,
            seeds=range(args.seed, args.seed + args.seeds),
        )
        return _run_fleet_cli(spec, args)
    summary = run_matrix(args.seconds * SEC, args.seed)
    print(
        format_table(
            "Section 5.3 ablations (one switch flipped at a time)",
            TABLE_HEADERS,
            [entry.as_row() for entry in summary.values()],
        )
    )
    return 0


def _cmd_chaos(args) -> int:
    from repro.experiments.chaos import run_campaign, run_smoke

    if getattr(args, "scenario", "survival") == "failover":
        return _cmd_chaos_failover(args)
    if args.jobs >= 1 or args.seeds > 1 or args.resume:
        from repro.experiments.fleet import chaos_fleet_spec

        spec = chaos_fleet_spec(
            seeds=range(args.seed, args.seed + args.seeds),
            duration_ns=args.seconds * SEC,
            intensities=(
                tuple(args.intensities) if args.intensities else (0.5, 1.0, 2.0)
            ),
        )
        return _run_fleet_cli(spec, args)
    if args.smoke:
        report = run_smoke(seed=args.seed)
    elif args.intensities:
        report = run_campaign(
            seed=args.seed,
            duration_ns=args.seconds * SEC,
            intensities=tuple(args.intensities),
        )
    else:
        report = run_campaign(seed=args.seed, duration_ns=args.seconds * SEC)
    print(report.render())
    return 0


def _cmd_chaos_failover(args) -> int:
    """The control-plane scenario: admission + shedding + failover."""
    from repro.experiments.failover import (
        run_failover_campaign,
        run_failover_smoke,
    )

    if args.jobs >= 1 or args.seeds > 1 or args.resume:
        from repro.experiments.fleet import failover_fleet_spec

        spec = failover_fleet_spec(
            seeds=range(args.seed, args.seed + args.seeds),
            duration_ns=args.seconds * SEC,
        )
        return _run_fleet_cli(spec, args)
    if args.smoke:
        report = run_failover_smoke(seed=args.seed)
    else:
        report = run_failover_campaign(
            seed=args.seed, duration_ns=args.seconds * SEC
        )
    print(report.render())
    return 0


def _resume_command(args) -> str:
    """The exact invocation that continues this campaign after a kill."""
    parts = [
        f"python -m repro {args.command}",
        f"--jobs {max(1, args.jobs)}",
        f"--seeds {args.seeds}",
        f"--seed {args.seed}",
        f"--seconds {args.seconds}",
    ]
    if getattr(args, "scenario", "survival") != "survival":
        parts.append(f"--scenario {args.scenario}")
    if getattr(args, "intensities", None):
        parts.append(
            "--intensities " + " ".join(f"{i:g}" for i in args.intensities)
        )
    if args.state_dir != ".fleet":
        parts.append(f"--state-dir {args.state_dir}")
    if args.point_timeout != 120.0:
        parts.append(f"--point-timeout {args.point_timeout:g}")
    parts.append("--resume")
    return " ".join(parts)


def _run_fleet_cli(spec, args) -> int:
    """Shared fleet driver for campaign subcommands.

    The merged report is the only thing written to stdout -- progress and
    fleet counters go to stderr, so ``--jobs 1`` and ``--jobs 4`` stdout
    stay byte-identical (the golden fleet test relies on this).
    """
    from repro.experiments.fleet import FleetInterrupted, run_fleet
    from repro.obs import fleet_summary

    resume_cmd = _resume_command(args)
    try:
        result = run_fleet(
            spec,
            jobs=max(1, args.jobs),
            state_dir=args.state_dir,
            resume=args.resume,
            point_timeout_s=args.point_timeout,
            resume_hint=resume_cmd,
            log=lambda msg: print(f"fleet: {msg}", file=sys.stderr),
        )
        print(result.render())
        print(fleet_summary(result.registry), file=sys.stderr)
        # Cross-journal delivered-quality rollup rides on stderr so fleet
        # stdout stays byte-identical across jobs counts (golden-pinned).
        from repro.experiments.rollup import load_campaigns, quality_summary_line

        quality = quality_summary_line(load_campaigns(args.state_dir))
        if quality:
            print(f"fleet: {quality}", file=sys.stderr)
    except FleetInterrupted as intr:
        print(
            f"fleet: interrupted -- {intr.completed}/{intr.total} points "
            f"safely journalled at {intr.journal}",
            file=sys.stderr,
        )
        print(f"fleet: resume with: {intr.resume_hint}", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        # An interrupt outside run_fleet's own windows (spec building,
        # the final render) risks nothing -- every journalled point is
        # already on disk; re-running with --resume just re-renders.
        print(f"fleet: interrupted; resume with: {resume_cmd}", file=sys.stderr)
        return 130
    if not result.ok():
        print(
            f"fleet: {len(result.failures)} point(s) failed permanently; "
            "see the FAILED POINTS section above",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fleet(args) -> int:
    from repro.experiments.fleet import fleet_status, fleet_watch

    if args.action == "status":
        print(fleet_status(args.state_dir))
        return 0
    if args.action == "watch":
        progress = fleet_watch(
            args.state_dir,
            campaign=args.campaign,
            interval_s=args.interval,
            follow=not args.once,
            # \r-overwrite one live line; argparse gave us a TTY-ish CLI.
            emit=lambda line: print(f"\r\x1b[2K{line}", end="", flush=True),
        )
        print()
        return 0 if progress is not None else 1
    if args.action == "rollup":
        from repro.experiments.rollup import rollup

        report = rollup(args.state_dir)
        print(report.to_json() if args.json else report.render())
        return 0
    return 2  # pragma: no cover - argparse restricts choices


def _cmd_bench(args) -> int:
    from repro.bench import (
        check_bench,
        compare_bench,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.compare:
        old_path, new_path = args.compare
        try:
            old = load_bench(old_path)
            new = load_bench(new_path)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read artifact: {exc}", file=sys.stderr)
            return 2
        for line in compare_bench(old, new):
            print(line)
        return 0

    payload = run_bench(quick=args.quick, repeats=args.repeats)
    if args.check:
        try:
            baseline = load_bench(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        regressions = check_bench(payload, baseline, tolerance=args.tolerance)
        for line in regressions:
            print(f"bench: REGRESSION: {line}", file=sys.stderr)
        verdict = "regressed" if regressions else "ok"
        for name, workload in sorted(payload["workloads"].items()):
            base = baseline.get("workloads", {}).get(name, {})
            print(
                f"{name:<16} {workload['events_per_sec']:>10} ev/s "
                f"(baseline {base.get('events_per_sec', '?')}) "
                f"{workload['wall_s']:.3f}s"
            )
        print(f"bench --check vs {args.baseline}: {verdict}")
        return 1 if regressions else 0
    write_bench(payload, args.out)
    for name, workload in sorted(payload["workloads"].items()):
        print(
            f"{name:<16} {workload['events_per_sec']:>10} ev/s  "
            f"{workload['packets_per_sec']:>8} pkt/s  "
            f"{workload['wall_s']:.3f}s wall"
        )
    print(f"wrote {args.out}")
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.tracing import run_traced, trace_stock_vs_ctmsp
    from repro.obs.export import write_chrome_trace

    if args.profile_only:
        runs = [
            run_traced(
                args.profile_only, seed=args.seed, duration_ns=args.seconds * SEC
            )
        ]
    else:
        runs = trace_stock_vs_ctmsp(
            seed=args.seed, duration_ns=args.seconds * SEC
        )
    write_chrome_trace(args.out, [(r.profile, r.recorder) for r in runs])
    for r in runs:
        print(
            f"{r.profile:<6} {len(r.recorder.spans)} spans in "
            f"{len(r.recorder.categories())} categories "
            f"({', '.join(r.recorder.categories())}), "
            f"{r.session.sink_tracker.delivered} packets delivered"
        )
    print(f"wrote {args.out} -- open with https://ui.perfetto.dev "
          "or chrome://tracing")
    return 0


def _cmd_metrics(args) -> int:
    from repro.experiments.reporting import histogram_summary_table
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import test_case_a, test_case_b
    from repro.obs.instrument import DataPathTracer
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.span import SpanRecorder

    factory = test_case_a if args.case == "a" else test_case_b
    scenario = factory(duration_ns=args.seconds * SEC, seed=args.seed)
    registry = MetricsRegistry()
    # The span tracer rides along purely to fill per-layer instruments; the
    # four-point pcat histograms are computed exactly as without it.
    tracer = DataPathTracer(SpanRecorder(), registry)
    result = run_scenario(scenario, tracer=tracer)
    if args.json:
        print(registry.to_json())
        return 0
    print(
        histogram_summary_table(
            result.histograms, f"Test Case {args.case.upper()}"
        )
    )
    print()
    print(registry.render_tables())
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        load_baseline,
        render_sarif,
        run_lint,
        run_lint_v2,
        write_baseline,
    )

    try:
        baseline = load_baseline(args.baseline) if args.baseline else {}
    except (ValueError, OSError) as exc:
        print(f"ctms-lint: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    if args.v2 or args.changed:
        report = run_lint_v2(
            args.paths,
            baseline,
            cache_path=None if args.no_cache else args.cache,
            changed_only=args.changed,
        )
    else:
        report = run_lint(args.paths, baseline)
    if args.write_baseline:
        write_baseline(report.findings, args.write_baseline)
        print(
            f"ctms-lint: wrote {len(report.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.sarif:
        from pathlib import Path

        Path(args.sarif).write_text(render_sarif(report))
        print(f"ctms-lint: wrote SARIF to {args.sarif}", file=sys.stderr)
    print(report.render_json() if args.json else report.render_text())
    return 0 if report.ok() else 1


def _cmd_quickstart(args) -> int:
    from repro.core.session import CTMSSession
    from repro.experiments.testbed import HostConfig, Testbed

    bed = Testbed(seed=args.seed)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(args.seconds * SEC)
    stats = session.stats
    print(
        f"delivered {stats.delivered} packets at "
        f"{stats.throughput_bytes_per_sec() / 1000:.1f} KB/s, "
        f"{session.sink_tracker.lost_packets} lost"
    )
    return 0


COMMANDS = {
    "fig5-2": (_cmd_fig5_2, "Figure 5-2: Test B transmit-path histogram"),
    "fig5-3": (_cmd_fig5_3, "Figure 5-3: Test A tx-to-rx histogram"),
    "fig5-4": (_cmd_fig5_4, "Figure 5-4: Test B tx-to-rx with ring insertions"),
    "histograms": (_cmd_histograms, "All seven histograms for one test case"),
    "baseline": (_cmd_baseline, "Stock UNIX relay at 16 vs 150 KB/s"),
    "copies": (_cmd_copies, "Copy counts for the three transfer paths"),
    "ablate": (_cmd_ablate, "Section 5.3 ablation matrix"),
    "quickstart": (_cmd_quickstart, "Minimal two-machine CTMS stream"),
    "chaos": (_cmd_chaos, "Chaos campaign: stock vs CTMSP under fault plans"),
    "fleet": (_cmd_fleet, "Fleet state: status / live watch / cross-journal rollup"),
    "bench": (_cmd_bench, "Perf trajectory: standard workloads vs BENCH_kernel.json"),
    "trace": (_cmd_trace, "Export a Chrome-trace/Perfetto JSON of a traced run"),
    "metrics": (_cmd_metrics, "Per-layer metrics registry for one test case"),
    "lint": (_cmd_lint, "ctms-lint: determinism & layering static analysis"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CTMS reproduction experiments (USENIX 1991)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (_fn, help_text) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "lint":
            p.add_argument("paths", nargs="+", help="files/directories to lint")
            p.add_argument(
                "--json",
                action="store_true",
                help="machine-readable output (file/line/rule/severity)",
            )
            p.add_argument(
                "--baseline",
                default=None,
                help="baseline JSON; baselined findings do not fail the run",
            )
            p.add_argument(
                "--write-baseline",
                default=None,
                metavar="PATH",
                help="write current findings to PATH as a new baseline and exit 0",
            )
            p.add_argument(
                "--v2",
                action="store_true",
                help="whole-program analysis: call-graph taint (CTMS111/112), "
                "cross-module unit dataflow (CTMS211/212), unused "
                "suppressions (CTMS001), incremental cache",
            )
            p.add_argument(
                "--changed",
                action="store_true",
                help="(implies --v2) only report the dirty frontier: files "
                "whose content changed since the cache plus their importers",
            )
            p.add_argument(
                "--sarif",
                default=None,
                metavar="PATH",
                help="also write findings as SARIF 2.1.0 to PATH",
            )
            p.add_argument(
                "--cache",
                default=".ctms-lint-cache.json",
                metavar="PATH",
                help="incremental-analysis cache file (default "
                ".ctms-lint-cache.json)",
            )
            p.add_argument(
                "--no-cache",
                action="store_true",
                help="analyze every file from scratch (results are identical; "
                "the cache only skips work)",
            )
            continue
        if name == "fleet":
            p.add_argument(
                "action",
                choices=["status", "watch", "rollup"],
                help="status: journalled campaign progress; watch: live "
                "progress line tailing the journal; rollup: aggregate "
                "every journal into survival/quality summaries",
            )
            p.add_argument(
                "--state-dir",
                default=".fleet",
                help="fleet journal root (default .fleet)",
            )
            p.add_argument(
                "--campaign",
                default=None,
                help="watch: select a campaign by directory-name substring "
                "(default: most recently appended journal)",
            )
            p.add_argument(
                "--interval",
                type=float,
                default=1.0,
                help="watch: seconds between journal polls (default 1.0)",
            )
            p.add_argument(
                "--once",
                action="store_true",
                help="watch: render one progress line and exit",
            )
            p.add_argument(
                "--json",
                action="store_true",
                help="rollup: machine-readable aggregate",
            )
            continue
        if name == "bench":
            p.add_argument(
                "--check",
                action="store_true",
                help="compare against the committed baseline; exit 1 on "
                "regression",
            )
            p.add_argument(
                "--compare",
                nargs=2,
                metavar=("OLD", "NEW"),
                default=None,
                help="print the trajectory between two bench artifacts "
                "(per-workload events/sec and hotspot deltas); runs no "
                "workloads",
            )
            p.add_argument(
                "--baseline",
                default="BENCH_kernel.json",
                help="baseline artifact for --check (default BENCH_kernel.json)",
            )
            p.add_argument(
                "--out",
                default="BENCH_kernel.json",
                help="artifact path to (re)write (default BENCH_kernel.json)",
            )
            p.add_argument(
                "--tolerance",
                type=float,
                default=0.25,
                help="--check fails when events/sec drops below this "
                "fraction of baseline (default 0.25)",
            )
            p.add_argument(
                "--quick",
                action="store_true",
                help="short workloads (the make-test smoke; noisier numbers)",
            )
            p.add_argument(
                "--repeats",
                type=int,
                default=None,
                help="samples per workload, best wall kept (default 3; "
                "1 under --quick)",
            )
            continue
        p.add_argument("--seed", type=int, default=1)
        if name == "fig5-4":
            p.add_argument("--minutes", type=int, default=6)
        elif name == "chaos":
            p.add_argument("--seconds", type=int, default=8)
        else:
            p.add_argument("--seconds", type=int, default=30)
        if name == "histograms":
            p.add_argument("case", choices=["a", "b"])
        if name == "trace":
            p.add_argument(
                "--out",
                default="trace.json",
                help="output path for the Chrome-trace JSON",
            )
            p.add_argument(
                "--profile-only",
                choices=["stock", "ctmsp"],
                default=None,
                help="trace a single profile instead of both side by side",
            )
        if name == "metrics":
            p.add_argument(
                "--case", choices=["a", "b"], default="a",
                help="measurement test case (default a)",
            )
            p.add_argument(
                "--json", action="store_true",
                help="machine-readable registry dump",
            )
        if name == "chaos":
            p.add_argument(
                "--scenario",
                choices=["survival", "failover"],
                default="survival",
                help="survival: one stream vs fault weather; failover: "
                "the session control plane vs a server crash",
            )
            p.add_argument(
                "--smoke",
                action="store_true",
                help="single fast intensity (for test suites / make chaos)",
            )
            p.add_argument(
                "--intensities",
                type=float,
                nargs="+",
                help="intensity sweep values (default: 0.5 1.0 2.0)",
            )
        if name in {"chaos", "ablate"}:
            p.add_argument(
                "--jobs",
                type=int,
                default=0,
                help="fleet mode: worker processes (1 = serial fleet; "
                "0 = legacy single-seed run)",
            )
            p.add_argument(
                "--seeds",
                type=int,
                default=1,
                help="fleet mode: number of consecutive seeds starting "
                "at --seed",
            )
            p.add_argument(
                "--resume",
                action="store_true",
                help="continue a killed campaign from its journal",
            )
            p.add_argument(
                "--state-dir",
                default=".fleet",
                help="fleet journal root (default .fleet)",
            )
            p.add_argument(
                "--point-timeout",
                type=float,
                default=120.0,
                help="seconds before the supervisor kills a hung worker",
            )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        print("available experiments:")
        for name, (_fn, help_text) in COMMANDS.items():
            print(f"  {name:<12} {help_text}")
        return 0
    fn, _help = COMMANDS[args.command]
    return fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
