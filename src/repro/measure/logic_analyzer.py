"""The logic analyzer (Section 5.2.2) -- the reference instrument.

"The use of a logic analyzer is the least obtrusive way of measuring the
values of interest" -- it captures signal edges at exact simulated time with
zero intrusion.  Its limitation, faithfully kept: bounded capture depth and
no histogramming ("we needed a complete histogram ... The logic analyzer was
not capable of this functionality"), which is why the paper built the PC/AT
tool and used the analyzer only to *calibrate* it.
"""

from __future__ import annotations

from typing import Callable, Optional


class LogicAnalyzer:
    """Edge capture with optional trigger and bounded depth."""

    def __init__(self, depth: int = 2048, name: str = "la") -> None:
        self.name = name
        self.depth = depth
        self.edges: list[int] = []
        self._armed = True
        self.trigger: Optional[Callable[[int], bool]] = None
        self.stats_overflowed = False

    def attach(self, listeners: list) -> None:
        """Clip the probe onto a signal's listener list (e.g. a VCA IRQ line)."""
        listeners.append(self.on_edge)

    def on_edge(self, t_ns: int) -> None:
        if not self._armed:
            return
        if self.trigger is not None and not self.edges:
            if not self.trigger(t_ns):
                return
        if len(self.edges) >= self.depth:
            self.stats_overflowed = True
            self._armed = False
            return
        self.edges.append(t_ns)

    # ------------------------------------------------------------------
    # the two measurements the paper made with it
    # ------------------------------------------------------------------
    def intervals(self) -> list[int]:
        """Edge-to-edge intervals (the VCA period stability measurement)."""
        return [b - a for a, b in zip(self.edges, self.edges[1:])]

    def max_deviation_from(self, nominal_ns: int) -> int:
        """Largest |interval - nominal| -- the paper's 500 ns result."""
        ivs = self.intervals()
        if not ivs:
            return 0
        return max(abs(iv - nominal_ns) for iv in ivs)
