"""Measurement instruments -- with their error models.

Section 5 of the paper is unusually candid that the *tools* have error
budgets, and spends pages characterizing them.  We model each tool with its
documented distortion so the reproduction's histograms inherit realistic
measurement noise:

* :mod:`~repro.measure.histogram` -- the histogram/statistics toolkit the
  analysis machines ran;
* :mod:`~repro.measure.pcat` -- the PC/AT parallel-port timestamper: 2 us
  16-bit clock, 50 Hz rollover-marker channel, polling-loop service delay
  (60 us worst case), and the two-PC store pipeline;
* :mod:`~repro.measure.tap` -- IBM's Trace and Analysis Program: on-ring
  capture of AC/FC bytes, length, and the first 96 bytes, with a capture-
  rate limitation;
* :mod:`~repro.measure.pseudo_driver` -- the in-kernel pseudo-driver tracer:
  122 us clock granularity and measurement intrusion;
* :mod:`~repro.measure.logic_analyzer` -- the reference instrument: exact
  edge capture, but no histogramming depth (the reason the paper built the
  PC/AT tool).
"""

from repro.measure.histogram import Histogram
from repro.measure.logic_analyzer import LogicAnalyzer
from repro.measure.pcat import PcatRecord, PcatTimestamper
from repro.measure.pseudo_driver import PseudoDriverTracer
from repro.measure.tap import TapMonitor

__all__ = [
    "Histogram",
    "LogicAnalyzer",
    "PcatRecord",
    "PcatTimestamper",
    "PseudoDriverTracer",
    "TapMonitor",
]
