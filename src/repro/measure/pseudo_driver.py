"""The pseudo device driver tracer (Section 5.2.1) -- the intrusive tool.

"We made the first attempt at time stamping events by using a pseudo device
driver. ... the clock granularity was only 122 microseconds.  All in all,
this was a poor method of recording data on inter-packet arrival and
departure times, but was extremely good at helping to find bugs."

Error model: timestamps quantize to the RT/PC's 122 us clock, and each
probe *intrudes* -- it charges CPU inside the measured path (the paper's
dilemma about running the recording procedure with interrupts enabled or
disabled).  Probes return their intrusion cost so the driver charges it
inline, exactly where the real procedure call sat.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware import calibration
from repro.obs.span import PointEvent, SpanRecorder
from repro.sim.engine import Simulator
from repro.sim.units import US

#: Cost of the recording procedure call inside the measured path.
PROBE_INTRUSION = 18 * US


class TraceEntry(PointEvent):
    """A pseudo-driver record: a :class:`PointEvent` whose timestamp is the
    122 us-quantized reading.  Kept as a named subclass so traces read as
    what the instrument wrote; ``quantized_ns`` is the historical accessor.
    """

    @property
    def quantized_ns(self) -> int:
        return self.t_ns


class PseudoDriverTracer:
    """In-kernel event recording through a pseudo device."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "pseudo",
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.entries: list[TraceEntry] = []
        self.enabled = True  # the open() flag in the Token Ring driver
        #: Optional shared span recorder: every entry is mirrored onto the
        #: common timeline so the paper's four points and the span tracer
        #: coexist in one trace.
        self.recorder = recorder

    def probe(self, point: str):
        """Build a driver probe for ``point``.

        Returns a callable usable as a driver probe: records the (quantized)
        time and returns the intrusion cost for the driver to charge.
        """

        def record(frame_or_no) -> int:
            if not self.enabled:
                return 0
            packet_no = getattr(
                getattr(frame_or_no, "payload", None), "packet_no", None
            )
            if packet_no is None:
                packet_no = frame_or_no if isinstance(frame_or_no, int) else -1
            granule = calibration.RTPC_CLOCK_GRANULARITY
            quantized = (self.sim.now // granule) * granule
            self.entries.append(TraceEntry(point, packet_no, quantized))
            if self.recorder is not None:
                self.recorder.point(point, packet_no, t_ns=quantized)
            return PROBE_INTRUSION

        return record

    def times(self, point: str) -> list[int]:
        return [e.quantized_ns for e in self.entries if e.point == point]

    def intervals(self, point: str) -> list[int]:
        ts = self.times(point)
        return [b - a for a, b in zip(ts, ts[1:])]
