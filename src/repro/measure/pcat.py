"""The PC/AT parallel-port timestamper (Section 5.2.3).

The paper's best tool: an IBM PC/AT with an eight-channel parallel input
board, time stamping strobed bytes inside an interrupt-handler polling loop
and shipping records to a second PC/AT for storage.

Error model, as the paper characterized it:

* the clock read is a **16-bit counter at 2 us resolution**, so absolute
  time must be reconstructed across rollovers (every 131 ms);
* a **50 Hz marker** wired to the eighth channel guarantees at least one
  record between any two rollovers;
* the polling loop contributes a **service delay** between the strobe edge
  and the clock read: 12 us best case, **60 us worst case**, plus up to one
  more loop worth when the outbound transfer to the second PC/AT is in
  progress -- together producing the "120 microsecond spread on both sides"
  the paper measured against the VCA's (near-perfect) IRQ line;
* edges on multiple channels inside one loop iteration share one clock
  value (the loop reads all pending ports, then queues one record).

Raw records are what the tool stores; :meth:`PcatTimestamper.reconstruct`
is the paper's offline analysis program, turning 16-bit clock values back
into absolute times using the marker channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware import calibration
from repro.hardware.parallel_port import ParallelPort
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

#: Channel index carrying the 50 Hz rollover marker.
MARKER_CHANNEL = 7
#: Clock counts per rollover.
CLOCK_MODULUS = 1 << calibration.PCAT_CLOCK_BITS


@dataclass(frozen=True)
class PcatRecord:
    """One stored record: which channels fired, the clock, their bytes."""

    channel_bits: int
    clock16: int
    values: tuple[Optional[int], ...]  # per channel, None if not latched

    def has(self, channel: int) -> bool:
        return bool(self.channel_bits & (1 << channel))


class PcatTimestamper:
    """The two-PC/AT measurement rig."""

    CHANNELS = 8

    def __init__(self, sim: Simulator, rng: RandomStreams, name: str = "pcat") -> None:
        self.sim = sim
        self.name = name
        self._rng = rng.get(name)
        self.records: list[PcatRecord] = []
        self._pending: dict[int, int] = {}  # channel -> latched byte
        self._pending_deadline: Optional[int] = None
        self._marker_running = False
        self.stats_edges = 0
        self.stats_records = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, channel: int, port: ParallelPort) -> None:
        """Cable a machine's parallel output port to input ``channel``."""
        if not 0 <= channel < self.CHANNELS:
            raise ValueError(f"channel {channel} out of range")
        if channel == MARKER_CHANNEL:
            raise ValueError("channel 7 is reserved for the 50 Hz marker")
        port.sink = lambda t, v, ch=channel: self._edge(ch, t, v)

    def start(self) -> None:
        """Start the 50 Hz rollover marker."""
        if not self._marker_running:
            self._marker_running = True
            self._marker_tick()

    def stop(self) -> None:
        self._marker_running = False

    def _marker_tick(self) -> None:
        if not self._marker_running:
            return
        self._edge(MARKER_CHANNEL, self.sim.now, 1)
        self.sim.schedule_fast(calibration.PCAT_ROLLOVER_MARKER_PERIOD, self._marker_tick)

    # ------------------------------------------------------------------
    # capture (the interrupt-handler polling loop)
    # ------------------------------------------------------------------
    def _edge(self, channel: int, t_ns: int, value: int) -> None:
        self.stats_edges += 1
        self._pending[channel] = value & 0xFF
        # The loop notices the interrupt bit on its next poll; edges landing
        # inside the same service window coalesce into one record.
        if self._pending_deadline is None:
            read_at = t_ns + self._service_delay()
            self._pending_deadline = read_at
            self.sim.at(read_at, self._loop_reads)

    def _service_delay(self) -> int:
        base = self._rng.randint(
            calibration.PCAT_LOOP_BEST_CASE, calibration.PCAT_LOOP_WORST_CASE
        )
        # One extra loop's worth when the (fully handshaked) transfer to the
        # second PC/AT happens to be in progress.
        if self._rng.random() < 0.25:
            base += self._rng.randint(0, calibration.PCAT_LOOP_WORST_CASE)
        return base

    def _loop_reads(self) -> None:
        self._pending_deadline = None
        if not self._pending:
            return
        bits = 0
        values: list[Optional[int]] = [None] * self.CHANNELS
        for ch, v in self._pending.items():
            bits |= 1 << ch
            values[ch] = v
        self._pending.clear()
        clock16 = (self.sim.now // calibration.PCAT_CLOCK_RESOLUTION) % CLOCK_MODULUS
        self.stats_records += 1
        self.records.append(PcatRecord(bits, clock16, tuple(values)))

    # ------------------------------------------------------------------
    # offline analysis (what ran on the second PC/AT's data)
    # ------------------------------------------------------------------
    def reconstruct(self) -> dict[int, list[tuple[int, int]]]:
        """Rebuild absolute times: channel -> [(time_ns, value), ...].

        Walks the record stream accumulating rollovers whenever the 16-bit
        clock goes backwards; the 50 Hz marker guarantees the stream never
        skips a whole rollover silently.
        """
        out: dict[int, list[tuple[int, int]]] = {c: [] for c in range(self.CHANNELS)}
        rollovers = 0
        prev_clock: Optional[int] = None
        for rec in self.records:
            if prev_clock is not None and rec.clock16 < prev_clock:
                rollovers += 1
            prev_clock = rec.clock16
            abs_ns = (
                rollovers * CLOCK_MODULUS + rec.clock16
            ) * calibration.PCAT_CLOCK_RESOLUTION
            for ch in range(self.CHANNELS):
                if rec.has(ch):
                    out[ch].append((abs_ns, rec.values[ch] or 0))
        return out

    def channel_times(self, channel: int) -> list[int]:
        """Reconstructed absolute times for one channel."""
        return [t for t, _v in self.reconstruct()[channel]]


def match_by_packet_number(
    earlier: list[tuple[int, int]], later: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Pair events across two channels by their 7-bit packet numbers.

    Both lists are time-ordered ``(time_ns, wire_number)`` streams from
    :meth:`PcatTimestamper.reconstruct`.  Returns ``(delta_ns, wire_number)``
    per matched pair: for each later-channel event, the most recent
    earlier-channel event with the same 7-bit number (skipping earlier
    events whose packets never reached the later point -- losses).
    """
    deltas: list[tuple[int, int]] = []
    i = 0
    for t_later, number in later:
        # Advance through earlier events at or before this one, remembering
        # the latest with a matching number.
        match: Optional[int] = None
        while i < len(earlier) and earlier[i][0] <= t_later:
            if earlier[i][1] == number:
                match = earlier[i][0]
                i += 1
                break
            i += 1
        if match is not None:
            deltas.append((t_later - match, number))
    return deltas
