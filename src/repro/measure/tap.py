"""IBM's Trace and Analysis Program (TAP) -- the ring monitor.

Section 5: "This tool allowed for the recording and time stamping of all
packets seen on the network, including all MAC frames.  The tool also
recorded the first Token Ring adapter's buffer of actual packet data (up to
96 bytes) as well as the Token Ring's Access Control byte, Frame Control
byte and total length.  However, there are limitations of the tool's ability
to record all packets."

The model records exactly those fields and reproduces the capture
limitation as a minimum inter-record gap: back-to-back frames arriving
faster than the tool's record path can drain are lost from the *trace*
(never from the ring).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.core.ctmsp import CTMSPPacket
from repro.obs.span import SpanRecorder
from repro.ring.frames import Frame
from repro.ring.network import TokenRing
from repro.sim.engine import Simulator
from repro.sim.units import US


@dataclass(frozen=True)
class TapRecord:
    """One captured frame, with the fields TAP stored."""

    timestamp_ns: int
    access_control: int
    frame_control: int
    total_length: int
    data_prefix: bytes  # up to 96 bytes
    protocol: str
    status: str  # "wire" or "lost" (a purge ate it)
    packet_no: int | None  # decoded CTMSP packet number, if applicable


class TapMonitor:
    """A TAP station attached promiscuously to the ring."""

    #: Capture window per frame.
    CAPTURE_BYTES = 96
    #: Minimum gap between records the capture path can sustain.
    MIN_RECORD_GAP = 120 * US

    def __init__(
        self,
        sim: Simulator,
        ring: TokenRing,
        name: str = "tap",
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.records: list[TapRecord] = []
        self._last_record_at = -(10**9)
        self.stats_missed = 0
        #: Optional shared span recorder: captures mirror onto the common
        #: timeline as instants on the ``<name>/capture`` track.
        self.recorder = recorder
        ring.monitors.append(self._on_wire)

    def _on_wire(self, frame: Frame, t_ns: int, status: str) -> None:
        if t_ns - self._last_record_at < self.MIN_RECORD_GAP:
            self.stats_missed += 1
            return
        self._last_record_at = t_ns
        packet_no = None
        if isinstance(frame.payload, CTMSPPacket):
            packet_no = frame.payload.packet_no
        self.records.append(
            TapRecord(
                timestamp_ns=t_ns,
                access_control=frame.access_control_byte(),
                frame_control=frame.frame_control_byte(),
                total_length=frame.wire_bytes,
                data_prefix=frame.capture_prefix(self.CAPTURE_BYTES),
                protocol=frame.protocol,
                status=status,
                packet_no=packet_no,
            )
        )
        if self.recorder is not None:
            self.recorder.instant(
                f"tap {frame.protocol}"
                + (f" #{packet_no}" if packet_no is not None else ""),
                "tap",
                f"{self.name}/capture",
                t_ns=t_ns,
                status=status,
                total_length=frame.wire_bytes,
            )

    # ------------------------------------------------------------------
    # the analyses the paper ran on TAP traces
    # ------------------------------------------------------------------
    def ctmsp_records(self) -> list[TapRecord]:
        return [r for r in self.records if r.protocol == "ctmsp"]

    def detect_ctmsp_anomalies(self) -> dict[str, int]:
        """Out-of-order and lost CTMSP packets, as the paper hunted them."""
        out_of_order = 0
        lost = 0
        prev: int | None = None
        for rec in self.ctmsp_records():
            if rec.status == "lost":
                lost += 1
                continue
            n = rec.packet_no
            if n is None:
                continue
            if prev is not None:
                if n < prev:
                    out_of_order += 1
                elif n > prev + 1:
                    lost += n - prev - 1
            prev = n
        return {"out_of_order": out_of_order, "lost": lost}

    def utilization_by_class(self, elapsed_ns: int) -> dict[str, float]:
        """Wire share per frame class over the trace window."""
        by_class: dict[str, int] = {}
        for rec in self.records:
            wire_ns = rec.total_length * 8 * 250
            by_class[rec.protocol] = by_class.get(rec.protocol, 0) + wire_ns
        return {k: v / elapsed_ns for k, v in by_class.items()}

    def size_census(self) -> dict[str, list[int]]:
        """Frame sizes per protocol -- the paper's three-size observation."""
        out: dict[str, list[int]] = {}
        for rec in self.records:
            out.setdefault(rec.protocol, []).append(rec.total_length)
        return out
