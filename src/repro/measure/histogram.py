"""Histogram and statistics toolkit.

The paper's central analysis artifact: "Histograms as well as means and
standard deviations were computed for the inter-packet departure and arrival
times from this data."  This module computes the same summaries, plus the
paper's idioms for describing a distribution -- "68% of the data points
within 500 microseconds of 2600 microseconds" -- as first-class queries, and
renders ASCII plots for the benchmark reports.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.sim.units import US, format_time


class Histogram:
    """A collection of time samples (integer nanoseconds)."""

    def __init__(
        self,
        samples: Optional[Iterable[int]] = None,
        name: str = "",
        bin_width: int = 100 * US,
    ) -> None:
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.name = name
        self.bin_width = bin_width
        self.samples: list[int] = list(samples) if samples is not None else []

    def add(self, value: int) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        return sum(self.samples) / len(self.samples)

    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean()
        var = sum((x - mu) ** 2 for x in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    def min(self) -> int:
        return min(self.samples)

    def max(self) -> int:
        return max(self.samples)

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile, 0 <= p <= 100."""
        if not 0 <= p <= 100:
            raise ValueError("percentile out of range")
        if not self.samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    # ------------------------------------------------------------------
    # the paper's distribution-description idioms
    # ------------------------------------------------------------------
    def fraction_within(self, center: int, halfwidth: int) -> float:
        """Fraction of samples within ``halfwidth`` of ``center``.

        The phrasing of Figure 5-2's caption: "68% of the data points within
        500 microseconds of 2600 microseconds".
        """
        if not self.samples:
            return 0.0
        hits = sum(1 for x in self.samples if abs(x - center) <= halfwidth)
        return hits / len(self.samples)

    def fraction_between(self, lo: int, hi: int) -> float:
        """Fraction of samples in the closed interval [lo, hi]."""
        if not self.samples:
            return 0.0
        hits = sum(1 for x in self.samples if lo <= x <= hi)
        return hits / len(self.samples)

    def count_between(self, lo: int, hi: int) -> int:
        return sum(1 for x in self.samples if lo <= x <= hi)

    def primary_mode(self) -> int:
        """Center of the fullest bin -- where a histogram's main peak sits."""
        bins = self.bins()
        if not bins:
            raise ValueError(f"histogram {self.name!r} is empty")
        best = max(bins.items(), key=lambda kv: kv[1])
        return best[0] * self.bin_width + self.bin_width // 2

    def modes(self, min_separation: int, min_fraction: float = 0.05) -> list[int]:
        """Local maxima at least ``min_separation`` apart, for bimodality tests.

        A bin is a mode if it is a local maximum holding at least
        ``min_fraction`` of all samples.
        """
        bins = self.bins()
        if not bins:
            return []
        total = len(self.samples)
        indices = sorted(bins)
        peaks = []
        for i in indices:
            height = bins[i]
            if height / total < min_fraction:
                continue
            left = bins.get(i - 1, 0)
            right = bins.get(i + 1, 0)
            if height >= left and height >= right:
                peaks.append((height, i))
        peaks.sort(reverse=True)
        chosen: list[int] = []
        for _height, i in peaks:
            center = i * self.bin_width + self.bin_width // 2
            if all(abs(center - c) >= min_separation for c in chosen):
                chosen.append(center)
        return sorted(chosen)

    # ------------------------------------------------------------------
    # binning / rendering
    # ------------------------------------------------------------------
    def bins(self) -> dict[int, int]:
        """Map of bin index -> sample count."""
        out: dict[int, int] = {}
        for x in self.samples:
            out[x // self.bin_width] = out.get(x // self.bin_width, 0) + 1
        return out

    def to_ascii(self, width: int = 60, max_rows: int = 40) -> str:
        """Render the histogram the way the paper's figures look."""
        bins = self.bins()
        if not bins:
            return f"{self.name}: (empty)"
        lo, hi = min(bins), max(bins)
        if hi - lo + 1 > max_rows:
            # Coarsen to fit: merge adjacent bins.
            merge = math.ceil((hi - lo + 1) / max_rows)
            coarse: dict[int, int] = {}
            for i, n in bins.items():
                coarse[(i - lo) // merge] = coarse.get((i - lo) // merge, 0) + n
            rows = sorted(coarse.items())
            label = lambda j: format_time((lo + j * merge) * self.bin_width)
        else:
            rows = [(i - lo, bins.get(i, 0)) for i in range(lo, hi + 1)]
            label = lambda j: format_time((lo + j) * self.bin_width)
        peak = max(n for _j, n in rows)
        lines = [f"{self.name}  (n={self.count})"]
        for j, n in rows:
            bar = "#" * max(0, round(n / peak * width))
            lines.append(f"{label(j):>12} |{bar} {n if n else ''}")
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        """The numbers the paper reports for every histogram."""
        return {
            "count": self.count,
            "mean_us": self.mean() / US,
            "std_us": self.std() / US,
            "min_us": self.min() / US,
            "max_us": self.max() / US,
        }

    def to_csv(self) -> str:
        """Binned counts as CSV (``bin_start_us,count``), for replotting."""
        lines = ["bin_start_us,count"]
        for index, count in sorted(self.bins().items()):
            lines.append(f"{index * self.bin_width / US:.1f},{count}")
        return "\n".join(lines) + "\n"
