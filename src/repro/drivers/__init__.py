"""Device drivers.

* :mod:`~repro.drivers.token_ring` -- the Token Ring driver in both its
  stock form and with the paper's CTMS modifications (driver-level packet
  priority, ring media priority, precomputed headers, fixed DMA buffers in
  IO Channel Memory, direct-delivery classification at the ARP/IP split
  point);
* :mod:`~repro.drivers.vca` -- the Voice Communications Adapter driver with
  the paper's new ``ioctl`` calls, acting as CTMS source (packet builder in
  its interrupt handler) or sink (direct-delivery target);
* :mod:`~repro.drivers.pseudo_trace` -- the pseudo device driver the paper
  first used for in-kernel timestamping (Section 5.2.1).
"""

from repro.drivers.token_ring import TokenRingDriver, TokenRingDriverConfig
from repro.drivers.vca import VCADriver, VCADriverConfig

__all__ = [
    "TokenRingDriver",
    "TokenRingDriverConfig",
    "VCADriver",
    "VCADriverConfig",
]
