"""A disk-backed CTMS source: the media file server role.

Section 1's deployment story ("The source machine must read a disc and
redirect the data flow onto the local area network") with the paper's
machinery: data is read ahead from the disk by DMA into IO Channel Memory
staging buffers, a stable pacing timer fires every 12 ms, and each tick
hands one CTMSP packet to the Token Ring driver *by pointer exchange* --
the Section 2 extension -- so the CPU never touches the media bytes at all.

Under-run behaviour is explicit: if the read-ahead pool cannot cover a
tick (a competing disk user caused a seek storm), the period is skipped and
counted, exactly the "discernible glitch" a listener would hear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.ctmsp import CTMSP_HEADER_BYTES, CTMSPPacket, PrecomputedHeader
from repro.hardware import calibration
from repro.hardware.cpu import Exec
from repro.hardware.disk import DiskAdapter
from repro.hardware.memory import Region
from repro.sim.units import US
from repro.unix.kernel import Kernel


@dataclass
class DiskSourceConfig:
    """Streaming parameters for one disk-backed stream."""

    #: Information-field bytes per CTMSP packet.
    packet_bytes: int = calibration.CTMSP_PACKET_BYTES
    #: Pacing period (the prototype's 12 ms).
    period: int = calibration.VCA_INTERRUPT_PERIOD
    #: Bytes fetched per disk read.
    read_chunk: int = 16_384
    #: Issue the next read when buffered data drops below this.
    readahead_low_water: int = 24_000
    #: Stop reading ahead beyond this (staging memory budget).
    readahead_high_water: int = 64_000
    stream_id: int = 2


class DiskStreamSource:
    """Stream a media file from disk onto the ring as CTMSP."""

    def __init__(
        self,
        kernel: Kernel,
        disk: DiskAdapter,
        tr_driver: Any,
        config: Optional[DiskSourceConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.cpu = kernel.cpu
        self.disk = disk
        self.tr_driver = tr_driver
        self.config = config or DiskSourceConfig()
        if self.config.packet_bytes <= CTMSP_HEADER_BYTES:
            raise ValueError("packet too small for the CTMSP header")
        self.header: Optional[PrecomputedHeader] = None
        self._dst_device = 0
        self._running = False
        self._pacing = False
        self._buffered = 0
        self._outstanding_bytes = 0
        self._file_offset = 0
        self._next_packet_no = 0
        self._staging_region = (
            Region.IO_CHANNEL
            if kernel.machine.memory.has_io_channel_memory
            else Region.SYSTEM
        )
        # --- statistics ---
        self.stats_packets_sent = 0
        self.stats_underruns = 0
        self.stats_disk_reads = 0

    # ------------------------------------------------------------------
    # setup (mirrors the VCA driver's CTMS_BIND ioctl)
    # ------------------------------------------------------------------
    def bind(self, dst: str, dst_device: int) -> Generator:
        """Compute the Token Ring header once for the connection."""
        yield Exec(self.tr_driver.compute_header_cost())
        self.header = PrecomputedHeader(
            src=self.tr_driver.adapter.address, dst=dst
        )
        self._dst_device = dst_device
        return self.header

    def start(self) -> None:
        """Begin read-ahead; pacing starts once the prefill is in place.

        Like any real player, the source fills its read-ahead pool to the
        low-water mark before the first packet leaves -- otherwise the
        first few periods would under-run while the disk spins up.
        """
        if self.header is None:
            raise RuntimeError("disk source started before bind()")
        if self._running:
            return
        self._running = True
        self._pacing = False
        self._fill_readahead()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # read-ahead
    # ------------------------------------------------------------------
    def _fill_readahead(self) -> None:
        """Keep buffered + in-flight data at the high-water mark.

        Stream reads carry disk priority 1 so batch I/O on the same spindle
        cannot starve the media stream -- the scheduling discipline a
        continuous-media server needs.
        """
        if not self._running:
            return
        while (
            self._buffered + self._outstanding_bytes
            < self.config.readahead_high_water
        ):
            self._outstanding_bytes += self.config.read_chunk
            self.stats_disk_reads += 1
            offset = self._file_offset
            self._file_offset += self.config.read_chunk
            self.disk.read(
                offset,
                self.config.read_chunk,
                self._staging_region,
                self._read_done_handler,
                priority=1,
            )

    def _read_done_handler(self) -> Generator:
        """Disk completion interrupt: account the staged chunk."""
        yield Exec(40 * US)
        self._outstanding_bytes -= self.config.read_chunk
        self._buffered += self.config.read_chunk
        if not self._pacing and self._buffered >= self.config.readahead_low_water:
            self._pacing = True
            self.sim.schedule_fast(self.config.period, self._tick)
        if self._buffered < self.config.readahead_low_water:
            self._fill_readahead()

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        self.cpu.raise_irq(
            calibration.SPL_VCA, self._tick_handler, name="disk-stream"
        )
        self.sim.schedule_fast(self.config.period, self._tick)

    def _tick_handler(self) -> Generator:
        payload = self.config.packet_bytes - CTMSP_HEADER_BYTES
        if self._buffered < payload:
            # Read-ahead ran dry: one audible period lost.
            self.stats_underruns += 1
            yield Exec(20 * US)
            self._fill_readahead()
            return
        self._buffered -= payload
        packet = CTMSPPacket(
            stream_id=self.config.stream_id,
            packet_no=self._next_packet_no,
            dst_device=self._dst_device,
            data_bytes=payload,
            header=self.header,
            born_at=self.sim.now,
        )
        self._next_packet_no += 1
        yield Exec(60 * US)  # packetization bookkeeping
        self.stats_packets_sent += 1
        frame = packet.to_frame(
            ring_priority=self.tr_driver.config.ctmsp_ring_priority
        )
        # Pointer passing: the data already sits in a DMA-reachable staging
        # buffer; no chain, no driver copy.
        yield from self.tr_driver.output(None, frame)
        if self._buffered < self.config.readahead_low_water:
            self._fill_readahead()
