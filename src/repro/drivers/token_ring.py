"""The Token Ring device driver.

This is where the paper's Section 3 and 4 modifications live, each behind a
configuration switch so that the Section 5.3 toggle matrix can be measured:

* **fixed DMA buffers in IO Channel Memory** vs system memory
  (``use_io_channel_memory``);
* **packet priority within the driver** -- CTMSP packets queue ahead of ARP
  and IP (``ctmsp_priority_queueing``);
* **Token Ring media priority** for CTMSP frames (``ctmsp_ring_priority``);
* **the CTMSP split point** -- "Adding code to the split point of ARP and IP
  packets in order to split out the CTMSP packets and correctly handle
  them": a registered classifier decides, while the packet is in (or just
  out of) the fixed DMA buffer, whether it is delivered directly to the sink
  device driver;
* the receive-side copy policy: copy header+data into mbufs before
  classification (the stock discipline, what Test Cases A and B ran) vs
  examining the packet while still in the fixed DMA buffer (the paper's
  listed alternative).

The transmit path keeps the paper's single fixed transmit DMA buffer: a
packet occupies it from the start of the copy until the transmit-complete
interrupt, which is exactly the head-of-line blocking that produces the
second mode of Figure 5-2 when foreign traffic shares the driver.

All driver entry points are generators executed inside the calling CPU frame
(a VCA interrupt handler, the transmit-complete handler, or a user-context
protocol path) so that every microsecond is charged to the right context.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.hardware import calibration
from repro.hardware.cpu import Exec, RaiseSpl, SetSpl
from repro.hardware.memory import Region
from repro.hardware.token_ring_adapter import TokenRingAdapter
from repro.ring.frames import Frame
from repro.sim.units import US
from repro.unix.copy import cpu_copy_at_rate
from repro.unix.kernel import Kernel
from repro.unix.mbuf import MbufChain, MbufExhausted

#: Measurement point names (Section 5.2): P3 fires "immediately after the
#: packet is copied into the fixed DMA buffer and immediately before the
#: Token Ring adapter is given the *transmit* command"; P4 "immediately
#: after the received packet is determined to be a CTMSP packet".
PROBE_PRE_TRANSMIT = "p3"
PROBE_RX_CLASSIFIED = "p4"

#: A probe callback: fn(frame) -> extra CPU ns to charge inline (or None).
ProbeFn = Callable[[Frame], Optional[int]]

#: Protocol tag of CTMS session-control frames (setup request/ack).  They
#: ride the same split point as CTMSP data but dispatch to the driver's
#: ``control_input`` hook instead of the sink handles.
CTMS_CONTROL_PROTOCOL = "ctms-ctl"

#: Exec ops are immutable (only ``work_ns`` is read), so the fixed per-packet
#: costs share module-level instances instead of allocating one per packet.
_EXEC_TX_CODE = Exec(calibration.TR_DRIVER_TX_CODE)
_EXEC_PTR_PASS = Exec(20 * US)
_EXEC_TX_COMPLETE = Exec(30 * US)
_EXEC_PURGE = Exec(40 * US)
_EXEC_RX_CODE = Exec(calibration.TR_DRIVER_RX_CODE)
_EXEC_RX_CLASSIFY = Exec(calibration.TR_DRIVER_RX_CLASSIFY_CODE)


@dataclass
class TokenRingDriverConfig:
    """The Section 5.3 toggle matrix, transmit and receive sides."""

    #: Fixed DMA buffers in IO Channel Memory (True) or system memory.
    use_io_channel_memory: bool = True
    #: CTMSP packets queue ahead of ARP/IP inside the driver.
    ctmsp_priority_queueing: bool = True
    #: Token Ring media priority used for CTMSP frames (0 disables).
    ctmsp_ring_priority: int = 4
    #: Transmitter copies only the header into the fixed DMA buffer (the
    #: Section 5.3 variant where the data is already resident there) rather
    #: than header and data.
    tx_copy_header_only: bool = False
    #: Receiver copies header+data from the fixed DMA buffer into mbufs
    #: before classification (stock discipline); False examines the packet
    #: in place.
    rx_copy_to_mbufs: bool = True
    #: Host receive DMA buffers.
    rx_buffer_count: int = 2
    #: Enable the hypothetical Ring-Purge retransmission (Section 4).
    purge_retransmit: bool = False


@dataclass(slots=True)
class _TxJob:
    chain: Optional[MbufChain]
    frame: Frame
    enqueued_at: int


class TokenRingDriver:
    """One machine's Token Ring driver."""

    def __init__(
        self,
        kernel: Kernel,
        adapter: TokenRingAdapter,
        config: Optional[TokenRingDriverConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.cpu = kernel.cpu
        self.adapter = adapter
        self.config = config or TokenRingDriverConfig()
        if (
            self.config.use_io_channel_memory
            and not kernel.machine.memory.has_io_channel_memory
        ):
            raise ValueError(
                "driver configured for IO Channel Memory on a machine "
                "without the card"
            )
        self.buffer_region = (
            Region.IO_CHANNEL
            if self.config.use_io_channel_memory
            else Region.SYSTEM
        )
        adapter.rx_buffer_region = self.buffer_region
        adapter.on_tx_complete = self._tx_complete_handler
        adapter.on_rx_frame = self._rx_handler
        adapter.purge_interrupt_mode = self.config.purge_retransmit
        if self.config.purge_retransmit:
            adapter.on_purge_detected = self._purge_handler

        self._ctmsp_q: deque[_TxJob] = deque()
        self._llc_q: deque[_TxJob] = deque()
        self._tx_busy = False
        #: Frame currently occupying the fixed transmit DMA buffer.
        self._tx_current: Optional[Frame] = None

        #: Receive upcall for non-CTMSP LLC traffic, installed by the
        #: protocol stack: fn(frame, chain) -> generator.
        self.llc_input: Optional[
            Callable[[Frame, Optional[MbufChain]], Generator]
        ] = None
        #: CTMSP direct-delivery handles, installed via the VCA driver's
        #: ioctls (Section 2's function-handle exchange).  A host may serve
        #: several sink devices -- the CTMSP header's destination device
        #: number exists precisely so the split point can demultiplex --
        #: so handles are a list tried in registration order.
        self._ctms_sinks: list[
            tuple[
                Callable[[Frame], bool],
                Callable[[Frame, Region, Optional[MbufChain]], Generator],
            ]
        ] = []

        #: CTMS control-frame upcall, installed by
        #: :class:`repro.core.session.CTMSSession`: a generator handler run
        #: inside the receive interrupt frame (it may transmit a reply via
        #: :meth:`output` but must not Wait).
        self.control_input: Optional[Callable[[Frame], Generator]] = None

        self.probes: dict[str, list[ProbeFn]] = {}

        # Memoized per-size Exec ops for the per-packet fixed costs (Exec is
        # immutable, so frames of the same size share one instance): DMA-
        # buffer copies by byte count, mbuf-allocation charges by chain size.
        self._txcopy_execs: dict[int, Exec] = {}
        self._rxcopy_execs: dict[int, Exec] = {}
        self._alloc_execs: dict[int, Exec] = {}

        # --- statistics ---
        self.stats_tx_packets = 0
        self.stats_tx_queue_peak = 0
        self.stats_rx_ctmsp = 0
        self.stats_rx_llc = 0
        self.stats_rx_control = 0
        self.stats_rx_control_unclaimed = 0
        self.stats_rx_dropped_no_mbufs = 0
        self.stats_rx_ctmsp_unclaimed = 0
        self.stats_retransmits = 0

    # ------------------------------------------------------------------
    # probes (measurement instrumentation)
    # ------------------------------------------------------------------
    def add_probe(self, point: str, fn: ProbeFn) -> None:
        """Attach a measurement probe at ``point`` (p3 or p4)."""
        self.probes.setdefault(point, []).append(fn)

    def _fire_probe(self, point: str, frame: Frame) -> Generator:
        for fn in self.probes.get(point, ()):
            extra = fn(frame)
            if extra:
                yield Exec(extra)

    # ------------------------------------------------------------------
    # header computation
    # ------------------------------------------------------------------
    def compute_header_cost(self) -> int:
        """CPU cost of computing a Token Ring header (charged by callers).

        IP pays this per packet ("IP requests the Token Ring header be
        recomputed for each packet transmitted"); CTMSP pays it once per
        connection.
        """
        return calibration.TR_HEADER_COMPUTE_COST

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def output(self, chain: Optional[MbufChain], frame: Frame) -> Generator:
        """Queue a packet for transmission (``yield from`` in caller frame).

        ``chain`` is the mbuf chain holding the information field; it is
        freed once copied into the fixed DMA buffer.  CTMSP frames go to the
        priority queue when ``ctmsp_priority_queueing`` is on.
        """
        old = yield RaiseSpl(calibration.SPL_NET)
        job = _TxJob(chain, frame, self.sim.now)
        # Session-control frames (setup request/ack) ride the CTMSP queue:
        # they already carry the CTMSP ring priority on the wire, and host
        # queueing must match or a standing media backlog starves connection
        # setup behind hundreds of milliseconds of data frames.
        is_ctms = frame.protocol in ("ctmsp", CTMS_CONTROL_PROTOCOL)
        if is_ctms and self.config.ctmsp_priority_queueing:
            self._ctmsp_q.append(job)
        else:
            self._llc_q.append(job)
        depth = len(self._ctmsp_q) + len(self._llc_q)
        if depth > self.stats_tx_queue_peak:
            self.stats_tx_queue_peak = depth
        if not self._tx_busy:
            yield from self._start_next_tx()
        yield SetSpl(old)

    def _start_next_tx(self) -> Generator:
        """Copy the next queued packet into the fixed DMA buffer and send it.

        Runs inside whatever frame noticed the buffer free (the enqueuer or
        the transmit-complete handler) -- this is why, during catch-up, the
        copies themselves appear in the point-2-to-point-3 interval of later
        packets (Figure 5-2's second mode).
        """
        job = self._dequeue()
        if job is None:
            return
        self._tx_busy = True
        self._tx_current = job.frame
        yield _EXEC_TX_CODE
        if job.chain is None:
            # Pointer-passing transfer (the Section 2 extension): the source
            # driver staged the data in a DMA-reachable buffer already; the
            # drivers exchange buffer pointers instead of copying.
            yield _EXEC_PTR_PASS
        else:
            copy_bytes = (
                min(32, job.frame.info_bytes)
                if self.config.tx_copy_header_only
                else job.frame.info_bytes
            )
            # Fixed DMA buffers are mapped uncached, so this copy costs the
            # paper's 1 us/byte whichever memory region holds the buffer.
            if copy_bytes:
                self.kernel.ledger.record_cpu(
                    Region.SYSTEM, self.buffer_region, copy_bytes
                )
                ex = self._txcopy_execs.get(copy_bytes)
                if ex is None:
                    ex = self._txcopy_execs[copy_bytes] = Exec(
                        calibration.CPU_COPY_SYS_TO_IOCM_NS_PER_BYTE
                        * copy_bytes
                    )
                yield ex
            job.chain.free()
            job.chain = None
        if self.probes:
            yield from self._fire_probe(PROBE_PRE_TRANSMIT, job.frame)
        self.stats_tx_packets += 1
        self.adapter.command_transmit(job.frame, self.buffer_region)

    def _dequeue(self) -> Optional[_TxJob]:
        if self._ctmsp_q:
            return self._ctmsp_q.popleft()
        if self._llc_q:
            return self._llc_q.popleft()
        return None

    def _tx_complete_handler(self) -> Generator:
        """Transmit-complete interrupt: free the buffer, start the next."""
        yield _EXEC_TX_COMPLETE
        old = yield RaiseSpl(calibration.SPL_NET)
        self._tx_busy = False
        self._tx_current = None
        yield from self._start_next_tx()
        yield SetSpl(old)

    def _purge_handler(self) -> Generator:
        """Hypothetical purge interrupt: retransmit from the fixed buffer.

        Section 4: "the transmitter can attempt to correct for a possible
        lost packet by retransmitting the last packet that is still in the
        fixed DMA buffer.  The receiver, in this case, might need to ignore
        a duplicate packet."  The data is still in the buffer, so no copy is
        paid -- only the command reissue.
        """
        yield _EXEC_PURGE
        old = yield RaiseSpl(calibration.SPL_NET)
        frame = self._tx_current
        if frame is not None:
            self.stats_retransmits += 1
            self.adapter.command_transmit(frame, self.buffer_region)
        else:
            self._tx_busy = False
            yield from self._start_next_tx()
        yield SetSpl(old)

    @property
    def tx_queue_depth(self) -> int:
        return len(self._ctmsp_q) + len(self._llc_q) + (1 if self._tx_busy else 0)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def register_ctms_sink(
        self,
        classify: Callable[[Frame], bool],
        deliver: Callable[[Frame, Region, Optional[MbufChain]], Generator],
    ) -> None:
        """Install direct-delivery handles (the paper's new ioctls).

        ``classify`` is the function that "returns true when the packet
        should be directly transferred to the device"; ``deliver`` is the
        sink driver's receive function.  May be called once per sink device
        on this host; the split point tries classifiers in registration
        order.
        """
        self._ctms_sinks.append((classify, deliver))

    @property
    def ctms_classify(self):
        """First registered classifier (compatibility accessor)."""
        return self._ctms_sinks[0][0] if self._ctms_sinks else None

    @property
    def ctms_deliver(self):
        """First registered deliver handle (compatibility accessor)."""
        return self._ctms_sinks[0][1] if self._ctms_sinks else None

    @ctms_deliver.setter
    def ctms_deliver(self, fn) -> None:
        # Used by PresentationMachine to wrap the delivery path.
        if not self._ctms_sinks:
            raise ValueError("no sink registered to wrap")
        classify, _old = self._ctms_sinks[0]
        self._ctms_sinks[0] = (classify, fn)

    def _match_sink(self, frame: Frame):
        for classify, deliver in self._ctms_sinks:
            if classify(frame):
                return deliver
        return None

    def _rx_handler(self, frame: Frame, region: Region) -> Generator:
        """Receive interrupt: classify at the ARP/IP/CTMSP split point."""
        yield _EXEC_RX_CODE
        if frame.protocol == "ctmsp":
            yield from self._rx_ctmsp(frame, region)
        elif frame.protocol == CTMS_CONTROL_PROTOCOL:
            yield from self._rx_control(frame)
        else:
            yield from self._rx_llc(frame, region)

    def _rx_control(self, frame: Frame) -> Generator:
        """CTMS session-control frame: same split point, tiny classify cost."""
        self.stats_rx_control += 1
        yield _EXEC_RX_CLASSIFY
        handler = self.control_input
        self.adapter.release_rx_buffer()
        if handler is None:
            self.stats_rx_control_unclaimed += 1
            return
        yield from handler(frame)

    def _rx_ctmsp(self, frame: Frame, region: Region) -> Generator:
        self.stats_rx_ctmsp += 1
        # Classification peeks at the header while the packet is still in
        # the fixed DMA buffer -- "the shortest possible test to determine
        # if the packet was an CTMSP packet"; measurement point 4 fires
        # immediately after it, before any copy.
        yield _EXEC_RX_CLASSIFY
        deliver = self._match_sink(frame)
        if self.probes:
            yield from self._fire_probe(PROBE_RX_CLASSIFIED, frame)
        if deliver is None:
            self.stats_rx_ctmsp_unclaimed += 1
            self.adapter.release_rx_buffer()
            return
        chain: Optional[MbufChain] = None
        residency = region
        if self.config.rx_copy_to_mbufs:
            # "Receiver copies header and data from a fixed DMA buffer into
            # mbufs before passing to the VCA device."
            info_bytes = frame.info_bytes
            try:
                chain = self.kernel.mbufs.try_alloc_chain(info_bytes)
            except MbufExhausted:
                self.stats_rx_dropped_no_mbufs += 1
                self.adapter.release_rx_buffer()
                return
            nbufs = len(chain.mbufs)
            ex = self._alloc_execs.get(nbufs)
            if ex is None:
                ex = self._alloc_execs[nbufs] = Exec(
                    calibration.MBUF_ALLOC_COST * nbufs
                )
            yield ex
            if info_bytes:
                self.kernel.ledger.record_cpu(region, Region.SYSTEM, info_bytes)
                ex = self._rxcopy_execs.get(info_bytes)
                if ex is None:
                    ex = self._rxcopy_execs[info_bytes] = Exec(
                        calibration.CPU_COPY_IOCM_TO_SYS_NS_PER_BYTE
                        * info_bytes
                    )
                yield ex
            residency = Region.SYSTEM
            self.adapter.release_rx_buffer()
            yield from deliver(frame, residency, chain)
        else:
            # "the VCA examining the packet while still in a fixed DMA
            # buffer" -- the sink consumes in place; the buffer is released
            # only afterwards.
            yield from deliver(frame, region, None)
            self.adapter.release_rx_buffer()

    def _rx_llc(self, frame: Frame, region: Region) -> Generator:
        """Stock receive: copy into mbufs, hand to the protocol input path."""
        self.stats_rx_llc += 1
        try:
            chain = self.kernel.mbufs.try_alloc_chain(frame.info_bytes)
        except MbufExhausted:
            self.stats_rx_dropped_no_mbufs += 1
            self.adapter.release_rx_buffer()
            return
        yield Exec(calibration.MBUF_ALLOC_COST * chain.buffer_count)
        yield from cpu_copy_at_rate(
            self.kernel.ledger, region, Region.SYSTEM, frame.info_bytes,
            calibration.CPU_COPY_IOCM_TO_SYS_NS_PER_BYTE,
        )
        self.adapter.release_rx_buffer()
        if self.llc_input is None:
            chain.free()
            return
        # Protocol processing runs as a software interrupt below hardware
        # priority, as in BSD (schednetisr/ipintr).
        handler = self.llc_input

        def softint() -> Generator:
            yield from handler(frame, chain)

        self.cpu.raise_irq(calibration.SPL_SOFTNET, softint, name="softnet")
