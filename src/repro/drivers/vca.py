"""The Voice Communications Adapter driver.

Three roles, matching how the paper uses the card:

* **CTMS source** (Section 5.1): the DSP interrupts the host every 12 ms;
  the modified interrupt handler builds a CTMSP packet -- mbuf chain,
  precomputed Token Ring header, destination device number, packet number,
  data appended to 2000 bytes -- and hands it straight to the Token Ring
  driver ("We hard coded in the VCA's device driver calls to the Token Ring
  device driver").
* **CTMS sink**: the driver registers classify/deliver function handles with
  the Token Ring driver (the paper's new ``ioctl``-established direct path)
  and consumes packets as they are classified, optionally copying them into
  the device buffer, with duplicate/gap tracking.
* **stock character device**: the plain UNIX discipline -- the interrupt
  handler deposits device buffers, a user process ``read()``s them out
  through the kernel (two more copies).  This is the Figure 2-1 baseline.

The new ioctls of Section 5.1 are all here: set up the special mode, request
the Token Ring header "and keep this header as part of the state of the
device", and request the function handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.core.ctmsp import (
    CTMSP_HEADER_BYTES,
    CTMSPPacket,
    PrecomputedHeader,
    standard_packet,
)
from repro.core.recovery import SequenceTracker
from repro.core.stream import StreamStats
from repro.hardware import calibration
from repro.hardware.cpu import Exec, RaiseSpl, SetSpl
from repro.hardware.memory import Region, cpu_copy_cost
from repro.hardware.vca import VoiceCommunicationsAdapter
from repro.ring.frames import Frame
from repro.sim.units import US
from repro.unix.copy import cpu_copy
from repro.unix.kernel import Kernel
from repro.unix.mbuf import MbufChain, MbufExhausted

#: A VCA probe: fn(packet_no) -> extra CPU ns to charge inline (or None).
ProbeFn = Callable[[int], Optional[int]]

#: Measurement point 2: entry into the VCA's interrupt handler.
PROBE_HANDLER_ENTRY = "p2"

#: Sink delivery bookkeeping cost; Exec ops are immutable, so every
#: delivered packet shares one instance instead of allocating per call.
_EXEC_SINK_DELIVER = Exec(25 * US)


@dataclass
class VCADriverConfig:
    """Per-scenario behaviour switches (the Section 5.3 matrix, VCA side)."""

    #: Transmitter copies the real device data from the VCA buffer into the
    #: mbufs (Test Case B) or skips it (Test Case A sends filler only).
    copy_vca_data_to_mbufs: bool = True
    #: Sink copies received data out of mbufs into the VCA device buffer
    #: (Test Case B "full copying") vs "no copy of the data (dropping the
    #: packet)" (Test Case A).
    sink_copy_to_device: bool = False
    #: Information-field bytes per packet (header + data).
    packet_bytes: int = calibration.CTMSP_PACKET_BYTES
    #: Real device bytes produced per 12 ms period.
    device_bytes_per_period: int = calibration.VCA_DEVICE_BYTES_PER_PERIOD
    #: CTMS stream id.
    stream_id: int = 1
    #: Pointer-passing source (the Section 2 extension): the handler copies
    #: the device data straight into a DMA-reachable staging buffer and the
    #: Token Ring driver transmits by pointer exchange -- no mbuf chain, no
    #: driver copy ("direct copy of data from the VCA device buffer to fixed
    #: DMA buffers" in the Section 5.3 matrix).
    source_direct_to_buffer: bool = False
    #: Use the connection-lifetime precomputed Token Ring header (Section 3).
    #: False models the stock discipline of recomputing it per packet, for
    #: the header-precomputation ablation.
    precomputed_header: bool = True


class VCADriver:
    """One machine's VCA driver."""

    def __init__(
        self,
        kernel: Kernel,
        adapter: VoiceCommunicationsAdapter,
        config: Optional[VCADriverConfig] = None,
        device_number: int = 7,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.adapter = adapter
        self.config = config or VCADriverConfig()
        self.device_number = device_number
        self.header: Optional[PrecomputedHeader] = None
        self.tr_driver: Any = None  # wired by CTMS_BIND / CTMS_ATTACH_SINK
        self._next_packet_no = 0
        self.probes: dict[str, list[ProbeFn]] = {}

        # sink state
        self.tracker = SequenceTracker()
        self.stream_stats = StreamStats()

        # stock-mode state
        self._stock_ready = 0
        self._stock_fifo_depth = max(
            1, self.adapter.BUFFER_BYTES // max(1, self.config.packet_bytes)
        )

        # Per-driver transmit constants (config is fixed after construction,
        # so every packet charges the same copy costs): built lazily on the
        # first source interrupt, once CTMS_BIND has run.
        self._tx_hot: Optional[tuple] = None

        # --- statistics ---
        self.stats_packets_built = 0
        self.stats_drops_no_mbufs = 0
        self.stats_stock_overruns = 0
        self.stats_stock_reads = 0

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def add_probe(self, point: str, fn: ProbeFn) -> None:
        self.probes.setdefault(point, []).append(fn)

    def _fire_probe(self, point: str, packet_no: int) -> Generator:
        for fn in self.probes.get(point, ()):
            extra = fn(packet_no)
            if extra:
                yield Exec(extra)

    # ------------------------------------------------------------------
    # ioctl surface (the paper's new calls)
    # ------------------------------------------------------------------
    def dev_ioctl(self, proc: Any, op: str, arg: Any = None) -> Generator:
        """ioctl entry point (a generator run in the calling process)."""
        yield Exec(20 * US)
        if op == "CTMS_BIND":
            result = yield from self._ioctl_bind(arg)
            return result
        if op == "CTMS_ATTACH_SINK":
            return self._ioctl_attach_sink(arg)
        if op == "CTMS_START":
            self.adapter.attach_handler(self._source_interrupt_handler)
            self.adapter.start(
                align_to_now=bool(arg and arg.get("align_to_now"))
            )
            return True
        if op == "CTMS_STOP":
            self.adapter.stop()
            return True
        if op == "CTMS_GET_STATS":
            return self.stream_stats
        if op == "STOCK_START":
            self.adapter.attach_handler(self._stock_interrupt_handler)
            self.adapter.start()
            return True
        raise ValueError(f"unknown VCA ioctl {op!r}")

    def _ioctl_bind(self, arg: dict) -> Generator:
        """Bind the source to a destination: compute the header *once*.

        Section 5.1: "to request the Token Ring header and keep this header
        as part of the state of the device, and to request handles to
        functions needed by the modified Token Ring device driver."
        """
        tr_driver = arg["tr_driver"]
        self.tr_driver = tr_driver
        yield Exec(tr_driver.compute_header_cost())
        self.header = PrecomputedHeader(
            src=tr_driver.adapter.address, dst=arg["dst"]
        )
        self._dst_device = arg.get("dst_device", 0)
        start_packet_no = arg.get("start_packet_no")
        if start_packet_no is not None:
            # Failover resume: a replica source continues the stream's
            # packet numbering from the sink's high-water mark instead of
            # restarting at zero (which the sink would record as a flood of
            # duplicates and a reorder storm).
            self._next_packet_no = int(start_packet_no)
        return self.header

    def _ioctl_attach_sink(self, arg: dict) -> bool:
        """Register this driver as the direct-delivery sink on the TR driver."""
        tr_driver = arg["tr_driver"]
        self.tr_driver = tr_driver
        tr_driver.register_ctms_sink(self.ctms_classify, self.ctms_deliver)
        return True

    # ------------------------------------------------------------------
    # CTMS source: the modified interrupt handler (Section 5.1)
    # ------------------------------------------------------------------
    def _build_tx_hot(self) -> tuple:
        """Precompute the per-packet transmit plan (see ``_tx_hot``)."""
        config = self.config
        data_bytes = config.packet_bytes - CTMSP_HEADER_BYTES
        exec_header_copy = Exec(
            cpu_copy_cost(Region.SYSTEM, Region.SYSTEM, CTMSP_HEADER_BYTES)
        )
        device_bytes = min(config.device_bytes_per_period, data_bytes)
        if config.copy_vca_data_to_mbufs and device_bytes:
            filler_bytes = data_bytes - device_bytes
            exec_device_copy = Exec(
                cpu_copy_cost(Region.ADAPTER, Region.SYSTEM, device_bytes)
            )
        else:
            filler_bytes = data_bytes
            device_bytes = 0
            exec_device_copy = None
        exec_filler_copy = (
            Exec(cpu_copy_cost(Region.SYSTEM, Region.SYSTEM, filler_bytes))
            if filler_bytes
            else None
        )
        return (
            data_bytes,
            CTMSP_HEADER_BYTES + data_bytes,  # info_bytes
            exec_header_copy,
            device_bytes,
            exec_device_copy,
            filler_bytes,
            exec_filler_copy,
            Exec(calibration.VCA_HANDLER_CODE),
            {},  # buffer_count -> Exec(MBUF_ALLOC_COST * count)
            self.tr_driver.config.ctmsp_ring_priority,
        )

    def _source_interrupt_handler(self) -> Generator:
        packet_no = self._next_packet_no
        self._next_packet_no += 1
        born = self.sim.now
        if self.probes:
            # Measurement point 2: handler entry, before any work.
            yield from self._fire_probe(PROBE_HANDLER_ENTRY, packet_no)
        if self.header is None:
            raise RuntimeError("CTMS source started before CTMS_BIND")
        if not self.config.precomputed_header:
            # Ablation: recompute the Token Ring header per packet, the way
            # IP does -- the cost CTMSP's static connection avoids.
            yield Exec(self.tr_driver.compute_header_cost())
        hot = self._tx_hot
        if hot is None:
            hot = self._tx_hot = self._build_tx_hot()
        (
            data_bytes,
            info_bytes,
            exec_header_copy,
            device_bytes,
            exec_device_copy,
            filler_bytes,
            exec_filler_copy,
            exec_handler,
            alloc_execs,
            ring_priority,
        ) = hot
        packet = CTMSPPacket(
            stream_id=self.config.stream_id,
            packet_no=packet_no,
            dst_device=self._dst_device,
            data_bytes=data_bytes,
            header=self.header,
            born_at=born,
        )
        if self.config.source_direct_to_buffer:
            yield from self._source_direct(packet)
            return
        try:
            chain = self.kernel.mbufs.try_alloc_chain(info_bytes)
        except MbufExhausted:
            # Interrupt context cannot wait for mbufs; the period is lost.
            self.stats_drops_no_mbufs += 1
            return
        nbufs = len(chain.mbufs)
        exec_alloc = alloc_execs.get(nbufs)
        if exec_alloc is None:
            exec_alloc = alloc_execs[nbufs] = Exec(
                calibration.MBUF_ALLOC_COST * nbufs
            )
        yield exec_alloc
        ledger = self.kernel.ledger
        # Copy the precomputed header into the chain.
        ledger.record_cpu(Region.SYSTEM, Region.SYSTEM, CTMSP_HEADER_BYTES)
        yield exec_header_copy
        if exec_device_copy is not None:
            # Byte-wide programmed I/O out of the card's memory.
            ledger.record_cpu(Region.ADAPTER, Region.SYSTEM, device_bytes)
            yield exec_device_copy
        if exec_filler_copy is not None:
            # "We then appended the packet with data": filler from a static
            # kernel buffer.
            ledger.record_cpu(Region.SYSTEM, Region.SYSTEM, filler_bytes)
            yield exec_filler_copy
        yield exec_handler
        self.stats_packets_built += 1
        frame = packet.to_frame(ring_priority=ring_priority)
        yield from self.tr_driver.output(chain, frame)

    def _source_direct(self, packet: CTMSPPacket) -> Generator:
        """Pointer-passing transmit: stage data where the adapter can DMA it.

        One CPU copy remains because the VCA has no DMA of its own --
        exactly the paper's "If only one of the two devices is capable of
        DMA, then only one copy can be eliminated."
        """
        staging = (
            Region.IO_CHANNEL
            if self.kernel.machine.memory.has_io_channel_memory
            else Region.SYSTEM
        )
        yield from cpu_copy(
            self.kernel.ledger, Region.ADAPTER, staging, packet.data_bytes
        )
        yield Exec(calibration.VCA_HANDLER_CODE)
        self.stats_packets_built += 1
        frame = packet.to_frame(
            ring_priority=self.tr_driver.config.ctmsp_ring_priority
        )
        yield from self.tr_driver.output(None, frame)

    # ------------------------------------------------------------------
    # CTMS sink: the direct-delivery handles
    # ------------------------------------------------------------------
    def ctms_classify(self, frame: Frame) -> bool:
        """The handle that "returns true when the packet should be directly
        transferred to the device"."""
        packet = frame.payload
        return (
            isinstance(packet, CTMSPPacket)
            and packet.dst_device == self.device_number
        )

    def ctms_deliver(
        self, frame: Frame, residency: Region, chain: Optional[MbufChain]
    ) -> Generator:
        """The sink's receive function, run inside the TR receive handler."""
        packet: CTMSPPacket = frame.payload
        yield _EXEC_SINK_DELIVER
        outcome = self.tracker.record(packet.packet_no)
        self.stream_stats.record_delivery(
            packet, self.sim.now, outcome=outcome
        )
        if outcome == "duplicate":
            # "The receiver ... might need to ignore a duplicate packet."
            if chain is not None:
                chain.free()
            return
        if self.config.sink_copy_to_device:
            yield from cpu_copy(
                self.kernel.ledger, residency, Region.ADAPTER, packet.data_bytes
            )
        if chain is not None:
            chain.free()

    # ------------------------------------------------------------------
    # stock character-device role (the Figure 2-1 baseline)
    # ------------------------------------------------------------------
    def _stock_interrupt_handler(self) -> Generator:
        """Unmodified driver: deposit a device buffer and wake the reader."""
        yield Exec(40 * US)
        if self._stock_ready >= self._stock_fifo_depth:
            # Reader was too slow; on-card buffer overwritten -- a glitch.
            self.stats_stock_overruns += 1
            return
        self._stock_ready += 1
        self.kernel.wakeup(self._stock_channel())

    def _stock_channel(self) -> str:
        return f"vca{self.device_number}-read"

    def dev_read(self, proc: Any, nbytes: int) -> Generator:
        """Stock ``read()``: block for data, then copy device->kernel->user."""
        old = yield RaiseSpl(calibration.SPL_VCA)
        while self._stock_ready == 0:
            yield SetSpl(old)
            yield from self.kernel.sleep(self._stock_channel())
            old = yield RaiseSpl(calibration.SPL_VCA)
        self._stock_ready -= 1
        yield SetSpl(old)
        self.stats_stock_reads += 1
        # Device buffer -> kernel buffer (byte-wide PIO; no DMA on this card,
        # footnote 3), then kernel -> user.
        yield from cpu_copy(
            self.kernel.ledger, Region.ADAPTER, Region.SYSTEM, nbytes
        )
        yield from cpu_copy(
            self.kernel.ledger, Region.SYSTEM, Region.USER, nbytes
        )
        return nbytes

    def dev_write(self, proc: Any, nbytes: int, payload: Any = None) -> Generator:
        """Stock ``write()``: user -> kernel -> device buffer."""
        yield from cpu_copy(
            self.kernel.ledger, Region.USER, Region.SYSTEM, nbytes
        )
        yield from cpu_copy(
            self.kernel.ledger, Region.SYSTEM, Region.ADAPTER, nbytes
        )
        return nbytes
