"""ctms-repro: a reproduction of the USENIX 1991 CTMS paper.

Reproduces "Distributed Multimedia: How Can the Necessary Data Rates be
Supported?" (Pasieka, Crumley, Marks, Infortuna; CMU Information Technology
Center) as a calibrated discrete-event simulation of the complete testbed:
IBM RT/PC machines, a 4 Mbit Token Ring, a BSD 4.3-style kernel, the CTMSP
protocol with direct driver-to-driver transfer, and the paper's own
measurement instruments.

Quick start::

    from repro import CTMSSession, HostConfig, Testbed
    from repro.sim.units import SEC

    bed = Testbed(seed=42)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(5 * SEC)
    print(session.stats.throughput_bytes_per_sec())

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results; ``python -m repro list`` runs the experiments
from a shell.
"""

from repro.core.session import CTMSSession, SessionEstablishTimeout
from repro.experiments.scenarios import Scenario, test_case_a, test_case_b
from repro.experiments.testbed import Host, HostConfig, Testbed
from repro.faults import FaultInjector, FaultPlan, StreamInvariantMonitor

__version__ = "1.0.0"

__all__ = [
    "CTMSSession",
    "FaultInjector",
    "FaultPlan",
    "Host",
    "HostConfig",
    "Scenario",
    "SessionEstablishTimeout",
    "StreamInvariantMonitor",
    "Testbed",
    "test_case_a",
    "test_case_b",
    "__version__",
]
