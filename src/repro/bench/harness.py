"""The bench workloads and the regression check.

Three standard workloads, smallest to largest grain:

* ``kernel`` -- one clean CTMSP stream on a fresh testbed: the pure
  event-kernel hot path (the number the calendar-queue/slot-cache work
  must move);
* ``chaos_point`` -- one chaos point at intensity 1.0: the kernel plus
  fault injection and invariant monitoring, i.e. one fleet work unit;
* ``fleet_campaign`` -- a small serial campaign through the real fleet
  runner (journal, merge): supervision overhead included.

Each workload reports host wall-clock, dispatched calendar entries
(``Simulator.stats_events``), delivered packets, and the derived
events/sec / packets/sec rates.  A second, *profiled* kernel run
(``Simulator(profile=True)``) contributes the hottest dispatch keys so
the artifact also says *where* the time went.

This module is a sanctioned host-clock home (see ``repro.bench``): the
perf_counter reads here are the measurement, not a leak of wall time
into a simulated path.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.sim.units import SEC

#: Artifact schema version (bump on incompatible payload changes).
BENCH_VERSION = 1

#: Tolerated throughput fraction before --check calls regression.  Loose
#: on purpose: shared CI boxes jitter by 2-3x; a real kernel regression
#: (accidental quadratic scan, unbatched same-instant storm) blows past
#: any plausible scheduler noise.
DEFAULT_TOLERANCE = 0.25


def _workload_kernel(quick: bool) -> dict[str, Any]:
    """One clean CTMSP stream: the raw event-kernel hot path."""
    from repro.core.session import CTMSSession
    from repro.experiments.testbed import HostConfig, Testbed

    duration_ns = (1 if quick else 4) * SEC
    bed = Testbed(seed=11)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    start = time.perf_counter()
    session.establish()
    bed.run(duration_ns)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": wall_s,
        "events": bed.sim.stats_events,
        "packets": session.sink_tracker.delivered,
        "sim_s": duration_ns / SEC,
    }


def _workload_chaos_point(quick: bool) -> dict[str, Any]:
    """One chaos point: kernel + faults + invariant monitor."""
    from repro.experiments.chaos import build_plan, run_one

    duration_ns = (1 if quick else 4) * SEC
    seed = 11
    plan = build_plan(seed, 1.0, duration_ns)
    start = time.perf_counter()
    run = run_one("ctmsp", plan, seed, duration_ns, intensity=1.0)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": wall_s,
        "events": run.events,
        "packets": run.delivered,
        "sim_s": duration_ns / SEC,
    }


def _workload_fleet_campaign(quick: bool) -> dict[str, Any]:
    """A small serial campaign through the real fleet runner."""
    from repro.experiments.fleet import chaos_fleet_spec, run_fleet

    duration_ns = (1 if quick else 2) * SEC
    seeds = [1] if quick else [1, 2]
    spec = chaos_fleet_spec(seeds, duration_ns=duration_ns, intensities=(1.0,))
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    try:
        start = time.perf_counter()
        result = run_fleet(spec, jobs=1, state_dir=scratch)
        wall_s = time.perf_counter() - start
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    events = sum(
        (result.result_for(p.key) or {}).get("events", 0) for p in spec.points
    )
    packets = sum(
        (result.result_for(p.key) or {}).get("delivered", 0)
        for p in spec.points
    )
    return {
        "wall_s": wall_s,
        "events": events,
        "packets": packets,
        "sim_s": len(spec.points) * duration_ns / SEC,
    }


WORKLOADS: dict[str, Callable[[bool], dict[str, Any]]] = {
    "kernel": _workload_kernel,
    "chaos_point": _workload_chaos_point,
    "fleet_campaign": _workload_fleet_campaign,
}


def _kernel_hotspots(quick: bool, top: int = 8) -> list[dict[str, Any]]:
    """Hottest dispatch keys of a profiled kernel run (informational)."""
    from repro.core.session import CTMSSession
    from repro.experiments.testbed import HostConfig, Testbed

    duration_ns = (1 if quick else 2) * SEC
    bed = Testbed(seed=11, profile=True)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    CTMSSession(tx.kernel, rx.kernel).establish()
    bed.run(duration_ns)
    total = sum(bed.sim.profile_ns.values()) or 1
    rows = sorted(bed.sim.profile_ns.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        {
            "key": key,
            "calls": bed.sim.profile_calls[key],
            "pct": round(100 * ns / total, 1),
        }
        for key, ns in rows[:top]
    ]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


#: Samples per workload for the committed artifact.  Shared boxes jitter
#: by 10-15% run to run; best-of-N with the collector paused during the
#: timed region measures the kernel, not the host's mood.  --quick keeps
#: a single sample (it is a smoke test, not a measurement).
DEFAULT_REPEATS = 3


def _best_sample(fn: Callable[[bool], dict[str, Any]], quick: bool,
                 repeats: int) -> dict[str, Any]:
    """Run ``fn`` ``repeats`` times, gc paused, and keep the fastest wall."""
    best: dict[str, Any] | None = None
    for _ in range(max(1, repeats)):
        gc.collect()
        gc.disable()
        try:
            sample = fn(quick)
        finally:
            gc.enable()
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    assert best is not None
    return best


def run_bench(quick: bool = False, repeats: int | None = None) -> dict[str, Any]:
    """Run every workload; return the BENCH_kernel.json payload."""
    if repeats is None:
        repeats = 1 if quick else DEFAULT_REPEATS
    workloads: dict[str, dict[str, Any]] = {}
    for name, fn in WORKLOADS.items():
        sample = _best_sample(fn, quick, repeats)
        wall = max(sample["wall_s"], 1e-9)
        workloads[name] = {
            "wall_s": round(sample["wall_s"], 3),
            "sim_s": sample["sim_s"],
            "events": sample["events"],
            "events_per_sec": round(sample["events"] / wall),
            "packets": sample["packets"],
            "packets_per_sec": round(sample["packets"] / wall),
        }
    return {
        "benchmark": "kernel_trajectory",
        "v": BENCH_VERSION,
        "config": {
            "quick": quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": _usable_cpus(),
        },
        "workloads": workloads,
        "kernel_hotspots": _kernel_hotspots(quick),
        "note": (
            "events/sec is dispatched calendar entries per host second; "
            "committed per PR so the kernel's perf trajectory is visible. "
            "repro bench --check compares against this artifact."
        ),
    }


def write_bench(payload: dict[str, Any], out: str | Path) -> None:
    Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "workloads" not in data:
        raise ValueError(f"{path} is not a bench artifact (no 'workloads')")
    return data


def check_bench(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression messages (empty = pass) comparing events/sec rates.

    A workload regresses when its measured events/sec falls below
    ``tolerance`` times the committed baseline's.  Workloads present only
    on one side are ignored (adding a workload must not fail old
    baselines, and vice versa); sim-event *counts* are compared exactly
    when both sides ran non-quick, because the same seed must schedule
    the same calendar.
    """
    if not 0 < tolerance <= 1:
        raise ValueError("tolerance must be in (0, 1]")
    messages: list[str] = []
    base_workloads = baseline.get("workloads", {})
    for name in sorted(current.get("workloads", {})):
        if name not in base_workloads:
            continue
        cur = current["workloads"][name]
        base = base_workloads[name]
        floor = base.get("events_per_sec", 0) * tolerance
        if cur.get("events_per_sec", 0) < floor:
            messages.append(
                f"{name}: {cur.get('events_per_sec')} events/sec is below "
                f"{floor:.0f} ({tolerance:.0%} of baseline "
                f"{base.get('events_per_sec')})"
            )
        same_shape = not current["config"].get("quick") and not baseline[
            "config"
        ].get("quick")
        if same_shape and cur.get("events") != base.get("events"):
            messages.append(
                f"{name}: dispatched {cur.get('events')} sim events, "
                f"baseline dispatched {base.get('events')} -- the workload "
                "itself changed; refresh BENCH_kernel.json (make bench)"
            )
    return messages


def compare_bench(old: dict[str, Any], new: dict[str, Any]) -> list[str]:
    """Human-readable trajectory lines between two bench artifacts.

    Per-workload events/sec and wall-clock deltas, then the hotspot table
    shift (percentage points of the profiled kernel run).  Purely
    informational -- ``check_bench`` is the gate, this is the narrative
    (``repro bench --compare OLD.json NEW.json`` / ``make bench-compare``).
    """
    lines: list[str] = []
    old_w = old.get("workloads", {})
    new_w = new.get("workloads", {})
    for name in sorted(set(old_w) | set(new_w)):
        if name not in old_w:
            lines.append(f"{name:<16} (new workload) "
                         f"{new_w[name].get('events_per_sec', 0):>10} ev/s")
            continue
        if name not in new_w:
            lines.append(f"{name:<16} (dropped workload)")
            continue
        o, n = old_w[name], new_w[name]
        o_rate = o.get("events_per_sec", 0) or 1
        n_rate = n.get("events_per_sec", 0)
        lines.append(
            f"{name:<16} {o_rate:>10} -> {n_rate:>10} ev/s "
            f"({(n_rate / o_rate - 1):+.1%})  wall "
            f"{o.get('wall_s', 0):.3f}s -> {n.get('wall_s', 0):.3f}s"
        )
        if o.get("events") != n.get("events"):
            lines.append(
                f"{'':<16} note: sim events {o.get('events')} -> "
                f"{n.get('events')} (workload shape changed)"
            )
    old_hot = {row["key"]: row for row in old.get("kernel_hotspots", [])}
    new_hot = {row["key"]: row for row in new.get("kernel_hotspots", [])}
    if old_hot or new_hot:
        lines.append("kernel hotspots (% of profiled run):")
        order = sorted(
            set(old_hot) | set(new_hot),
            key=lambda k: -(new_hot.get(k, old_hot.get(k))["pct"]),
        )
        for key in order:
            o_pct = old_hot[key]["pct"] if key in old_hot else None
            n_pct = new_hot[key]["pct"] if key in new_hot else None
            if o_pct is None:
                lines.append(f"  {key:<42} (new) {n_pct:>5.1f}%")
            elif n_pct is None:
                lines.append(f"  {key:<42} {o_pct:>5.1f}% -> (off the list)")
            else:
                lines.append(
                    f"  {key:<42} {o_pct:>5.1f}% -> {n_pct:>5.1f}% "
                    f"({n_pct - o_pct:+.1f})"
                )
    return lines
