"""Perf-trajectory harness: standard workloads, committed baselines.

The ROADMAP's fast-event-kernel work needs a measurement substrate before
it needs a faster heap: ``repro bench`` runs the standard kernel and
fleet workloads (events/sec, packets/sec, wall-clock), writes
``BENCH_kernel.json`` at the repo root -- committed per PR so the perf
trajectory is visible in history -- and ``repro bench --check`` fails
when throughput regresses past tolerance against the committed artifact.

All wall-clock reads live in :mod:`repro.bench.harness`, which joins
``experiments/fleet.py`` as a ctms-lint sanctioned host-clock home
(CTMS103/CTMS303): benchmarking *is* the second legitimate bridge
between the simulated clock domain and the host's.
"""

from repro.bench.harness import (
    WORKLOADS,
    check_bench,
    compare_bench,
    load_bench,
    run_bench,
    write_bench,
)

__all__ = [
    "WORKLOADS",
    "check_bench",
    "compare_bench",
    "load_bench",
    "run_bench",
    "write_bench",
]
