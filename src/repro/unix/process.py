"""User processes and their syscall surface.

The stock UNIX transfer model (Figure 2-1) is "a user level process that
reads the data from one device and writes the data to a second device"; this
module provides exactly that programming surface.  A process body is a
generator taking a :class:`UserProcess` handle; device I/O goes through
``yield from proc.read(...)`` / ``proc.write(...)`` / ``proc.ioctl(...)``,
each charging syscall overhead and delegating to the device driver's
generator (which performs the copies and blocking).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.hardware import calibration
from repro.hardware.cpu import Exec, Wait
from repro.sim.engine import Event
from repro.unix.kernel import Kernel


class UserProcess:
    """A handle for one user process on one machine."""

    def __init__(self, kernel: Kernel, name: str = "proc") -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.name = name
        self.done: Event | None = None
        self.stats_syscalls = 0

    def start(
        self, body: Callable[["UserProcess"], Generator]
    ) -> Event:
        """Launch ``body(self)`` as a base-level frame; returns its done event."""
        self.done = self.kernel.spawn_process(body(self), name=self.name)
        return self.done

    # ------------------------------------------------------------------
    # syscalls (``yield from`` helpers usable inside the body)
    # ------------------------------------------------------------------
    def read(self, device_name: str, nbytes: int) -> Generator:
        """``read(fd, buf, n)`` from a character device.

        Returns whatever the device's ``dev_read`` returns (bytes
        transferred, possibly with blocking inside).
        """
        self.stats_syscalls += 1
        yield Exec(calibration.SYSCALL_OVERHEAD)
        device = self.kernel.device(device_name)
        result = yield from device.dev_read(self, nbytes)
        return result

    def write(self, device_name: str, nbytes: int, payload: Any = None) -> Generator:
        """``write(fd, buf, n)`` to a character device."""
        self.stats_syscalls += 1
        yield Exec(calibration.SYSCALL_OVERHEAD)
        device = self.kernel.device(device_name)
        result = yield from device.dev_write(self, nbytes, payload)
        return result

    def ioctl(self, device_name: str, op: str, arg: Any = None) -> Generator:
        """``ioctl(fd, op, arg)`` -- how the paper wires drivers together."""
        self.stats_syscalls += 1
        yield Exec(calibration.SYSCALL_OVERHEAD)
        device = self.kernel.device(device_name)
        result = yield from device.dev_ioctl(self, op, arg)
        return result

    def sleep_ns(self, duration: int) -> Generator:
        """Voluntarily block for ``duration`` (like select with a timeout)."""
        yield Wait(self.sim.timeout(duration))

    def sleep_timeout(self, duration: int) -> Generator:
        """Block like BSD ``sleep()``/``select()``: wakeup on a clock tick.

        Timed wakeups in 4.3BSD happen from ``softclock`` at the next clock
        interrupt after the timeout expires, so user processes resume only
        on 10 ms tick boundaries.  This quantization matters: the 10 ms tick
        beating against the VCA's 12 ms period is part of what phase-aligns
        background socket traffic with the CTMSP stream (Figure 5-2).
        """
        tick = calibration.CLOCK_TICK
        target = self.sim.now + duration
        wake_at = ((target + tick - 1) // tick) * tick
        yield Wait(self.sim.timeout(max(1, wake_at - self.sim.now)))

    def compute(self, work_ns: int) -> Generator:
        """Burn user-mode CPU (for load-generating processes)."""
        yield Exec(work_ns)
