"""The copy ledger: every data copy is charged time and counted.

Section 2 is an accounting argument: device-to-device transfer through a user
process costs four-to-six copies, of which "there will always be four copies
made by the CPU.  At a minimum, two of these copies are unnecessary."  To
*measure* that claim instead of asserting it, every copy in the model --
CPU copies, programmed I/O, and DMA transfers -- goes through one ledger per
machine.  The COPIES experiment then just reads the ledger after pushing a
known amount of data down each path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterator

from repro.hardware.cpu import Exec
from repro.hardware.memory import Region, cpu_copy_cost


@dataclass(slots=True)
class CopyRecord:
    """Aggregate for one (kind, source, destination) copy edge."""

    copies: int = 0
    bytes: int = 0


@dataclass
class CopyLedger:
    """Per-machine record of data movement."""

    cpu: dict[tuple[Region, Region], CopyRecord] = field(default_factory=dict)
    dma: dict[tuple[Region, Region], CopyRecord] = field(default_factory=dict)

    # The recorders run once per simulated copy; .get avoids setdefault's
    # unconditional CopyRecord() construction on the all-hits steady state.
    def record_cpu(self, src: Region, dst: Region, nbytes: int) -> None:
        rec = self.cpu.get((src, dst))
        if rec is None:
            rec = self.cpu[(src, dst)] = CopyRecord()
        rec.copies += 1
        rec.bytes += nbytes

    def record_dma(self, src: Region, dst: Region, nbytes: int) -> None:
        rec = self.dma.get((src, dst))
        if rec is None:
            rec = self.dma[(src, dst)] = CopyRecord()
        rec.copies += 1
        rec.bytes += nbytes

    # ------------------------------------------------------------------
    # summaries (what the Section 2 experiment prints)
    # ------------------------------------------------------------------
    def cpu_copy_count(self) -> int:
        return sum(rec.copies for rec in self.cpu.values())

    def dma_copy_count(self) -> int:
        return sum(rec.copies for rec in self.dma.values())

    def total_copy_count(self) -> int:
        return self.cpu_copy_count() + self.dma_copy_count()

    def cpu_bytes(self) -> int:
        return sum(rec.bytes for rec in self.cpu.values())

    def copies_per_packet(self, packets: int) -> tuple[float, float]:
        """(CPU copies, DMA copies) per packet over ``packets`` packets."""
        if packets == 0:
            return (0.0, 0.0)
        return (
            self.cpu_copy_count() / packets,
            self.dma_copy_count() / packets,
        )

    def edges(self) -> Iterator[tuple[str, Region, Region, CopyRecord]]:
        """All copy edges, for report tables."""
        for (src, dst), rec in sorted(
            self.cpu.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
        ):
            yield ("cpu", src, dst, rec)
        for (src, dst), rec in sorted(
            self.dma.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
        ):
            yield ("dma", src, dst, rec)


def cpu_copy_at_rate(
    ledger: CopyLedger,
    src: Region,
    dst: Region,
    nbytes: int,
    ns_per_byte: int,
) -> Generator[Exec, None, None]:
    """CPU-copy at an explicit rate (for uncached fixed DMA buffers).

    Fixed DMA buffers are mapped uncached whichever memory they live in, so
    copies into them cost the paper's 1 us/byte even when the buffer is in
    system memory; the ledger still records the true regions so contention
    and the copy census stay correct.
    """
    if nbytes < 0:
        raise ValueError("negative copy")
    if nbytes == 0:
        return
    ledger.record_cpu(src, dst, nbytes)
    yield Exec(ns_per_byte * nbytes)


def cpu_copy(
    ledger: CopyLedger, src: Region, dst: Region, nbytes: int
) -> Generator[Exec, None, None]:
    """CPU-copy ``nbytes`` from ``src`` to ``dst`` (a ``yield from`` helper).

    Charges the calibrated per-byte cost as CPU work inside the calling
    frame and records the copy on the ledger.  The paper's famous constant
    lives here: system memory to IO Channel Memory is 1 us/byte.
    """
    if nbytes < 0:
        raise ValueError("negative copy")
    if nbytes == 0:
        return
    ledger.record_cpu(src, dst, nbytes)
    yield Exec(cpu_copy_cost(src, dst, nbytes))
