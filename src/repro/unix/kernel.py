"""The kernel proper: clock, run queue, sleep/wakeup, kernel noise.

Three kernel behaviours shape the paper's measurements:

* the **clock interrupt** (hz=100) drives round-robin scheduling -- the
  reason a stock user-level relay process can be 10+ ms late to its next
  read(), which is fatal at 150 KB/s and harmless at 16 KB/s;
* **sleep/wakeup** -- how a blocked relay process waits for device data;
* **protected code segments** -- kernel housekeeping that runs at raised
  ``spl`` and delays interrupt handlers; the paper measured up to 440 us of
  interrupt-entry variation under load and attributed histogram spread to
  "the execution of protected code segments throughout the kernel".
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.hardware import calibration
from repro.hardware.cpu import Exec, SetSpl, Wait
from repro.hardware.machine import Machine
from repro.sim.engine import Event
from repro.sim.units import SEC, US
from repro.unix.copy import CopyLedger
from repro.unix.mbuf import MbufPool

#: hardclock()'s fixed bookkeeping cost; Exec ops are immutable, so the
#: 100 Hz tick shares one instance instead of allocating per interrupt.
_EXEC_HARDCLOCK = Exec(25 * US)


class Kernel:
    """One machine's UNIX kernel.

    Parameters
    ----------
    machine:
        The hardware it runs on (the kernel registers itself on it).
    multiprogramming:
        False models the paper's "stand alone mode" (Test Case A); True
        models "multiprocessing mode but not heavily loaded" (Test Case B),
        which turns on kernel background activity and more protected code.
    noise_rate_per_sec:
        Protected-section episodes per second of kernel background activity;
        defaults depend on ``multiprogramming``.
    """

    def __init__(
        self,
        machine: Machine,
        multiprogramming: bool = False,
        noise_rate_per_sec: Optional[float] = None,
        mbuf_small: int = 256,
        mbuf_clusters: int = 64,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.cpu = machine.cpu
        self.multiprogramming = multiprogramming
        machine.kernel = self
        self.mbufs = MbufPool(
            self.sim, small_count=mbuf_small, cluster_count=mbuf_clusters
        )
        self.ledger = CopyLedger()
        self.devices: dict[str, Any] = {}
        self._sleepers: dict[str, list[Event]] = {}
        # Calibrated against Figure 5-3: 20 episodes/s leaves 98% of Test
        # Case A's point-3-to-point-4 samples within 160us of the mean, the
        # paper's exact figure; multiprogramming mode roughly doubles it.
        if noise_rate_per_sec is None:
            noise_rate_per_sec = 45.0 if multiprogramming else 20.0
        self.noise_rate_per_sec = noise_rate_per_sec
        self._noise_rng = machine.rng.get("kernel-noise")
        self._running = False
        self.stats_clock_ticks = 0
        self.stats_noise_sections = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin clock interrupts and background kernel activity."""
        if self._running:
            return
        self._running = True
        self.sim.schedule_fast(calibration.CLOCK_TICK, self._clock_tick)
        if self.noise_rate_per_sec > 0:
            self._schedule_noise()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def _clock_tick(self) -> None:
        if not self._running:
            return
        self.stats_clock_ticks += 1
        self.cpu.raise_irq(
            calibration.SPL_CLOCK, self._clock_handler, name="clock"
        )
        self.sim.schedule_fast(calibration.CLOCK_TICK, self._clock_tick)

    def _clock_handler(self) -> Generator:
        # hardclock(): timer bookkeeping, then request a resched so the run
        # queue round-robins on the 10ms quantum.
        yield _EXEC_HARDCLOCK
        self.cpu.preempt_base_round_robin()

    # ------------------------------------------------------------------
    # background protected sections ("kernel noise")
    # ------------------------------------------------------------------
    def _schedule_noise(self) -> None:
        gap = self._noise_rng.expovariate(self.noise_rate_per_sec / SEC)
        self.sim.schedule_fast(max(1, round(gap)), self._noise_episode)

    def _noise_episode(self) -> None:
        if not self._running:
            return
        self.stats_noise_sections += 1
        if self._noise_rng.random() < calibration.LOW_SPL_SECTION_FRACTION:
            # A longer section at network priority: delays Token Ring
            # interrupts (tails of Figures 5-3/5-4) but never the VCA.
            spl = calibration.SPL_NET
            irq_level = calibration.SPL_SOFTNET
            length = min(
                calibration.LOW_SPL_SECTION_MAX,
                max(
                    50 * US,
                    round(
                        self._noise_rng.expovariate(
                            1.0 / calibration.LOW_SPL_SECTION_MEAN
                        )
                    ),
                ),
            )
        else:
            # Short housekeeping at high priority: disk completion
            # processing, TTY silo draining -- bounded so the VCA
            # interrupt-entry variation stays within the paper's 440 us.
            spl = calibration.SPL_HIGH
            irq_level = calibration.SPL_BIO
            length = min(
                calibration.PROTECTED_SECTION_MAX,
                max(
                    5 * US,
                    round(
                        self._noise_rng.expovariate(
                            1.0 / calibration.PROTECTED_SECTION_MEAN
                        )
                    ),
                ),
            )

        self.cpu.raise_irq(irq_level, self._noise_body, "kernel-noise", spl, length)
        self._schedule_noise()

    def _noise_body(self, spl: int, length: int) -> Generator:
        old = yield SetSpl(spl)
        yield Exec(length)
        yield SetSpl(old)

    # ------------------------------------------------------------------
    # sleep / wakeup
    # ------------------------------------------------------------------
    def sleep(self, channel: str) -> Generator[Wait, Any, Any]:
        """``yield from`` helper: block the calling process on ``channel``."""
        ev = self.sim.event(name=f"sleep:{channel}")
        self._sleepers.setdefault(channel, []).append(ev)
        value = yield Wait(ev)
        return value

    def wakeup(self, channel: str, value: Any = None) -> int:
        """Wake every process sleeping on ``channel``; returns count woken."""
        events = self._sleepers.pop(channel, [])
        for ev in events:
            ev.succeed(value)
        return len(events)

    # ------------------------------------------------------------------
    # processes and devices
    # ------------------------------------------------------------------
    def spawn_process(
        self, body: Generator, name: str = "proc"
    ) -> Event:
        """Run ``body`` as a user process (a base-level CPU frame)."""
        return self.cpu.spawn_base(body, name=name)

    def register_device(self, name: str, device: Any) -> Any:
        if name in self.devices:
            raise ValueError(f"device {name!r} already registered")
        self.devices[name] = device
        return device

    def device(self, name: str) -> Any:
        return self.devices[name]
