"""The mbuf pool.

Section 2: "The UNIX model uses *mbufs* as a pool of buffers to transfer data
between the various layers of protocols. ... It should be noted that the
allocation of a mbuf can be delayed an arbitrarily long time if the pool is
exhausted at the time of the request."

We model 4.3BSD mbufs: small 128-byte buffers holding up to 112 bytes of
data, with 1024-byte *clusters* attached for bulk data.  A chain of mbufs
carries one packet.  The pool is finite; allocation either fails immediately
(``M_DONTWAIT``, the only option in interrupt context) or parks the caller on
a waiter list until buffers return (``M_WAIT``).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.engine import Event, Simulator

#: Bytes of data a plain mbuf can hold (4.3BSD: 128-byte mbuf, ~112 usable).
MBUF_DATA_BYTES = 112
#: Bytes a cluster mbuf can hold (4.3BSD MCLBYTES).
CLUSTER_DATA_BYTES = 1024


class MbufExhausted(Exception):
    """Raised on a no-wait allocation when the pool is empty."""


class Mbuf:
    """One buffer from the pool."""

    __slots__ = ("pool", "is_cluster", "length", "freed")

    def __init__(self, pool: "MbufPool", is_cluster: bool) -> None:
        self.pool = pool
        self.is_cluster = is_cluster
        self.length = 0
        self.freed = False

    @property
    def capacity(self) -> int:
        return CLUSTER_DATA_BYTES if self.is_cluster else MBUF_DATA_BYTES

    def free(self) -> None:
        """Return the buffer to the pool (double frees are errors)."""
        self.pool._release(self)


class MbufChain:
    """A linked list of mbufs carrying one packet."""

    __slots__ = ("mbufs",)

    def __init__(self, mbufs: Optional[list[Mbuf]] = None) -> None:
        self.mbufs: list[Mbuf] = mbufs or []

    @property
    def length(self) -> int:
        """Total data bytes in the chain."""
        return sum(m.length for m in self.mbufs)

    @property
    def buffer_count(self) -> int:
        return len(self.mbufs)

    def append_data(self, nbytes: int) -> None:
        """Account ``nbytes`` of data into the chain's existing capacity."""
        remaining = nbytes
        for m in self.mbufs:
            room = m.capacity - m.length
            if room <= 0:
                continue
            take = min(room, remaining)
            m.length += take
            remaining -= take
            if remaining == 0:
                return
        if remaining:
            raise ValueError(
                f"chain capacity exceeded by {remaining} bytes; allocate more mbufs"
            )

    def free(self) -> None:
        """Free every mbuf in the chain."""
        for m in self.mbufs:
            m.free()
        self.mbufs = []


class MbufPool:
    """The per-machine pool of mbufs and clusters.

    Both the paper's prototype and the stock path allocate from here; the
    pool's high-water mark feeds the Section 6 buffer-space conclusion.
    """

    def __init__(
        self,
        sim: Simulator,
        small_count: int = 256,
        cluster_count: int = 64,
    ) -> None:
        self.sim = sim
        self.small_count = small_count
        self.cluster_count = cluster_count
        self._small_free = small_count
        self._cluster_free = cluster_count
        self._waiters: deque[tuple[bool, Event]] = deque()
        # --- statistics ---
        self.stats_allocs = 0
        self.stats_failures = 0
        self.stats_waits = 0
        self.peak_small_in_use = 0
        self.peak_cluster_in_use = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def try_alloc(self, is_cluster: bool = False) -> Mbuf:
        """``M_DONTWAIT`` allocation; raises :class:`MbufExhausted` if empty."""
        if is_cluster:
            if self._cluster_free == 0:
                self.stats_failures += 1
                raise MbufExhausted("cluster pool empty")
            self._cluster_free -= 1
            self.peak_cluster_in_use = max(
                self.peak_cluster_in_use, self.cluster_count - self._cluster_free
            )
        else:
            if self._small_free == 0:
                self.stats_failures += 1
                raise MbufExhausted("mbuf pool empty")
            self._small_free -= 1
            self.peak_small_in_use = max(
                self.peak_small_in_use, self.small_count - self._small_free
            )
        self.stats_allocs += 1
        return Mbuf(self, is_cluster)

    def alloc_wait(self, is_cluster: bool = False) -> Event:
        """``M_WAIT`` allocation: an event that succeeds with the mbuf.

        May succeed immediately; otherwise the caller is parked FIFO --
        "delayed an arbitrarily long time".
        """
        ev = self.sim.event(name="mbuf-wait")
        try:
            ev.succeed(self.try_alloc(is_cluster))
        except MbufExhausted:
            self.stats_waits += 1
            self._waiters.append((is_cluster, ev))
        return ev

    def try_alloc_chain(self, nbytes: int) -> MbufChain:
        """Allocate a chain big enough for ``nbytes`` (no-wait).

        Uses clusters for bulk and a small mbuf for any sub-cluster tail,
        matching how 4.3BSD drivers build packet chains.  On failure,
        everything grabbed so far is released and :class:`MbufExhausted`
        propagates -- the all-or-nothing behaviour of ``m_getclr`` loops.
        """
        if nbytes <= 0:
            raise ValueError("empty chain requested")
        # Bulk fast path: the buffer mix is fully determined by nbytes
        # (clusters while more than a small mbuf remains, then one small
        # tail), so when the pool can cover it we decrement the free counts
        # once and build the chain directly instead of looping through
        # try_alloc and re-scanning the chain in append_data.  The slow loop
        # below stays as the fallback so exhaustion keeps its exact
        # failure-accounting and rollback semantics.
        if nbytes > MBUF_DATA_BYTES:
            nclusters = (nbytes - MBUF_DATA_BYTES - 1) // CLUSTER_DATA_BYTES + 1
            nsmall = 1 if nbytes > nclusters * CLUSTER_DATA_BYTES else 0
        else:
            nclusters = 0
            nsmall = 1
        if self._cluster_free >= nclusters and self._small_free >= nsmall:
            self._cluster_free -= nclusters
            self._small_free -= nsmall
            in_use = self.cluster_count - self._cluster_free
            if in_use > self.peak_cluster_in_use:
                self.peak_cluster_in_use = in_use
            in_use = self.small_count - self._small_free
            if in_use > self.peak_small_in_use:
                self.peak_small_in_use = in_use
            self.stats_allocs += nclusters + nsmall
            mbufs = []
            remaining = nbytes
            for _ in range(nclusters):
                m = Mbuf(self, True)
                take = (
                    CLUSTER_DATA_BYTES
                    if remaining >= CLUSTER_DATA_BYTES
                    else remaining
                )
                m.length = take
                remaining -= take
                mbufs.append(m)
            if nsmall:
                m = Mbuf(self, False)
                m.length = remaining
                mbufs.append(m)
            return MbufChain(mbufs)
        grabbed: list[Mbuf] = []
        try:
            remaining = nbytes
            while remaining > 0:
                want_cluster = remaining > MBUF_DATA_BYTES
                m = self.try_alloc(is_cluster=want_cluster)
                grabbed.append(m)
                remaining -= m.capacity
        except MbufExhausted:
            for m in grabbed:
                m.free()
            raise
        chain = MbufChain(grabbed)
        chain.append_data(nbytes)
        return chain

    @staticmethod
    def buffers_needed(nbytes: int) -> int:
        """How many pool buffers a chain for ``nbytes`` will use."""
        full_clusters, tail = divmod(nbytes, CLUSTER_DATA_BYTES)
        if tail == 0:
            return full_clusters
        return full_clusters + 1

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def _release(self, m: Mbuf) -> None:
        if m.freed:
            raise RuntimeError("mbuf double free")
        m.freed = True
        m.length = 0
        # Hand the buffer straight to a compatible waiter if any.
        for i, (wants_cluster, ev) in enumerate(self._waiters):
            if wants_cluster == m.is_cluster:
                del self._waiters[i]
                fresh = Mbuf(self, m.is_cluster)
                ev.succeed(fresh)
                return
        if m.is_cluster:
            self._cluster_free += 1
        else:
            self._small_free += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def small_in_use(self) -> int:
        return self.small_count - self._small_free

    @property
    def cluster_in_use(self) -> int:
        return self.cluster_count - self._cluster_free

    def bytes_in_use(self) -> int:
        """Pool bytes currently held (buffer capacity, as the kernel sizes it)."""
        return (
            self.small_in_use * MBUF_DATA_BYTES
            + self.cluster_in_use * CLUSTER_DATA_BYTES
        )

    def peak_bytes_in_use(self) -> int:
        """High-water mark in bytes -- the Section 6 buffer-space metric."""
        return (
            self.peak_small_in_use * MBUF_DATA_BYTES
            + self.peak_cluster_in_use * CLUSTER_DATA_BYTES
        )
