"""BSD 4.3-style UNIX kernel model.

The paper's baseline problem lives here: the stock UNIX model moves data
between two devices through a user-level process, paying four CPU copies (and
up to two DMA copies), mbuf allocation, syscall overhead, and scheduler
latency.  The model provides:

* :mod:`~repro.unix.mbuf` -- the mbuf pool and chains ("the allocation of a
  mbuf can be delayed an arbitrarily long time if the pool is exhausted");
* :mod:`~repro.unix.copy` -- the copy ledger: every CPU and DMA data copy in
  the system is charged simulated time *and* counted, which is how the
  Section 2 copy-count analysis is measured rather than asserted;
* :mod:`~repro.unix.kernel` -- clock interrupts, the run queue, sleep/wakeup,
  and the background "protected code segments" that produce the paper's
  interrupt-entry jitter;
* :mod:`~repro.unix.process` -- user processes with read/write/ioctl
  syscalls;
* :mod:`~repro.unix.sockets` -- a minimal socket layer over the protocol
  baselines, used by the stock-UNIX relay and the control-machine keepalive
  traffic the paper blames for Figure 5-2's second mode.
"""

from repro.unix.copy import CopyLedger, cpu_copy
from repro.unix.kernel import Kernel
from repro.unix.mbuf import Mbuf, MbufChain, MbufExhausted, MbufPool

__all__ = [
    "CopyLedger",
    "Kernel",
    "Mbuf",
    "MbufChain",
    "MbufExhausted",
    "MbufPool",
    "cpu_copy",
]
