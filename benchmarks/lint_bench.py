"""Lint engine benchmark: cold vs warm-cache wall-clock over src/.

Runs the whole-program v2 analysis (``repro lint --v2``) twice against a
scratch cache -- once from nothing, once with every module summary
cached -- and writes ``BENCH_lint.json`` at the repo root.  The warm run
re-parses nothing; it only re-links the project graph and re-runs the
cross-module phases, so the ratio measures what the incremental engine
actually buys a pre-push hook.

Standalone script (``make bench-lint``), not a pytest-benchmark suite:
the interesting number is end-to-end CLI-equivalent wall-clock including
cache (de)serialization, which a microbenchmark harness would distort.
"""

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import run_lint_v2

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT = REPO_ROOT / "BENCH_lint.json"
TARGET = REPO_ROOT / "src" / "repro"
#: Median-of-N to keep a single scheduler hiccup out of the artifact.
REPEATS = 3


def timed_run(cache_path: Path) -> dict:
    start = time.perf_counter()
    report = run_lint_v2([str(TARGET)], cache_path=str(cache_path))
    wall_s = time.perf_counter() - start
    return {
        "wall_s": wall_s,
        "files": report.files_scanned,
        "cache_hits": report.cache_hits,
        "reparsed": len(report.reparsed or ()),
        "findings": len(report.new),
    }


def median_run(cache_path: Path, *, cold: bool) -> dict:
    samples = []
    for _ in range(REPEATS):
        if cold:
            cache_path.unlink(missing_ok=True)
        samples.append(timed_run(cache_path))
    samples.sort(key=lambda s: s["wall_s"])
    picked = dict(samples[len(samples) // 2])
    picked["wall_s"] = round(picked["wall_s"], 4)
    return picked


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="lint-bench-"))
    cache = scratch / "cache.json"
    try:
        cold = median_run(cache, cold=True)
        warm = median_run(cache, cold=False)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    speedup = round(cold["wall_s"] / warm["wall_s"], 2)
    payload = {
        "benchmark": "lint_incremental",
        "config": {
            "target": "src/repro",
            "repeats_median_of": REPEATS,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runs": {"cold": cold, "warm": warm},
        "speedup_warm_over_cold": speedup,
        "note": (
            "cold parses + summarizes every module; warm replays cached "
            "summaries and only re-links the graph and cross-module phases"
        ),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUT}")
    ok = warm["reparsed"] == 0 and cold["findings"] == warm["findings"]
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
