"""FIG-5-4: Test Case B histogram 7 -- transmitter-to-receiver, loaded ring.

Paper: minimum 10750 us; 76% within 160 us of the 10900 us peak; 21.5% in
11060-15000 us; 2.49% in 15000-40050 us; and two exceptional points at
120-130 ms explained as station insertions into the Token Ring (the Active
Monitor purges the ring ~10 times back to back).

The paper's two outliers come from a 117-minute run at ~1 insertion/hour;
to keep the benchmark minutes-scale we run 6 simulated minutes with the
insertion rate raised proportionally (about one insertion per 2 minutes),
which preserves the *per-insertion* signature the paper describes.
"""

from repro.experiments.reporting import emit, figure_5_4_report
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.sim.units import MINUTE, MS, SEC, US

DURATION = 6 * MINUTE
#: ~1 insertion per 2 simulated minutes (paper: ~1/hour over 117 minutes).
INSERTIONS_PER_DAY = 24 * 30.0


def test_fig_5_4_test_case_b_with_insertions(once):
    scenario = scenario_b(
        duration_ns=DURATION, seed=2, insertions_per_day=INSERTIONS_PER_DAY
    )
    result = once(run_scenario, scenario)
    h7 = result.histograms[7]
    inserter = result.testbed.inserter
    emit(
        "fig_5_4",
        figure_5_4_report(h7, inserter.stats_insertions, DURATION / MINUTE / 1),
    )

    assert h7.count > 20_000
    # Minimum ~10750us.
    assert abs(h7.min() - 10_750 * US) <= 220 * US
    # Peak near 10900us holding the majority (paper 76%).
    peak = h7.primary_mode()
    assert abs(peak - 10_900 * US) <= 400 * US
    frac_peak = h7.fraction_within(peak, 160 * US)
    assert 0.6 <= frac_peak <= 0.95
    # A substantial 11-15ms shoulder from the loaded ring (paper 21.5%).
    assert h7.fraction_between(11_060 * US, 15_000 * US) >= 0.05
    # Ring insertions produce ~100ms outliers: at least one sample in the
    # 80-150ms band, and the count is on the order of the insertion count.
    assert inserter.stats_insertions >= 1
    outliers = h7.count_between(80 * MS, 150 * MS)
    assert outliers >= 1
    assert outliers <= 4 * inserter.stats_insertions
    # Each insertion may lose the packet in flight -- and nothing else does.
    lost = result.tracker.lost_packets
    assert lost <= 2 * inserter.stats_insertions
