"""VALIDATE: the lazy token-ring model against the hop-level reference.

The reproduction's credibility depends on its cheap ring model; this bench
quantifies its agreement with an explicit per-hop 802.5 simulation across
random workloads.  (The reference parks its token when the ring is idle so
the comparison is affordable; its event count is therefore not the raw
speedup measure -- unparked it costs one event per 300 ns of simulated
time.)
"""

from repro.experiments.reporting import emit, format_table
from repro.experiments.validation import (
    AGREEMENT_TOLERANCE_NS,
    validate,
)
from repro.sim.units import US


def test_lazy_model_agrees_with_hop_level_reference(once):
    def run_all():
        return [validate(seed=s, n_frames=50) for s in (1, 2, 3)]

    results = once(run_all)

    rows = []
    for i, r in enumerate(results, start=1):
        rows.append(
            [
                f"workload {i}",
                str(r.frames),
                f"{r.max_delivery_skew_ns / 1000:.1f} us",
                f"{r.mean_delivery_skew_ns / 1000:.2f} us",
                f"{r.detailed_token_hops}",
                f"~{r.lazy_events_estimate}",
            ]
        )
    emit(
        "model_validation",
        format_table(
            "Lazy vs hop-level Token Ring model "
            f"(tolerance {AGREEMENT_TOLERANCE_NS / 1000:.1f} us = one "
            "rotation of phase uncertainty)",
            ["workload", "frames", "max skew", "mean skew",
             "detailed events", "lazy events"],
            rows,
        ),
    )

    for r in results:
        assert r.frames == 50
        # Mean skew is a small fraction of the tolerance.
        assert r.mean_delivery_skew_ns < AGREEMENT_TOLERANCE_NS * 2
        # Worst case: a sub-hop token-phase knife edge can flip the order
        # of two simultaneously pending frames of different sizes, skewing
        # the sorted sequences by up to one wire time (~5 ms for the
        # largest frame).  Beyond that, the models would truly disagree.
        assert r.max_delivery_skew_ns <= 5_100_000, r
