"""HIST-1..6A: the histograms the paper says "showed values which could
easily be explained given the total system and its interactions".

* Histogram 1 (VCA IRQ inter-occurrence): a 12 ms comb, stable to ~0.5 us
  at the source, widened only by the PC/AT tool's ~120 us service spread.
* Histogram 2/3 (handler entry, pre-transmit inter-occurrence): 12 ms mean
  with software-path jitter.
* Histogram 4 (rx classification inter-occurrence): 12 ms mean, wider.
* Histogram 5 (IRQ to handler entry): the paper's logic-analyzer bound --
  at most ~440 us of variation even under load.
* Histogram 6, Test Case A: unimodal at ~2.5 ms (copy + code), since the
  private ring has no competing local traffic.
"""

from repro.experiments.reporting import emit, histogram_summary_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.hardware import calibration
from repro.sim.units import MS, SEC, US


def test_histograms_test_case_a(once):
    result = once(run_scenario, scenario_a(duration_ns=40 * SEC, seed=3))
    h = result.histograms
    emit("histograms_case_a", histogram_summary_table(h, "Test Case A"))

    # h1: the VCA interrupt source is rock stable; all measured spread is
    # the PC/AT tool's own service-delay error.
    assert abs(h[1].mean() - 12 * MS) < 20 * US
    assert h[1].max() - h[1].min() <= 2 * (
        calibration.PCAT_EXPECTED_SPREAD + calibration.VCA_INTERRUPT_JITTER
    ) + 10 * US
    # h2/h3/h4 all track the 12ms source on average.
    for i in (2, 3, 4):
        assert abs(h[i].mean() - 12 * MS) < 30 * US, i
    # h5: IRQ-to-handler-entry variation within the paper's 440us bound
    # (plus the tool's 120us spread on both endpoints).
    assert h[5].max() <= calibration.IRQ_ENTRY_OVERHEAD + 440 * US + 250 * US
    # h6 on the quiet ring is unimodal and tight around copy+code.
    assert len(h[6].modes(min_separation=2 * MS)) == 1
    assert abs(h[6].primary_mode() - 2_500 * US) <= 400 * US


def test_histograms_test_case_b(once):
    result = once(run_scenario, scenario_b(duration_ns=40 * SEC, seed=3))
    h = result.histograms
    emit("histograms_case_b", histogram_summary_table(h, "Test Case B"))

    # The interrupt source does not care about system load.
    assert abs(h[1].mean() - 12 * MS) < 20 * US
    # Handler entry jitter grows under load but stays within the bound.
    assert h[5].max() <= calibration.IRQ_ENTRY_OVERHEAD + 440 * US + 250 * US
    assert h[5].max() >= h[5].min()
    # The loaded case delays transmissions: h3's spread far exceeds h2's.
    assert h[3].std() > h[2].std()
    # Deliveries still average one packet per 12ms (no sustained loss).
    assert abs(h[4].mean() - 12 * MS) < 50 * US
