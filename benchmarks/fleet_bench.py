"""Fleet scaling benchmark: wall-clock jobs=1 vs jobs=4.

Runs the same chaos campaign (4 seeds x 2 profiles at intensity 1.0)
serially and through the supervised 4-worker pool, checks the merged
reports are byte-identical, and writes ``BENCH_fleet.json`` at the repo
root with wall-clock, simulated-event throughput, and the speedup.

Standalone script (``make bench-fleet``), not a pytest-benchmark suite:
the interesting number is end-to-end campaign wall-clock including
process supervision, which a microbenchmark harness would distort.
"""

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.experiments.fleet import chaos_fleet_spec, run_fleet
from repro.sim.units import SEC

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT = REPO_ROOT / "BENCH_fleet.json"

SEEDS = [1, 2, 3, 4]
DURATION_NS = 8 * SEC
INTENSITIES = (0.5, 1.0, 2.0)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def timed_run(jobs: int, state_dir: Path):
    spec = chaos_fleet_spec(SEEDS, duration_ns=DURATION_NS, intensities=INTENSITIES)
    start = time.perf_counter()
    result = run_fleet(spec, jobs=jobs, state_dir=state_dir)
    wall_s = time.perf_counter() - start
    assert result.ok(), f"jobs={jobs} campaign failed"
    events = sum(
        result.result_for(p.key)["events"] for p in spec.points
    )
    return {
        "jobs": jobs,
        "wall_s": round(wall_s, 3),
        "points": len(spec.points),
        "sim_events": events,
        "events_per_sec": round(events / wall_s),
    }, result.render()


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="fleet-bench-"))
    try:
        serial, serial_render = timed_run(1, scratch / "serial")
        parallel, parallel_render = timed_run(4, scratch / "parallel")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    payload = {
        "benchmark": "fleet_scaling",
        "config": {
            "seeds": SEEDS,
            "duration_s": DURATION_NS / SEC,
            "intensities": list(INTENSITIES),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": usable_cpus(),
        },
        "runs": [serial, parallel],
        "speedup_jobs4_over_jobs1": round(serial["wall_s"] / parallel["wall_s"], 2),
        "renders_identical": serial_render == parallel_render,
        "note": (
            "speedup is bounded by config.cpus (CPU-bound sim workers); on a "
            "single-CPU host the ratio instead measures supervision overhead"
        ),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUT}")
    return 0 if payload["renders_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
