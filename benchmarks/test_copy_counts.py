"""COPIES: the Section 2 copy arithmetic, measured.

Paper: device-to-device transfer through a user process performs "as many
as six and as few as four" copies, of which "there will always be four
copies made by the CPU"; direct driver-to-driver transfer "completely
eliminates two of the data copies"; and with pointer passing, "if only one
of the two devices is capable of DMA, then only one copy can be eliminated"
(all CPU copies go if both have DMA).

Our source device (the VCA) is not DMA-capable (footnote 3's byte-wide
interface), and the Token Ring adapter is, so the measured expectations are
4+1, 2+1 and 1+1 (CPU+DMA) per packet.
"""

from repro.core.direct import TransferPath, paper_claims, predicted_copies
from repro.experiments.copies import measure_all
from repro.experiments.reporting import emit, format_table
from repro.sim.units import SEC


def test_copy_counts_match_section_2(once):
    measured = once(measure_all, duration_ns=10 * SEC, seed=5)

    rows = []
    for m in measured:
        rows.append(
            [
                m.path.value,
                f"{m.model.cpu_copies} cpu + {m.model.dma_copies} dma",
                f"{m.cpu_per_packet:.2f} cpu + {m.dma_per_packet:.2f} dma",
                "yes" if m.matches_model() else "NO",
            ]
        )
    emit(
        "copy_counts",
        format_table(
            "Section 2: data copies per packet, device to device "
            "(VCA source has no DMA; Token Ring adapter does)",
            ["transfer path", "model", "measured", "match"],
            rows,
        ),
    )

    by_path = {m.path: m for m in measured}
    for m in measured:
        assert m.matches_model(), m
    user = by_path[TransferPath.USER_PROCESS]
    direct = by_path[TransferPath.DIRECT_DRIVER]
    pointer = by_path[TransferPath.POINTER_PASSING]
    # "This completely eliminates two of the data copies."
    assert round(user.cpu_per_packet - direct.cpu_per_packet) == 2
    # "If only one of the two devices is capable of DMA, then only one copy
    # can be eliminated."
    assert round(direct.cpu_per_packet - pointer.cpu_per_packet) == 1
    # The paper's headline bounds hold in the model.
    claims = paper_claims()
    assert claims["user_process_max_total"] == 6
    assert claims["user_process_min_total"] == 4
    assert claims["user_process_cpu"] == 4
    assert claims["pointer_passing_cpu"] == 0
