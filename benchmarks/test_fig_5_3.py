"""FIG-5-3: Test Case A histogram 7 -- transmitter-to-receiver times.

Paper: minimum 10740 us; 98% of samples within 160 us of the 10894 us mean;
the remaining 2% spread right of the mean, extending to 14600 us.
"""

from repro.experiments.reporting import emit, figure_5_3_report
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.sim.units import MS, SEC, US


def test_fig_5_3_test_case_a(once):
    result = once(run_scenario, scenario_a(duration_ns=60 * SEC, seed=1))
    h7 = result.histograms[7]
    emit("fig_5_3", figure_5_3_report(h7))

    # Shape assertions against the paper's claims.
    assert h7.count > 4000
    # Minimum latency ~10740us (within 2%).
    assert abs(h7.min() - 10_740 * US) <= 220 * US
    # Mean ~10894us (within 2%).
    mean = h7.mean()
    assert abs(mean - 10_894 * US) <= 220 * US
    # Tight distribution: ~98% within 160us of the mean.
    frac = h7.fraction_within(round(mean), 160 * US)
    assert frac >= 0.95
    # A small right tail exists but stays bounded (paper: to 14600us).
    assert h7.max() > mean + 300 * US
    assert h7.max() <= 16 * MS
    # No packets lost on the quiet private ring.
    assert result.tracker.lost_packets == 0
    assert result.tracker.reordered == 0
