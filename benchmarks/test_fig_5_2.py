"""FIG-5-2: Test Case B histogram 6 -- handler entry to pre-transmit.

Paper: a bimodal curve.  68% of samples within 500 us of 2600 us; 15% within
500 us of 9400 us; 16.5% between 2800 and 9300 us; ~2% in tails extending to
14000 us.  The first peak is 2000 us of copy (1 us/byte into IO Channel
Memory) plus ~600 us of code; the second mode is CTMSP packets "queued
rather than sent immediately" behind the hosts' own socket traffic, after
which "the system plays catch up for tens of CTMSP packets".
"""

from repro.experiments.reporting import emit, figure_5_2_report
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.sim.units import MS, SEC, US


def test_fig_5_2_test_case_b(once):
    result = once(run_scenario, scenario_b(duration_ns=60 * SEC, seed=1))
    h6 = result.histograms[6]
    emit("fig_5_2", figure_5_2_report(h6))

    assert h6.count > 4000
    # Primary mode at ~2600us: 2000us copy + ~600us code.
    assert abs(h6.primary_mode() - 2_600 * US) <= 500 * US
    main = h6.fraction_within(2_600 * US, 500 * US)
    # Paper: 68%.  Shape band: the no-delay mode dominates but a large
    # minority of packets are delayed.
    assert 0.45 <= main <= 0.85
    # A secondary concentration of full-service waits around 9ms (paper's
    # 9400us +/- 500us band, widened for the model's resonance position).
    high = h6.fraction_between(8_400 * US, 10_400 * US)
    assert high >= 0.05
    # Spread between the modes (paper: 16.5%).
    mid = h6.fraction_between(3_100 * US, 8_400 * US)
    assert 0.08 <= mid <= 0.45
    # Tails stay small (paper: ~2% overall, extending to 14000us).
    assert 1 - h6.fraction_between(0, 14_000 * US) <= 0.03
    # Delayed packets come in runs -- the paper's "catch up" trains.
    delayed = [s > 3_200 * US for s in h6.samples]
    runs, current = [], 0
    for d in delayed:
        current = current + 1 if d else 0
        if current:
            runs.append(current)
    assert runs and max(runs) >= 5
