"""BASELINE: the Section 1 motivating result.

Paper: "The initial test was to transport 16KBytes/sec of audio data ...
This worked extremely well within the current UNIX model.  We then tested
the use of 150KBytes/sec to simulate compressed video or Compact Disc
quality audio.  This test of data transport failed completely."

We run the stock Figure 2-1 relay (user process: read device, write
socket; on the receiver: read socket, write device) at both rates, on
machines that also run a competing compute-bound process, and compare with
the CTMS direct path at the failing rate.
"""

from repro.core.session import CTMSSession
from repro.experiments.baseline import run_rate_comparison, run_stock_relay
from repro.experiments.reporting import emit, format_table
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.experiments.runner import run_scenario
from repro.sim.units import SEC


def test_baseline_16_works_150_fails(once):
    results = once(run_rate_comparison, duration_ns=25 * SEC, seed=3)

    rows = []
    for rate, r in sorted(results.items()):
        rows.append(
            [
                f"{rate // 1000} KB/s",
                f"{r.delivered_fraction * 100:.1f}%",
                f"{r.glitch_rate_per_sec():.2f}/s",
                f"{r.achieved_bytes_per_sec() / 1000:.1f} KB/s",
                "works" if r.works() else "FAILS",
            ]
        )
    emit(
        "baseline_rates",
        format_table(
            "Section 1: the stock UNIX relay (user-level process, UDP/IP)",
            ["offered rate", "delivered", "glitches", "achieved", "verdict"],
            rows,
        ),
    )

    low, high = results[16_000], results[150_000]
    # "worked extremely well"
    assert low.works()
    assert low.glitches == 0
    # "failed completely": sustained, audible glitching.
    assert not high.works()
    assert high.glitch_rate_per_sec() > 1.0


def test_ctms_sustains_the_rate_the_stock_path_cannot(once):
    # The same 150KB/s-class stream through the CTMS prototype, on the
    # *loaded* public ring, is glitch-free.
    result = once(
        run_scenario, scenario_b(duration_ns=25 * SEC, seed=3)
    )
    tracker = result.tracker
    assert tracker.lost_packets == 0
    assert result.stream.throughput_bytes_per_sec() > 160_000
