"""PURGE: Ring Purge behaviour and the recovery options (Sections 4-5).

Paper observations reproduced here:

* insertions run at ~20/day and each causes a back-to-back burst of ~10
  purges (~100-130 ms of dead ring);
* a purge may lose exactly the frame in flight, and the stock adapter gives
  the driver *no indication* -- "the sole source of dropped packets for
  which no correction can be made";
* the paper's shipped recovery: "allow for the loss of a single packet",
  detect the gap at the sink, continue;
* the paper's wished-for adapter (purge interrupt) enables retransmission
  from the fixed DMA buffer, at the price of possible duplicates the
  receiver must ignore.
"""

from repro.core.session import CTMSSession
from repro.experiments.reporting import emit, format_table
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.experiments.testbed import HostConfig, Testbed
from repro.sim.units import MINUTE, MS, SEC


def run_purge_experiment(purge_retransmit: bool, n_purges: int = 30, seed: int = 6):
    scenario = scenario_a(seed=seed)
    bed = Testbed(seed=seed, mac_utilization=scenario.mac_utilization)
    tx_tr, tx_vca = scenario.transmitter_config()
    rx_tr, rx_vca = scenario.receiver_config()
    tx_tr.purge_retransmit = purge_retransmit
    tx = bed.add_host(HostConfig(name="transmitter", tr=tx_tr, vca=tx_vca))
    rx = bed.add_host(HostConfig(name="receiver", tr=rx_tr, vca=rx_vca))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    # Purge while a CTMSP frame is mid-flight: packets leave every 12ms and
    # spend ~4ms on the wire, so purging at a fixed phase inside the period
    # reliably catches some in flight.
    for i in range(n_purges):
        bed.sim.schedule((1 + i) * 500 * MS + 7 * MS, bed.ring.purge)
    bed.run((n_purges + 2) * 500 * MS)
    return bed, tx, rx, session


def test_purge_loses_single_packets_and_sink_recovers(once):
    bed, tx, rx, session = once(run_purge_experiment, False)
    tracker = session.sink_tracker
    lost_on_ring = bed.ring.stats_lost_by_protocol.get("ctmsp", 0)
    assert lost_on_ring >= 5  # the phase-locked purges caught real frames
    # Every wire loss shows up as a single-packet gap at the sink; the
    # stream continues (the paper's "adding code to recover").
    assert tracker.lost_packets == lost_on_ring
    assert tracker.gaps == lost_on_ring
    assert tracker.duplicates == 0
    # The transmitter's driver never knew: stock firmware hides the purge.
    assert tx.tr_driver.stats_retransmits == 0
    # Loss stays at the "safely ignore" level the paper accepted.
    assert tracker.loss_fraction() < 0.02

    emit(
        "ring_purge_stock",
        format_table(
            "Ring Purge with the stock adapter (no purge indication)",
            ["quantity", "value"],
            [
                ["purges issued", str(bed.ring.stats_purges)],
                ["frames lost on the wire", str(lost_on_ring)],
                ["gaps detected at sink", str(tracker.gaps)],
                ["duplicates at sink", "0"],
                ["stream loss fraction", f"{tracker.loss_fraction() * 100:.2f}%"],
            ],
        ),
    )


def test_hypothetical_purge_interrupt_recovers_by_retransmission(once):
    bed, tx, rx, session = once(run_purge_experiment, True)
    tracker = session.sink_tracker
    lost_on_ring = bed.ring.stats_lost_by_protocol.get("ctmsp", 0)
    assert lost_on_ring >= 5
    # The Section 4 adapter-with-purge-interrupt: the driver retransmits
    # "the last packet that is still in the fixed DMA buffer" -- no data
    # copy needed -- and the sink sees no gaps.
    assert tx.tr_driver.stats_retransmits == lost_on_ring
    assert tracker.lost_packets == 0
    assert tracker.gaps == 0

    emit(
        "ring_purge_retransmit",
        format_table(
            "Ring Purge with the hypothetical purge-interrupt adapter",
            ["quantity", "value"],
            [
                ["frames lost on the wire", str(lost_on_ring)],
                ["driver retransmissions", str(tx.tr_driver.stats_retransmits)],
                ["gaps at sink", str(tracker.gaps)],
                ["duplicates ignored at sink", str(tracker.duplicates)],
            ],
        ),
    )


def test_insertion_rate_statistics(once):
    """~20 insertions/day at ~10 purges each, measured over simulated hours."""

    def run():
        bed = Testbed(seed=8, mac_utilization=0.0, insertions_per_day=20.0)
        bed.start_environment()
        bed.run(6 * 60 * MINUTE)
        return bed

    bed = once(run)
    inserter = bed.inserter
    # 20/day over 6 hours -> ~5 expected; Poisson tolerance.
    assert 1 <= inserter.stats_insertions <= 12
    per_insertion = bed.ring.stats_purges / max(1, inserter.stats_insertions)
    assert 8 <= per_insertion <= 13  # "on the order of 10 ... back to back"
