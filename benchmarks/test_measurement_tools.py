"""TOOLS: Section 5.2's instrument error budgets, reproduced.

* Logic analyzer on the VCA IRQ line: the period is stable to ~500 ns
  ("conclusive proof that the VCA interrupt source was completely solid").
* Logic analyzer on IRQ-to-handler-entry: "Even while loading the Token
  Ring and the local disk, the largest variation seen was 440 microseconds."
* PC/AT timestamper against the bare IRQ line: "a 120 microsecond spread on
  both sides of the 12 millisecond mean"; service loop worst case 60 us.
* RT/PC pseudo-driver: clock granularity "only 122 microseconds".
"""

from repro.experiments.reporting import emit, format_table
from repro.experiments.testbed import HostConfig, Testbed
from repro.hardware import calibration
from repro.hardware.cpu import Exec
from repro.hardware.parallel_port import ParallelPort
from repro.measure.histogram import Histogram
from repro.measure.logic_analyzer import LogicAnalyzer
from repro.measure.pcat import PcatTimestamper
from repro.measure.pseudo_driver import PseudoDriverTracer
from repro.sim.units import MS, SEC, US


def _build_loaded_host(seed=9):
    bed = Testbed(seed=seed, mac_utilization=0.004)
    host = bed.add_host(HostConfig(name="probe-host", multiprogramming=True))
    return bed, host


def run_tool_characterization(duration_ns=30 * SEC):
    bed, host = _build_loaded_host()
    sim = bed.sim

    # 1. Logic analyzer straight on the IRQ line.
    analyzer = LogicAnalyzer(depth=8192)
    analyzer.attach(host.vca_adapter.irq_listeners)

    # 2. Handler-entry times (recorded exactly, as the analyzer's second
    # probe on a handler-owned signal would).
    entries = []

    def handler():
        entries.append(sim.now)
        yield Exec(50 * US)

    host.vca_adapter.attach_handler(handler)

    # 3. PC/AT timestamper on the same IRQ line.
    pcat = PcatTimestamper(sim, bed.rng)
    pcat.start()
    port = ParallelPort(sim, "irq-line")
    pcat.connect(0, port)
    count = {"n": 0}

    def pulse(_t):
        port.emit(count["n"] & 0x7F)
        count["n"] += 1

    host.vca_adapter.irq_listeners.append(pulse)

    # 4. Pseudo-driver tracer on the handler entry.
    tracer = PseudoDriverTracer(sim)
    probe = tracer.probe("entry")
    original = host.vca_adapter.handler_factory

    def traced_handler():
        intrusion = probe(count["n"])  # the recording procedure's cost
        yield Exec(intrusion)
        yield from original()

    host.vca_adapter.attach_handler(traced_handler)

    host.vca_adapter.start()
    bed.run(duration_ns)
    return bed, analyzer, entries, pcat, tracer


def test_measurement_tool_error_budgets(once):
    bed, analyzer, entries, pcat, tracer = once(run_tool_characterization)

    # --- logic analyzer: VCA period stability -------------------------
    deviation = analyzer.max_deviation_from(12 * MS)
    assert 0 < deviation <= 2 * calibration.VCA_INTERRUPT_JITTER

    # --- IRQ to handler entry under load --------------------------------
    lat = [e - p for p, e in zip(analyzer.edges, entries)]
    worst = max(lat)
    base = calibration.IRQ_ENTRY_OVERHEAD
    assert worst - base <= 440 * US  # the paper's bound
    assert worst > min(lat)  # load produces real variation

    # --- PC/AT error against the bare line ------------------------------
    times = pcat.channel_times(0)
    intervals = Histogram([b - a for a, b in zip(times, times[1:])])
    spread_lo = 12 * MS - intervals.min()
    spread_hi = intervals.max() - 12 * MS
    budget = calibration.PCAT_EXPECTED_SPREAD + calibration.VCA_INTERRUPT_JITTER
    assert spread_lo <= budget + 5 * US
    assert spread_hi <= budget + 5 * US

    # --- pseudo-driver: 122us quantization ------------------------------
    granule = calibration.RTPC_CLOCK_GRANULARITY
    assert tracer.times("entry")
    assert all(t % granule == 0 for t in tracer.times("entry"))
    quant_err = [a - q for q, a in zip(tracer.times("entry"), entries)]
    assert all(0 <= e < granule + 500 * US for e in quant_err)

    rows = [
        ["logic analyzer: VCA period deviation", "~500 ns", f"{deviation} ns"],
        [
            "IRQ to handler entry, worst (loaded)",
            "<= 440 us variation",
            f"{(worst - base) / US:.0f} us over the {base // US} us floor",
        ],
        [
            "PC/AT spread around 12 ms",
            "+/- 120 us",
            f"-{spread_lo / US:.0f} / +{spread_hi / US:.0f} us",
        ],
        [
            "PC/AT service loop",
            "60 us worst case",
            f"{calibration.PCAT_LOOP_WORST_CASE // US} us (modeled)",
        ],
        [
            "pseudo-driver clock granularity",
            "122 us",
            f"{granule // US} us (all stamps quantized)",
        ],
    ]
    emit(
        "measurement_tools",
        format_table(
            "Section 5.2: measurement tool error budgets",
            ["quantity", "paper", "measured"],
            rows,
        ),
    )
