"""BUFFER: the Section 6 buffer-space conclusion.

Paper: "the worst case times between transmission and reception of a single
packet is 40 milliseconds.  There are two exceptional data points within the
120 to 130 millisecond range. ... Even with these exceptional data points,
the buffer space needed for 150KBytes/sec CTMSP data transfer is under
25KBytes."

We size the buffer analytically, then validate it against a *measured*
delivery trace from the loaded ring including a ring-insertion outage, and
show that a buffer sized only for the 40 ms ordinary worst case glitches
across the insertion.
"""

from repro.core.buffering import PlayoutBuffer, max_drawdown_bytes, required_buffer_bytes
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.hardware import calibration
from repro.sim.units import MINUTE, MS, SEC

RATE = calibration.CTMSP_STREAM_RATE_BYTES_PER_SEC  # ~166 KB/s offered


def run_trace():
    scenario = scenario_b(
        duration_ns=4 * MINUTE, seed=4, insertions_per_day=24 * 40.0
    )
    result = run_scenario(scenario)
    return result


def test_buffer_sizing_under_25kb(once):
    result = once(run_trace)
    arrivals = result.stream.arrival_times
    assert result.testbed.inserter.stats_insertions >= 1

    # The paper's analytic claim uses its nominal "150KBytes/sec" figure.
    paper_claim = required_buffer_bytes(150_000, 130 * MS)
    # Our validation sizes for the *measured* worst delivery gap at the
    # stream's true 166.7 KB/s rate (2000 bytes per 12 ms).
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    worst_gap = max(gaps)
    # Exact requirement: the worst cumulative drawdown of the trace (two
    # insertions close together compound, so single-gap sizing can
    # underestimate).
    drawdown = max_drawdown_bytes(arrivals, RATE)
    sized_buffer = drawdown + 2 * 2000
    small_buffer = required_buffer_bytes(RATE, 40 * MS)

    def playout(capacity):
        buf = PlayoutBuffer(
            capacity_bytes=capacity,
            rate_bytes_per_sec=RATE,
            # One packet of headroom above the prefill point so a catch-up
            # burst arriving early does not overflow.
            prefill_bytes=capacity - 2000,
        )
        buf.run(arrivals)
        buf.finish(arrivals[-1])
        return buf

    with_sized = playout(sized_buffer)
    with_small = playout(small_buffer)

    rows = [
        [
            "paper sizing: 150KB/s x 130ms worst case",
            "< 25000 B",
            f"{paper_claim} B",
        ],
        [
            "measured worst delivery gap",
            "120-130 ms (two insertions)",
            f"{worst_gap / MS:.0f} ms",
        ],
        [
            "worst cumulative drawdown (measured)",
            "-",
            f"{drawdown} B",
        ],
        [
            "buffer sized for the measured drawdown",
            "-",
            f"{sized_buffer} B",
        ],
        [
            "glitches with that buffer",
            "0 (conclusion: feasible)",
            str(with_sized.glitches),
        ],
        [
            "sizing for the 40ms ordinary worst case",
            "-",
            f"{small_buffer} B",
        ],
        [
            "glitches with only the 40ms-sized buffer",
            "(insertions would glitch)",
            str(with_small.glitches),
        ],
        [
            "peak buffer occupancy observed",
            "-",
            f"{with_sized.peak_occupancy} B",
        ],
    ]
    emit(
        "buffer_sizing",
        format_table(
            "Section 6: playout buffer sizing for 150 KB/s CTMSP",
            ["quantity", "paper", "measured"],
            rows,
        ),
    )

    # The headline conclusion: the paper's sizing is under 25 KB, and a
    # buffer in that class rides out real insertion outages.
    assert paper_claim < 25_000
    assert sized_buffer < 60_000  # same order as the paper's bound
    assert with_sized.glitches == 0
    assert with_sized.overflow_drops == 0
    # And the insertion outage is precisely why 40ms-sizing is not enough.
    assert with_small.glitches >= 1
