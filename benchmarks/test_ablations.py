"""ABLATE: the Section 5.3 toggle matrix, one switch at a time.

The paper lists the dimensions that "will alter the results"; DESIGN.md
calls out the ones worth ablating.  Each ablation flips one switch off the
Test Case B configuration and reports the effect, demonstrating *why* each
of the paper's modifications is in the design.  The matrix itself lives in
:mod:`repro.experiments.ablations` (also reachable via
``python -m repro ablate``).
"""

from repro.core.session import CTMSSession
from repro.experiments.ablations import TABLE_HEADERS, run_matrix
from repro.experiments.reporting import emit, format_table
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.experiments.testbed import HostConfig, Testbed
from repro.ring.station import RingStation
from repro.sim.units import MS, SEC, US
from repro.workloads.background import LightweightSender

DURATION = 25 * SEC


def test_ablations(once):
    summary = once(run_matrix, DURATION, 1)

    emit(
        "ablations",
        format_table(
            "Section 5.3 ablations (Test Case B, one switch flipped at a time)",
            TABLE_HEADERS,
            [entry.as_row() for entry in summary.values()],
        ),
    )

    base = summary["baseline (Test B)"]
    # System-memory DMA buffers: every adapter DMA steals cycles from the
    # memory-intensive computation (Section 4's argument, literally its
    # scenario).
    sysmem = summary["fixed DMA buffers in system memory"]
    assert sysmem.compute_chunks < 0.97 * base.compute_chunks

    # Per-packet header recomputation adds its fixed cost to every packet's
    # floor (Section 3's argument for the precomputed header).
    header = summary["recompute TR header per packet"]
    assert header.h6_min >= base.h6_min + 100 * US

    # Without driver priority, CTMSP queues behind ARP/IP locally: the
    # transmit-path tail grows.
    noprio = summary["no driver priority for CTMSP"]
    assert noprio.h6_p95 >= base.h6_p95

    # All variants still deliver (the modifications buy margin, not
    # correctness, on this workload).
    for name, entry in summary.items():
        assert entry.delivered > 1900, name
        assert entry.lost == 0, name


def _run_heavy_ring(ctmsp_ring_priority: int):
    """A CTMS stream sharing the ring with a compile storm (~45% wire)."""
    bed = Testbed(seed=6, mac_utilization=0.002)
    base = scenario_b(duration_ns=15 * SEC, seed=6)
    variant = base.variant("x", ctmsp_ring_priority=ctmsp_ring_priority)
    tx_tr, tx_vca = variant.transmitter_config()
    rx_tr, rx_vca = variant.receiver_config()
    tx = bed.add_host(HostConfig(name="transmitter", tr=tx_tr, vca=tx_vca))
    rx = bed.add_host(HostConfig(name="receiver", tr=rx_tr, vca=rx_vca))
    # Four busy stations attached after the hosts: without media priority a
    # CTMSP frame waits for each of their queued frames as the token works
    # around the ring; with priority the reservation jumps the whole pack.
    sink = RingStation(bed.ring, "fs-client")
    storms = [
        LightweightSender(
            bed, f"fileserver{i}", sink.address, info_bytes=1501,
            mean_packets_per_sec=38.0, rng=bed.rng,
        )
        for i in range(4)
    ]
    for storm in storms:
        storm.start()
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(15 * SEC)
    frames = bed.ring.stats_by_protocol["ctmsp"]["frames"]
    wait = bed.ring.stats_token_wait_ns.get("ctmsp", 0) / max(1, frames)
    return wait, session, bed


def test_ring_priority_matters_under_ring_load(once):
    """Section 3: "CTMSP uses a Token Ring priority above any other traffic"
    -- under a compile storm occupying ~45% of the wire, the priority keeps
    CTMSP's token access delay flat; without it the wait grows severalfold."""

    def run_both():
        with_priority, s1, _ = _run_heavy_ring(4)
        without_priority, s2, _ = _run_heavy_ring(0)
        return with_priority, without_priority, s1, s2

    with_priority, without_priority, s1, s2 = once(run_both)
    emit(
        "ring_priority_heavy",
        format_table(
            "Ring media priority under a compile storm (~45% wire load)",
            ["configuration", "mean CTMSP token wait"],
            [
                ["priority 4 (CTMSP above all)", f"{with_priority / US:.0f} us"],
                ["priority 0 (ordinary traffic)", f"{without_priority / US:.0f} us"],
            ],
        ),
    )
    assert without_priority > 1.3 * with_priority
    # Both still deliver (the ring has capacity; priority buys latency).
    assert s1.sink_tracker.lost_packets == 0
