"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's figures or in-text results,
prints a paper-vs-measured table (persisted under ``results/``), and asserts
the *shape* claims -- who wins, rough factors, where the modes sit -- not
absolute microsecond equality.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
