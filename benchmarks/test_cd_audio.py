"""CDAUDIO: Section 1's motivating medium, end to end.

"with Compact Disc audio, the transfer rate is 176.4KBytes/sec (44.1K
samples, 16 bits per sample, 2 channels). ... The destination machine must
then receive the data from the network and redirect the flow ... in such a
way that no discernible glitches are heard."

Two regimes:

* on a **private ring** (Test Case A conditions) CD audio streams
  glitch-free through a sub-25KB playout buffer;
* on the **loaded public ring** 176.4 KB/s sits at the very edge of the
  prototype adapter's service capacity (~10.4 ms per 2134-byte packet
  against a 12 ms period): the transmit queue grows under interference and
  a fraction of a percent of periods are shed at the source -- a real
  finding about why the paper evaluated at 150 KB/s.
"""

from repro.core.buffering import PlayoutBuffer, required_buffer_bytes
from repro.core.session import CTMSSession
from repro.experiments.reporting import emit, format_table
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.experiments.testbed import HostConfig, Testbed
from repro.sim.units import MS, SEC
from repro.workloads.background import BackgroundTraffic
from repro.workloads.media import CD_AUDIO


def run_cd_audio(duration_ns=60 * SEC, seed=5, loaded=True):
    scenario = scenario_b(duration_ns=duration_ns, seed=seed)
    bed = Testbed(seed=seed, mac_utilization=scenario.mac_utilization)
    tx_tr, _ = scenario.transmitter_config()
    rx_tr, rx_vca = scenario.receiver_config()
    tx = bed.add_host(
        HostConfig(
            name="transmitter",
            multiprogramming=loaded,
            tr=tx_tr,
            vca=CD_AUDIO.vca_config(),
        )
    )
    rx = bed.add_host(
        HostConfig(
            name="receiver", multiprogramming=loaded, tr=rx_tr, vca=rx_vca
        )
    )
    background = None
    if loaded:
        background = BackgroundTraffic(
            bed, [tx, rx], load=scenario.background_load
        )
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    if background is not None:
        background.start()
    bed.run(duration_ns)
    return bed, session


def test_cd_audio_glitch_free_on_private_ring(once):
    bed, session = once(run_cd_audio, loaded=False)
    stats = session.stats
    tracker = session.sink_tracker

    # Full-rate delivery, in order, lossless.
    assert tracker.lost_packets == 0
    assert tracker.reordered == 0
    achieved = stats.throughput_bytes_per_sec()
    assert achieved > 0.99 * CD_AUDIO.bytes_per_sec

    # Play it out: a sub-25KB buffer absorbs all delivery jitter.
    capacity = required_buffer_bytes(
        CD_AUDIO.bytes_per_sec, 60 * MS, packet_bytes=CD_AUDIO.packet_bytes
    )
    buf = PlayoutBuffer(
        capacity_bytes=capacity,
        rate_bytes_per_sec=CD_AUDIO.playout_rate(),
        # Only the audio payload is played out; the CTMSP header is not.
        packet_bytes=CD_AUDIO.bytes_per_period,
        prefill_bytes=capacity - 2 * CD_AUDIO.packet_bytes,
    )
    buf.run(stats.arrival_times)
    buf.finish(stats.arrival_times[-1])
    assert capacity < 25_000
    assert buf.glitches == 0
    assert buf.overflow_drops == 0

    emit(
        "cd_audio",
        format_table(
            "CD-quality audio (176.4 KB/s) over CTMSP, private ring",
            ["quantity", "value"],
            [
                ["packets delivered", str(stats.delivered)],
                ["achieved rate", f"{achieved / 1000:.1f} KB/s"],
                ["lost / duplicated / reordered", "0 / 0 / 0"],
                ["max source-to-sink latency", f"{stats.max_latency_ns() / MS:.1f} ms"],
                ["playout buffer", f"{capacity} B"],
                ["discernible glitches", str(buf.glitches)],
            ],
        ),
    )


def test_cd_audio_is_at_capacity_edge_on_loaded_ring(once):
    """176.4 KB/s exceeds what the prototype sustains under normal load --
    the capacity reason the paper's evaluation rate is 150 KB/s."""
    bed, session = once(run_cd_audio, seed=5, loaded=True)
    tx = bed.hosts["transmitter"]
    tracker = session.sink_tracker
    # The stream mostly works...
    assert tracker.loss_fraction() < 0.02
    # ...but the transmit queue builds under interference and some source
    # periods are shed -- unlike the 150 KB/s stream, which never loses any
    # (see test_baseline_rates.py).
    assert tx.tr_driver.stats_tx_queue_peak >= 5
    assert tx.vca_driver.stats_drops_no_mbufs + tracker.lost_packets >= 1
