"""SWEEP: CTMSP service quality versus background load.

An extension figure: the paper measures two load points (Test Case A's
silent ring, Test Case B's "normal loading").  This sweep fills in the
curve -- transmit-path delay and end-to-end tail latency as the background
load multiplier grows -- showing where the prototype's guarantees start to
bend and that delivery itself stays lossless well past "normal".
"""

from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.sim.units import MS, SEC, US

LOADS = (0.0, 0.5, 1.0, 2.0)
DURATION = 20 * SEC


def run_sweep():
    results = {}
    for load in LOADS:
        scenario = scenario_b(duration_ns=DURATION, seed=5)
        scenario = scenario.variant(f"load{load}", background_load=load)
        results[load] = run_scenario(scenario)
    return results


def test_load_sweep(once):
    results = once(run_sweep)

    rows = []
    summary = {}
    for load, result in results.items():
        h6, h7 = result.histograms[6], result.histograms[7]
        tracker = result.tracker
        entry = {
            "h6_p95": h6.percentile(95),
            "h7_p95": h7.percentile(95),
            "h7_max": h7.max(),
            "delayed": 1 - h6.fraction_within(2_600 * US, 500 * US),
            "lost": tracker.lost_packets,
            "util": result.testbed.ring.utilization(DURATION),
        }
        summary[load] = entry
        rows.append(
            [
                f"{load:.1f}x",
                f"{entry['util'] * 100:.0f}%",
                f"{entry['delayed'] * 100:.0f}%",
                f"{entry['h6_p95'] / US:.0f}",
                f"{entry['h7_p95'] / US:.0f}",
                f"{entry['h7_max'] / MS:.1f} ms",
                str(entry["lost"]),
            ]
        )
    emit(
        "load_sweep",
        format_table(
            "Extension: CTMSP service quality vs background load "
            "(1.0x is Test Case B's 'normal loading')",
            ["load", "ring util", "delayed pkts", "h6 p95(us)",
             "h7 p95(us)", "h7 max", "lost"],
            rows,
        ),
    )

    # Silent ring: essentially nothing is delayed.
    assert summary[0.0]["delayed"] < 0.05
    # Load monotonically increases the delayed fraction.
    delayed = [summary[l]["delayed"] for l in LOADS]
    assert all(b >= a - 0.02 for a, b in zip(delayed, delayed[1:]))
    assert summary[2.0]["delayed"] > summary[0.5]["delayed"] + 0.1
    # The transmit-path tail grows severalfold across the sweep.
    assert summary[2.0]["h6_p95"] > 2 * summary[0.0]["h6_p95"]
    # But the stream never loses a packet: CTMSP's guarantees hold, the
    # playout buffer just needs to cover a longer tail.
    for load in LOADS:
        assert summary[load]["lost"] == 0, load
