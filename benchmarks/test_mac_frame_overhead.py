"""MACLOAD: Section 4's MAC-frame interrupt-cost argument.

Paper: "the amount of MAC frame traffic on the Token Ring we use is between
0.2% and 1.0%.  The MAC frame packets are on the order of 20 bytes of data.
Given a 4Mbit Token Ring, there would be between 50 and 250 interrupts to
handle MAC frames per second.  This additional interrupt and software
decoding of packet headers would add an unacceptable amount of overhead to
detect the small number of Ring Purges that occur."

We sweep the MAC utilization band, count what a hypothetical
pass-MAC-frames-to-host adapter would deliver, and price the interrupt
load.
"""

from repro.experiments.reporting import emit, format_table
from repro.hardware import calibration
from repro.ring.monitor import ActiveMonitor
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import SEC, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import US

#: Cost to take the interrupt and parse one MAC frame header, per Section
#: 4's "additional interrupt and software decoding of packet headers".
MAC_SERVICE_COST = calibration.IRQ_ENTRY_OVERHEAD + 30 * US

DURATION = 30 * SEC


def measure_mac_band():
    results = []
    for util in (
        calibration.MAC_TRAFFIC_UTILIZATION_LOW,
        0.006,
        calibration.MAC_TRAFFIC_UTILIZATION_HIGH,
    ):
        sim = Simulator()
        ring = TokenRing(sim)
        monitor = ActiveMonitor(
            sim, ring, RandomStreams(4), mac_utilization=util
        )
        # A hypothetical adapter programmed "to read all MAC frames".
        promiscuous = RingStation(ring, "mac-listener", accept_mac_frames=True)
        seen = []
        promiscuous.receive = seen.append
        monitor.start()
        sim.run(until=DURATION)
        per_sec = len(seen) / (DURATION / SEC)
        cpu_fraction = per_sec * MAC_SERVICE_COST / SEC
        results.append((util, per_sec, cpu_fraction))
    return results


def test_mac_frame_interrupt_rate_band(once):
    results = once(measure_mac_band)
    rows = [
        [
            f"{util * 100:.1f}%",
            f"{per_sec:.0f}/s",
            f"{cpu * 100:.2f}%",
        ]
        for util, per_sec, cpu in results
    ]
    emit(
        "mac_frame_overhead",
        format_table(
            "Section 4: hypothetical host-visible MAC frame load "
            "(paper: 50-250 interrupts/s across the 0.2-1.0% band)",
            ["MAC utilization", "interrupts", "CPU overhead"],
            rows,
        ),
    )

    low = results[0]
    high = results[-1]
    # The paper's arithmetic: 0.2% -> ~50/s, 1.0% -> ~250/s.
    assert 35 <= low[1] <= 70
    assert 180 <= high[1] <= 320
    # The monotone cost relationship that makes the mode "unacceptable" for
    # catching ~20 purges/day.
    assert high[2] > 4 * low[2]
    assert high[2] >= 0.015  # >= 1.5% of the CPU for nothing, at the top end
