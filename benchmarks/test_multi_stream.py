"""MULTI: how many CTMS streams does a 4 Mbit Token Ring carry?

An extension experiment the paper's introduction begs for: "distributed
multimedia" means more than one stream.  Each 150 KB/s-class CTMSP stream
occupies ~168 KB/s of the ring's 500 KB/s raw capacity (2021 wire bytes per
12 ms), so the wire fits two streams comfortably and chokes on a third --
a crossover the experiment locates empirically.
"""

from repro.core.session import CTMSSession
from repro.experiments.reporting import emit, format_table
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.units import MS, SEC

DURATION = 20 * SEC


def run_streams(n_streams: int, seed: int = 21):
    bed = _Testbed(seed=seed, mac_utilization=0.002)
    sessions = []
    for i in range(n_streams):
        tx = bed.add_host(HostConfig(name=f"tx{i}"))
        rx = bed.add_host(HostConfig(name=f"rx{i}"))
        session = CTMSSession(tx.kernel, rx.kernel)
        session.establish()
        sessions.append((tx, rx, session))
    bed.run(DURATION)
    return bed, sessions


def run_sweep():
    results = {}
    for n in (1, 2, 3):
        bed, sessions = run_streams(n)
        per_stream = []
        for tx, rx, session in sessions:
            offered = tx.vca_adapter.stats_interrupts
            delivered = session.stats.delivered
            worst_latency = session.stats.max_latency_ns()
            queue_peak = tx.tr_driver.stats_tx_queue_peak
            per_stream.append(
                {
                    "offered": offered,
                    "delivered": delivered,
                    "fraction": delivered / max(1, offered),
                    "worst_latency_ns": worst_latency,
                    "queue_peak": queue_peak,
                }
            )
        results[n] = {
            "streams": per_stream,
            "ring_util": bed.ring.utilization(DURATION),
        }
    return results


def test_multi_stream_capacity(once):
    results = once(run_sweep)

    rows = []
    for n, data in results.items():
        worst = min(s["fraction"] for s in data["streams"])
        latency = max(s["worst_latency_ns"] for s in data["streams"])
        queue = max(s["queue_peak"] for s in data["streams"])
        rows.append(
            [
                str(n),
                f"{data['ring_util'] * 100:.0f}%",
                f"{worst * 100:.1f}%",
                f"{latency / MS:.1f} ms",
                str(queue),
            ]
        )
    emit(
        "multi_stream",
        format_table(
            "Extension: concurrent 166 KB/s CTMSP streams on one 4 Mbit ring",
            ["streams", "ring util", "worst delivery", "worst latency", "tx queue peak"],
            rows,
        ),
    )

    # One and two streams fit: full delivery, bounded latency.
    for n in (1, 2):
        for s in results[n]["streams"]:
            assert s["fraction"] > 0.99, (n, s)
            assert s["worst_latency_ns"] < 60 * MS
    # Two streams already use most of the wire.
    assert results[2]["ring_util"] > 0.60
    # Three streams exceed the ring: queues grow without bound and delivery
    # or latency collapses for at least one stream.
    three = results[3]["streams"]
    assert any(
        s["fraction"] < 0.97 or s["worst_latency_ns"] > 150 * MS or s["queue_peak"] > 20
        for s in three
    )
