"""Tests for TAP, the pseudo-driver tracer, and the logic analyzer."""

import pytest

from repro.core.ctmsp import PrecomputedHeader, standard_packet
from repro.hardware import calibration
from repro.measure.logic_analyzer import LogicAnalyzer
from repro.measure.pseudo_driver import PROBE_INTRUSION, PseudoDriverTracer
from repro.measure.tap import TapMonitor
from repro.ring.frames import Frame, mac_frame
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import MS, SEC, Simulator, US


def build_ring_with_tap():
    sim = Simulator()
    ring = TokenRing(sim)
    a = RingStation(ring, "a")
    b = RingStation(ring, "b")
    tap = TapMonitor(sim, ring)
    return sim, ring, a, b, tap


def ctmsp_frame(n):
    pkt = standard_packet(1, n, 7, header=PrecomputedHeader(src="a", dst="b"))
    return pkt.to_frame()


# ---------------------------------------------------------------------------
# TAP
# ---------------------------------------------------------------------------

def test_tap_records_the_papers_fields():
    sim, ring, a, b, tap = build_ring_with_tap()
    a.transmit(ctmsp_frame(3))
    sim.run(until=100 * MS)
    assert len(tap.records) == 1
    rec = tap.records[0]
    assert rec.total_length == 2021  # info + LLC framing on the wire
    assert len(rec.data_prefix) == 96  # "up to 96 bytes"
    assert rec.frame_control == 0x40  # LLC
    assert rec.packet_no == 3
    assert rec.status == "wire"


def test_tap_sees_mac_frames_too():
    sim, ring, a, b, tap = build_ring_with_tap()
    a.transmit(mac_frame("a"))
    sim.run(until=100 * MS)
    assert tap.records[0].protocol == "mac"
    assert tap.records[0].frame_control == 0x00
    assert tap.records[0].total_length == 20


def test_tap_capture_rate_limitation():
    """Back-to-back frames outrun the tool's record path."""
    sim, ring, a, b, tap = build_ring_with_tap()
    for i in range(10):
        a.transmit(Frame(src="a", dst="b", info_bytes=5, protocol="ip"))
    sim.run(until=SEC)
    # 26-byte frames take ~52us on the wire plus token turnaround (~25us
    # ring latency); that is below TAP's 120us minimum record gap, so some
    # records are missed.
    assert tap.stats_missed > 0
    assert len(tap.records) + tap.stats_missed == 10


def test_tap_detects_lost_ctmsp_packets():
    sim, ring, a, b, tap = build_ring_with_tap()
    for i in range(5):
        sim.schedule(i * 20 * MS, a.transmit, ctmsp_frame(i))
    # Purge during packet 2's flight (capture happens near 40ms, wire time
    # ~4ms -- purge at 42ms lands mid-frame).
    sim.schedule(42 * MS, ring.purge)
    sim.run(until=SEC)
    anomalies = tap.detect_ctmsp_anomalies()
    assert anomalies["lost"] >= 1
    assert anomalies["out_of_order"] == 0


def test_tap_size_census_matches_traffic_classes():
    sim, ring, a, b, tap = build_ring_with_tap()
    sim.schedule(0, a.transmit, mac_frame("a"))
    sim.schedule(5 * MS, a.transmit, Frame(src="a", dst="b", info_bytes=1501, protocol="ip"))
    sim.schedule(15 * MS, a.transmit, ctmsp_frame(0))
    sim.run(until=SEC)
    census = tap.size_census()
    assert census["mac"] == [20]
    assert census["ip"] == [1522]  # the paper's file-transfer size
    assert census["ctmsp"] == [2021]


def test_tap_utilization_by_class():
    sim, ring, a, b, tap = build_ring_with_tap()
    for i in range(10):
        sim.schedule(i * 12 * MS, a.transmit, ctmsp_frame(i))
    sim.run(until=120 * MS)
    util = tap.utilization_by_class(120 * MS)
    assert util["ctmsp"] == pytest.approx(10 * 2021 * 8 * 250 / (120 * MS), rel=0.01)


# ---------------------------------------------------------------------------
# pseudo-driver tracer
# ---------------------------------------------------------------------------

def test_pseudo_driver_quantizes_to_122us():
    sim = Simulator()
    tracer = PseudoDriverTracer(sim)
    probe = tracer.probe("p3")
    times = []
    for t in (100 * US, 250 * US, 10 * MS + 3 * US):
        sim.schedule(t, lambda t=t: times.append(probe(1)))
    sim.run()
    granule = calibration.RTPC_CLOCK_GRANULARITY
    assert [e.quantized_ns for e in tracer.entries] == [
        (t // granule) * granule for t in (100 * US, 250 * US, 10 * MS + 3 * US)
    ]


def test_pseudo_driver_reports_intrusion_cost():
    sim = Simulator()
    tracer = PseudoDriverTracer(sim)
    probe = tracer.probe("p3")
    assert probe(5) == PROBE_INTRUSION


def test_pseudo_driver_disable_flag():
    sim = Simulator()
    tracer = PseudoDriverTracer(sim)
    probe = tracer.probe("p3")
    tracer.enabled = False
    assert probe(1) == 0
    assert tracer.entries == []


def test_pseudo_driver_reads_packet_number_from_frames():
    sim = Simulator()
    tracer = PseudoDriverTracer(sim)
    probe = tracer.probe("p4")
    probe(ctmsp_frame(17))
    assert tracer.entries[0].packet_no == 17


def test_pseudo_driver_intervals():
    sim = Simulator()
    tracer = PseudoDriverTracer(sim)
    probe = tracer.probe("x")
    for t in (0, 12 * MS, 24 * MS):
        sim.schedule(t, probe, 0)
    sim.run()
    granule = calibration.RTPC_CLOCK_GRANULARITY
    for interval in tracer.intervals("x"):
        assert abs(interval - 12 * MS) <= granule


# ---------------------------------------------------------------------------
# logic analyzer
# ---------------------------------------------------------------------------

def test_logic_analyzer_records_exact_edges():
    la = LogicAnalyzer()
    listeners = []
    la.attach(listeners)
    for t in (5, 100, 10_000):
        listeners[0](t)
    assert la.edges == [5, 100, 10_000]


def test_logic_analyzer_depth_limit():
    la = LogicAnalyzer(depth=3)
    for t in range(10):
        la.on_edge(t)
    assert len(la.edges) == 3
    assert la.stats_overflowed


def test_logic_analyzer_trigger():
    la = LogicAnalyzer()
    la.trigger = lambda t: t >= 100
    for t in (10, 50, 100, 150):
        la.on_edge(t)
    assert la.edges == [100, 150]


def test_logic_analyzer_deviation_measure():
    la = LogicAnalyzer()
    for t in (0, 12 * MS + 300, 24 * MS - 200):
        la.on_edge(t)
    assert la.max_deviation_from(12 * MS) == 500
    assert LogicAnalyzer().max_deviation_from(12 * MS) == 0
