"""Tests for the PC/AT timestamper, its error model, and reconstruction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import calibration
from repro.hardware.parallel_port import ParallelPort
from repro.measure.pcat import (
    CLOCK_MODULUS,
    MARKER_CHANNEL,
    PcatTimestamper,
    match_by_packet_number,
)
from repro.sim import MS, SEC, Simulator, US
from repro.sim.rng import RandomStreams


def build(seed=4):
    sim = Simulator()
    tool = PcatTimestamper(sim, RandomStreams(seed))
    return sim, tool


def test_edge_produces_record_with_quantized_clock():
    sim, tool = build()
    port = ParallelPort(sim)
    tool.connect(0, port)
    sim.schedule(10 * MS, port.emit, 42)
    sim.run(until=11 * MS)
    assert len(tool.records) == 1
    rec = tool.records[0]
    assert rec.has(0)
    assert rec.values[0] == 42
    # 10ms / 2us = 5000 counts, plus service delay of up to ~120us.
    assert 5000 <= rec.clock16 <= 5000 + 60


def test_service_delay_within_error_budget():
    """Reconstructed time never deviates more than the paper's ~120us."""
    sim, tool = build()
    port = ParallelPort(sim)
    tool.connect(0, port)
    truth = []
    for i in range(200):
        t = (i + 1) * 12 * MS
        truth.append(t)
        sim.schedule(t, port.emit, i & 0x7F)
    sim.run(until=3 * SEC)
    times = tool.channel_times(0)
    assert len(times) == 200
    for measured, actual in zip(times, truth):
        err = measured - actual
        assert 0 <= err <= calibration.PCAT_EXPECTED_SPREAD + 2 * US


def test_marker_channel_reserved():
    sim, tool = build()
    with pytest.raises(ValueError):
        tool.connect(MARKER_CHANNEL, ParallelPort(sim))
    with pytest.raises(ValueError):
        tool.connect(9, ParallelPort(sim))


def test_rollover_reconstruction_across_minutes():
    """16-bit 2us clock rolls over every 131ms; the 50Hz marker saves us."""
    sim, tool = build()
    tool.start()
    port = ParallelPort(sim)
    tool.connect(0, port)
    truth = []
    # Sparse events: one per second, far beyond one rollover period apart.
    for i in range(10):
        t = (i + 1) * SEC
        truth.append(t)
        sim.schedule(t, port.emit, i)
    sim.run(until=11 * SEC)
    times = tool.channel_times(0)
    assert len(times) == 10
    for measured, actual in zip(times, truth):
        assert abs(measured - actual) <= 200 * US


def test_without_marker_sparse_events_misreconstruct():
    """Sanity check: the marker channel is what makes rollovers decodable."""
    sim, tool = build()
    port = ParallelPort(sim)
    tool.connect(0, port)
    sim.schedule(1 * SEC, port.emit, 0)
    sim.schedule(2 * SEC, port.emit, 1)  # ~7.6 rollovers later
    sim.run(until=3 * SEC)
    times = tool.channel_times(0)
    gap = times[1] - times[0]
    assert abs(gap - 1 * SEC) > 100 * MS  # grossly wrong without the marker


def test_concurrent_edges_share_one_record():
    sim, tool = build()
    p0, p1 = ParallelPort(sim), ParallelPort(sim)
    tool.connect(0, p0)
    tool.connect(1, p1)

    def both():
        p0.emit(1)
        p1.emit(2)

    sim.schedule(5 * MS, both)
    sim.run(until=6 * MS)
    assert len(tool.records) == 1
    rec = tool.records[0]
    assert rec.has(0) and rec.has(1)


def test_match_by_packet_number_simple():
    earlier = [(1000, 5), (13000, 6), (25000, 7)]
    later = [(11740, 5), (23740, 6), (35740, 7)]
    pairs = match_by_packet_number(earlier, later)
    assert pairs == [(10740, 5), (10740, 6), (10740, 7)]


def test_match_skips_lost_packets():
    earlier = [(1000, 5), (13000, 6), (25000, 7)]
    later = [(11740, 5), (35740, 7)]  # packet 6 lost in flight
    pairs = match_by_packet_number(earlier, later)
    assert [n for _d, n in pairs] == [5, 7]


def test_match_handles_7bit_wraparound():
    earlier = [(i * 12 * MS, i & 0x7F) for i in range(120, 140)]
    later = [(i * 12 * MS + 10 * MS, i & 0x7F) for i in range(120, 140)]
    pairs = match_by_packet_number(earlier, later)
    assert len(pairs) == 20
    assert all(d == 10 * MS for d, _n in pairs)


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=50))
def test_reconstruction_monotonic(gaps_ms):
    """Reconstructed absolute times are always non-decreasing."""
    sim, tool = build()
    tool.start()
    port = ParallelPort(sim)
    tool.connect(0, port)
    t = 0
    for gap in gaps_ms:
        t += gap * MS
        sim.schedule(t, port.emit, 1)
    sim.run(until=t + SEC)
    times = tool.channel_times(0)
    assert times == sorted(times)
