"""Tests for histogram CSV export."""

from repro.measure.histogram import Histogram
from repro.sim.units import US


def test_csv_has_header_and_rows():
    h = Histogram([100 * US, 150 * US, 900 * US], bin_width=100 * US)
    csv = h.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "bin_start_us,count"
    assert "100.0,2" in lines
    assert "900.0,1" in lines


def test_csv_row_counts_sum_to_samples():
    h = Histogram(list(range(0, 10_000, 7)), bin_width=500)
    total = sum(
        int(line.split(",")[1])
        for line in h.to_csv().strip().splitlines()[1:]
    )
    assert total == h.count


def test_csv_empty_histogram():
    assert Histogram().to_csv() == "bin_start_us,count\n"
