"""Tests for the histogram toolkit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.measure.histogram import Histogram
from repro.sim.units import MS, US


def test_basic_stats():
    h = Histogram([1000, 2000, 3000], name="t")
    assert h.count == 3
    assert h.mean() == 2000
    assert h.min() == 1000 and h.max() == 3000
    assert h.std() == pytest.approx(1000.0)


def test_empty_histogram_raises_on_stats():
    h = Histogram()
    with pytest.raises(ValueError):
        h.mean()
    assert len(h) == 0


def test_fraction_within_paper_idiom():
    # "68% of the data points within 500us of 2600us"
    samples = [2600 * US] * 68 + [9400 * US] * 15 + [5000 * US] * 17
    h = Histogram(samples)
    assert h.fraction_within(2600 * US, 500 * US) == pytest.approx(0.68)
    assert h.fraction_within(9400 * US, 500 * US) == pytest.approx(0.15)
    assert h.fraction_between(2800 * US, 9300 * US) == pytest.approx(0.17)


def test_percentile_nearest_rank():
    h = Histogram(list(range(1, 101)))
    assert h.percentile(50) == 50
    assert h.percentile(98) == 98
    assert h.percentile(100) == 100
    with pytest.raises(ValueError):
        h.percentile(101)


def test_primary_mode():
    h = Histogram([2600 * US] * 50 + [9400 * US] * 10, bin_width=100 * US)
    assert abs(h.primary_mode() - 2600 * US) <= 100 * US


def test_modes_detects_bimodality():
    import random

    rng = random.Random(1)
    samples = [round(rng.gauss(2600, 150)) * US for _ in range(300)]
    samples += [round(rng.gauss(9400, 300)) * US for _ in range(80)]
    h = Histogram(samples, bin_width=250 * US)
    modes = h.modes(min_separation=2 * MS)
    assert len(modes) == 2
    assert abs(modes[0] - 2600 * US) < 600 * US
    assert abs(modes[1] - 9400 * US) < 900 * US


def test_unimodal_has_single_mode():
    import random

    rng = random.Random(2)
    samples = [round(rng.gauss(10894, 60)) * US for _ in range(500)]
    h = Histogram(samples, bin_width=100 * US)
    assert len(h.modes(min_separation=1 * MS)) == 1


def test_ascii_rendering_contains_bars():
    h = Histogram([1000 * US] * 10 + [1100 * US] * 5, name="demo")
    art = h.to_ascii()
    assert "demo" in art
    assert "#" in art


def test_ascii_empty():
    assert "(empty)" in Histogram(name="x").to_ascii()


def test_invalid_bin_width():
    with pytest.raises(ValueError):
        Histogram(bin_width=0)


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
def test_bins_partition_all_samples(samples):
    h = Histogram(samples, bin_width=777)
    assert sum(h.bins().values()) == len(samples)


@given(
    st.lists(st.integers(min_value=0, max_value=10**7), min_size=2, max_size=100),
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=0, max_value=10**6),
)
def test_fraction_within_bounds(samples, center, halfwidth):
    h = Histogram(samples)
    f = h.fraction_within(center, halfwidth)
    assert 0.0 <= f <= 1.0


def test_summary_fields():
    h = Histogram([2 * MS, 3 * MS], name="s")
    s = h.summary()
    assert s["count"] == 2
    assert s["mean_us"] == 2500.0
