"""Unit tests for the Token Ring adapter hardware model."""

import pytest

from repro.hardware.machine import Machine
from repro.hardware.memory import Region
from repro.hardware.token_ring_adapter import TokenRingAdapter
from repro.ring.frames import Frame
from repro.ring.network import TokenRing
from repro.sim import MS, SEC, SimulationError, Simulator, US
from repro.sim.rng import RandomStreams
from repro.unix.copy import CopyLedger


def build(rx_buffers=2, purge_mode=False):
    sim = Simulator()
    ring = TokenRing(sim)
    m1 = Machine(sim, "m1", RandomStreams(1))
    m2 = Machine(sim, "m2", RandomStreams(1))
    a1 = TokenRingAdapter(
        m1, ring, "m1", ledger=CopyLedger(), rx_buffer_count=rx_buffers,
        purge_interrupt_mode=purge_mode,
    )
    a2 = TokenRingAdapter(
        m2, ring, "m2", ledger=CopyLedger(), rx_buffer_count=rx_buffers,
        purge_interrupt_mode=purge_mode,
    )
    return sim, ring, m1, m2, a1, a2


def frame(nbytes=2000, dst="m2"):
    return Frame(src="m1", dst=dst, info_bytes=nbytes, protocol="ip")


def test_transmit_command_fetches_then_sends_then_interrupts():
    sim, ring, m1, m2, a1, a2 = build()
    events = []

    def txdone():
        events.append(("txdone", sim.now))
        yield from iter(())

    a1.on_tx_complete = txdone
    f = frame()
    a1.command_transmit(f, Region.IO_CHANNEL)
    assert a1.tx_in_progress
    sim.run(until=SEC)
    assert not a1.tx_in_progress
    assert len(events) == 1
    # Command latency + fetch + wire + ring circulation all elapsed first.
    assert events[0][1] > 1_400 * US + 2_000 * US + 4_000 * US


def test_double_transmit_command_is_a_driver_bug():
    sim, ring, m1, m2, a1, a2 = build()
    a1.command_transmit(frame(), Region.IO_CHANNEL)
    with pytest.raises(SimulationError):
        a1.command_transmit(frame(), Region.IO_CHANNEL)


def test_rx_buffers_limit_concurrent_receives():
    sim, ring, m1, m2, a1, a2 = build(rx_buffers=1)
    # Never release the rx buffer: the second frame overruns.
    held = []

    def rx(frame, region):
        held.append(frame)
        yield from iter(())  # driver "forgets" to release

    a2.on_rx_frame = rx
    a1.command_transmit(frame(500), Region.IO_CHANNEL)
    sim.run(until=SEC)
    a1.command_transmit(frame(500), Region.IO_CHANNEL)
    sim.run(until=2 * SEC)
    assert len(held) == 1
    assert a2.stats_rx_overruns == 1


def test_release_underflow_rejected():
    sim, ring, m1, m2, a1, a2 = build()
    with pytest.raises(SimulationError):
        a2.release_rx_buffer()


def test_tx_dma_fetch_is_recorded_on_the_ledger():
    sim, ring, m1, m2, a1, a2 = build()
    a1.command_transmit(frame(1000), Region.IO_CHANNEL)
    sim.run(until=SEC)
    assert (Region.IO_CHANNEL, Region.ADAPTER) in a1.ledger.dma
    rec = a1.ledger.dma[(Region.IO_CHANNEL, Region.ADAPTER)]
    assert rec.bytes == 1000


def test_sysmem_fetch_contends_with_cpu():
    sim, ring, m1, m2, a1, a2 = build()
    from repro.hardware.cpu import Exec

    m1.cpu.interference_per_source = 1.0
    finished = []

    def compute():
        yield Exec(10 * MS)
        finished.append(sim.now)

    m1.cpu.spawn_base(compute())
    a1.command_transmit(frame(2000), Region.SYSTEM)
    sim.run(until=SEC)
    # 2000B fetch at 1.125us/B = 2.25ms of DMA at 2x slowdown steals
    # ~1.1ms of CPU progress.
    assert finished[0] > 10 * MS + 1 * MS


def test_purge_without_purge_mode_reports_normal_completion():
    sim, ring, m1, m2, a1, a2 = build(purge_mode=False)
    completions = []

    def txdone():
        completions.append("txdone")
        yield from iter(())

    a1.on_tx_complete = txdone
    a1.command_transmit(frame(2000), Region.IO_CHANNEL)
    # cmd (1.4ms) + fetch (2.25ms) put the frame on the wire ~3.7-7.7ms in.
    sim.schedule(5 * MS, ring.purge)
    sim.run(until=SEC)
    # Stock firmware: the driver sees an ordinary transmit completion even
    # though the ring model knows the frame died.
    assert completions == ["txdone"]
    assert a1.stats_tx_lost_in_purge == 1


def test_purge_mode_raises_the_special_interrupt():
    sim, ring, m1, m2, a1, a2 = build(purge_mode=True)
    events = []

    def txdone():
        events.append("txdone")
        a1.release_rx_buffer if False else None
        yield from iter(())

    def purge_seen():
        events.append("purge")
        yield from iter(())

    a1.on_tx_complete = txdone
    a1.on_purge_detected = purge_seen
    a1.command_transmit(frame(2000), Region.IO_CHANNEL)
    sim.schedule(5 * MS, ring.purge)
    sim.run(until=SEC)
    assert "purge" in events
    assert "txdone" not in events  # the purge path replaced the completion


def test_mac_frames_never_reach_the_host():
    from repro.ring.frames import mac_frame

    sim, ring, m1, m2, a1, a2 = build()
    got = []

    def rx(frame, region):
        got.append(frame)
        yield from iter(())

    a2.on_rx_frame = rx
    a1.station.transmit(mac_frame("m1"))
    sim.run(until=SEC)
    assert got == []
    assert a2.station.stats_mac_frames_seen == 1
