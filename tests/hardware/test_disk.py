"""Tests for the disk adapter model."""

import pytest

from repro.hardware.disk import (
    DISK_AVG_SEEK,
    DISK_NS_PER_BYTE,
    DISK_TRACK_BYTES,
    DISK_TRACK_SEEK,
    DiskAdapter,
)
from repro.hardware.machine import Machine
from repro.hardware.memory import Region
from repro.sim import MS, SEC, Simulator, US


def build():
    sim = Simulator()
    machine = Machine(sim, "server")
    machine.cpu.irq_entry_overhead = 0
    disk = DiskAdapter(machine)
    return sim, machine, disk


def make_handler(log, sim):
    def handler():
        log.append(sim.now)
        yield from iter(())

    return handler


def test_sequential_reads_skip_the_seek():
    sim, machine, disk = build()
    done = []
    # A far-away first read pays the full average seek...
    disk.read(100 * DISK_TRACK_BYTES, 8192, Region.IO_CHANNEL, make_handler(done, sim))
    sim.run()
    first = done[0]
    assert first >= DISK_AVG_SEEK + 8192 * DISK_NS_PER_BYTE
    # ...but the sequential continuation does not.
    disk.read(100 * DISK_TRACK_BYTES + 8192, 8192, Region.IO_CHANNEL, make_handler(done, sim))
    sim.run()
    assert done[1] - first < DISK_AVG_SEEK


def test_random_reads_pay_full_seeks():
    sim, machine, disk = build()
    done = []
    disk.read(50 * DISK_TRACK_BYTES, 1024, Region.IO_CHANNEL, make_handler(done, sim))
    disk.read(5 * DISK_TRACK_BYTES, 1024, Region.IO_CHANNEL, make_handler(done, sim))
    sim.run()
    assert done[1] - done[0] >= DISK_AVG_SEEK
    assert disk.stats_seeks == 2


def test_requests_queue_fifo():
    sim, machine, disk = build()
    done = []
    for i in range(3):
        disk.read(i * 1024, 1024, Region.IO_CHANNEL, make_handler(done, sim))
    sim.run()
    assert len(done) == 3
    assert done == sorted(done)


def test_sysmem_destination_contends_with_cpu():
    sim, machine, disk = build()
    from repro.hardware.cpu import Exec

    machine.cpu.interference_per_source = 1.0
    finished = []

    def compute():
        yield Exec(20 * MS)
        finished.append(sim.now)

    machine.cpu.spawn_base(compute())
    def nop():
        yield from iter(())

    disk.read(0, 16_384, Region.SYSTEM, nop)
    sim.run()
    # 16KB at 1us/B = ~16ms of DMA stealing cycles: the computation takes
    # notably longer than 20ms (+ context switch).
    assert finished[0] > 28 * MS


def test_iocm_destination_does_not_contend():
    sim, machine, disk = build()
    from repro.hardware.cpu import Exec

    machine.cpu.interference_per_source = 1.0
    finished = []

    def compute():
        yield Exec(20 * MS)
        finished.append(sim.now)

    machine.cpu.spawn_base(compute())
    def nop():
        yield from iter(())

    disk.read(0, 16_384, Region.IO_CHANNEL, nop)
    sim.run()
    assert finished[0] < 22 * MS


def test_sustained_rate_supports_cd_audio():
    sim, machine, disk = build()
    # Sequential streaming easily exceeds CD audio's 176.4 KB/s.
    assert disk.sustained_rate_bytes_per_sec(16_384) > 500_000


def test_empty_read_rejected():
    sim, machine, disk = build()
    def nop():
        yield from iter(())

    with pytest.raises(ValueError):
        disk.read(0, 0, Region.SYSTEM, nop)
