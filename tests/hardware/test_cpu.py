"""Unit tests for the preemptive CPU model."""

import pytest

from repro.hardware.cpu import CPU, Exec, SetSpl, Wait
from repro.sim import MS, SimulationError, Simulator, US


def make_cpu(irq_entry=0, ctx=0):
    sim = Simulator()
    cpu = CPU(sim, irq_entry_overhead=irq_entry, context_switch_cost=ctx)
    return sim, cpu


def test_base_frame_executes_work():
    sim, cpu = make_cpu()
    trace = []

    def body():
        yield Exec(100 * US)
        trace.append(sim.now)

    cpu.spawn_base(body())
    sim.run()
    assert trace == [100 * US]


def test_base_frames_run_one_at_a_time():
    sim, cpu = make_cpu()
    trace = []

    def body(tag):
        yield Exec(50 * US)
        trace.append((tag, sim.now))

    cpu.spawn_base(body("a"))
    cpu.spawn_base(body("b"))
    sim.run()
    assert trace == [("a", 50 * US), ("b", 100 * US)]


def test_interrupt_preempts_base_and_stretches_it():
    sim, cpu = make_cpu()
    trace = []

    def base():
        yield Exec(100 * US)
        trace.append(("base-done", sim.now))

    def handler():
        yield Exec(30 * US)
        trace.append(("irq-done", sim.now))

    cpu.spawn_base(base())
    sim.schedule(40 * US, cpu.raise_irq, 3, handler)
    sim.run()
    # base ran 40us, handler 30us, base finishes its remaining 60us at 130us.
    assert trace == [("irq-done", 70 * US), ("base-done", 130 * US)]


def test_irq_entry_overhead_delays_handler_body():
    sim, cpu = make_cpu(irq_entry=60 * US)
    trace = []

    def handler():
        trace.append(sim.now)
        yield Exec(0)

    cpu.raise_irq(5, handler)
    sim.run()
    assert trace == [60 * US]


def test_higher_level_irq_preempts_lower_handler():
    sim, cpu = make_cpu()
    trace = []

    def low():
        yield Exec(100 * US)
        trace.append(("low-done", sim.now))

    def high():
        yield Exec(10 * US)
        trace.append(("high-done", sim.now))

    cpu.raise_irq(2, low)
    sim.schedule(20 * US, cpu.raise_irq, 6, high)
    sim.run()
    assert trace == [("high-done", 30 * US), ("low-done", 110 * US)]


def test_same_or_lower_level_irq_pends_until_handler_exits():
    sim, cpu = make_cpu()
    trace = []

    def first():
        yield Exec(100 * US)
        trace.append(("first", sim.now))

    def second():
        yield Exec(10 * US)
        trace.append(("second", sim.now))

    cpu.raise_irq(4, first)
    sim.schedule(5 * US, cpu.raise_irq, 4, second)
    sim.run()
    assert trace == [("first", 100 * US), ("second", 110 * US)]
    assert cpu.stats_irq_pended == 1


def test_spl_blocks_interrupt_until_lowered():
    sim, cpu = make_cpu()
    trace = []

    def base():
        old = yield SetSpl(5)
        yield Exec(200 * US)  # protected section
        yield SetSpl(old)
        yield Exec(50 * US)
        trace.append(("base-done", sim.now))

    def handler():
        trace.append(("irq-ran", sim.now))
        yield Exec(10 * US)

    cpu.spawn_base(base())
    sim.schedule(50 * US, cpu.raise_irq, 3, handler)
    sim.run()
    # IRQ at 50us is masked by spl 5 until 200us, runs then; base resumes.
    assert trace[0] == ("irq-ran", 200 * US)
    assert trace[1] == ("base-done", 260 * US)


def test_setspl_returns_previous_level():
    sim, cpu = make_cpu()
    seen = []

    def base():
        old = yield SetSpl(6)
        seen.append(old)
        old2 = yield SetSpl(2)
        seen.append(old2)
        yield SetSpl(0)

    cpu.spawn_base(base())
    sim.run()
    assert seen == [0, 6]


def test_pending_irqs_dispatch_highest_level_first():
    sim, cpu = make_cpu()
    trace = []

    def blocker():
        yield SetSpl(7)
        yield Exec(100 * US)
        yield SetSpl(0)
        yield Exec(1 * US)

    def make_handler(tag):
        def handler():
            trace.append(tag)
            yield Exec(1 * US)

        return handler

    cpu.spawn_base(blocker())
    sim.schedule(10 * US, cpu.raise_irq, 2, make_handler("low"))
    sim.schedule(20 * US, cpu.raise_irq, 5, make_handler("high"))
    sim.run()
    assert trace == ["high", "low"]


def test_handler_spl_restored_on_exit():
    sim, cpu = make_cpu()

    def handler():
        yield Exec(10 * US)

    def base():
        yield SetSpl(2)
        yield Exec(50 * US)
        assert cpu.spl == 2
        yield SetSpl(0)

    cpu.spawn_base(base())
    sim.schedule(5 * US, cpu.raise_irq, 6, handler)
    sim.run()
    assert cpu.spl == 0


def test_wait_blocks_base_frame_and_resumes_with_value():
    sim, cpu = make_cpu()
    ev = sim.event()
    got = []

    def base():
        value = yield Wait(ev)
        got.append((value, sim.now))
        yield Exec(10 * US)

    cpu.spawn_base(base())
    sim.schedule(500 * US, ev.succeed, "data")
    sim.run()
    assert got == [("data", 500 * US)]


def test_other_base_frame_runs_while_first_waits():
    sim, cpu = make_cpu()
    ev = sim.event()
    trace = []

    def sleeper():
        yield Wait(ev)
        trace.append(("sleeper", sim.now))

    def worker():
        yield Exec(100 * US)
        trace.append(("worker", sim.now))

    cpu.spawn_base(sleeper())
    cpu.spawn_base(worker())
    sim.schedule(30 * US, ev.succeed, None)
    sim.run()
    # Worker occupies the CPU; sleeper wakes at 30us but must wait its turn.
    assert trace == [("worker", 100 * US), ("sleeper", 100 * US)]


def test_handler_may_not_wait():
    sim, cpu = make_cpu()
    ev = sim.event()

    def handler():
        yield Wait(ev)

    with pytest.raises(SimulationError):
        cpu.raise_irq(3, handler)


def test_round_robin_preemption_on_resched():
    sim, cpu = make_cpu()
    trace = []

    def long_job(tag):
        yield Exec(100 * US)
        trace.append((tag, sim.now))

    def clock_handler():
        cpu.preempt_base_round_robin()
        yield Exec(1 * US)

    cpu.spawn_base(long_job("a"))
    cpu.spawn_base(long_job("b"))
    sim.schedule(50 * US, cpu.raise_irq, 6, clock_handler)
    sim.run()
    # a runs 50us, clock fires, b gets the CPU, then a finishes.
    assert trace[0][0] == "b"
    assert trace[1][0] == "a"


def test_dma_contention_stretches_execution():
    sim, cpu = make_cpu()
    cpu.interference_per_source = 0.5
    trace = []

    def base():
        yield Exec(100 * US)
        trace.append(sim.now)

    cpu.spawn_base(base())
    # DMA into system memory runs from t=0 to t=60us.
    cpu.contention_started()
    sim.schedule(60 * US, cpu.contention_ended)
    sim.run()
    # First 60us progress at 1/1.5 rate -> 40us of work done; the remaining
    # 60us of work runs at full speed: total 120us.
    assert trace == [120 * US]


def test_contention_factor_accumulates_per_source():
    sim, cpu = make_cpu()
    cpu.interference_per_source = 0.35
    cpu.contention_started()
    cpu.contention_started()
    assert cpu.contention_factor() == pytest.approx(1.7)
    cpu.contention_ended()
    assert cpu.contention_factor() == pytest.approx(1.35)
    cpu.contention_ended()
    assert cpu.contention_factor() == 1.0


def test_contention_underflow_is_an_error():
    sim, cpu = make_cpu()
    with pytest.raises(SimulationError):
        cpu.contention_ended()


def test_context_switch_cost_applied():
    sim, cpu = make_cpu(ctx=80 * US)
    trace = []

    def body():
        yield Exec(20 * US)
        trace.append(sim.now)

    cpu.spawn_base(body())
    sim.run()
    assert trace == [100 * US]


def test_spawn_base_done_event_carries_return_value():
    sim, cpu = make_cpu()

    def body():
        yield Exec(1 * US)
        return "finished"

    done = cpu.spawn_base(body())
    sim.run()
    assert done.triggered and done.value == "finished"


def test_nested_preemption_three_levels():
    sim, cpu = make_cpu()
    trace = []

    def base():
        yield Exec(1 * MS)
        trace.append(("base", sim.now))

    def mid():
        yield Exec(200 * US)
        trace.append(("mid", sim.now))

    def top():
        yield Exec(50 * US)
        trace.append(("top", sim.now))

    cpu.spawn_base(base())
    sim.schedule(100 * US, cpu.raise_irq, 3, mid)
    sim.schedule(150 * US, cpu.raise_irq, 6, top)
    sim.run()
    assert trace == [
        ("top", 200 * US),      # 150 + 50
        ("mid", 350 * US),      # mid did 50us before preemption, 150 left
        ("base", 1 * MS + 250 * US),
    ]


def test_utilization_accounting():
    sim, cpu = make_cpu()

    def body():
        yield Exec(300 * US)

    cpu.spawn_base(body())
    sim.run(until=1 * MS)
    assert cpu.utilization(1 * MS) == pytest.approx(0.3, abs=0.01)


def test_lowering_spl_dispatches_pending_immediately():
    sim, cpu = make_cpu()
    trace = []

    def base():
        yield SetSpl(7)
        yield Exec(100 * US)
        yield SetSpl(0)  # pended IRQ must run *here*, before next Exec
        trace.append(("resumed", sim.now))
        yield Exec(1 * US)

    def handler():
        trace.append(("irq", sim.now))
        yield Exec(25 * US)

    cpu.spawn_base(base())
    sim.schedule(10 * US, cpu.raise_irq, 4, handler)
    sim.run()
    assert trace == [("irq", 100 * US), ("resumed", 125 * US)]
