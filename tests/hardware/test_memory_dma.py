"""Tests for memory regions, copy costs, and DMA contention."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware import calibration
from repro.hardware.cpu import CPU, Exec
from repro.hardware.dma import DMAEngine
from repro.hardware.memory import (
    MemorySystem,
    Region,
    cpu_copy_cost,
)
from repro.sim import MS, Simulator, US


def test_paper_copy_rate_sys_to_iocm():
    # "on the order of 1 microsecond per byte" -> 2000 bytes = 2000 us.
    assert cpu_copy_cost(Region.SYSTEM, Region.IO_CHANNEL, 2000) == 2000 * US


def test_sys_to_sys_is_much_cheaper_than_crossing_io_channel():
    same = cpu_copy_cost(Region.SYSTEM, Region.SYSTEM, 1000)
    cross = cpu_copy_cost(Region.SYSTEM, Region.IO_CHANNEL, 1000)
    assert cross >= 5 * same


@given(
    st.sampled_from(list(Region)),
    st.sampled_from(list(Region)),
    st.integers(min_value=0, max_value=100_000),
)
def test_copy_cost_is_linear_in_bytes(src, dst, n):
    if (src, dst) not in __import__("repro.hardware.memory", fromlist=["CPU_COPY_COST"]).CPU_COPY_COST:
        return
    assert cpu_copy_cost(src, dst, n) == n * cpu_copy_cost(src, dst, 1)


def test_iocm_allocation_requires_card():
    with_card = MemorySystem(has_io_channel_memory=True)
    region = with_card.allocate("txbuf", Region.IO_CHANNEL, 4096)
    assert region.region is Region.IO_CHANNEL

    without = MemorySystem(has_io_channel_memory=False)
    with pytest.raises(ValueError):
        without.allocate("txbuf", Region.IO_CHANNEL, 4096)
    fallback = without.allocate("txbuf", Region.SYSTEM, 4096)
    assert fallback.region is Region.SYSTEM


def test_dma_contention_classification():
    involves = MemorySystem.dma_involves_cpu_memory
    assert involves(Region.SYSTEM, Region.ADAPTER)
    assert involves(Region.USER, Region.ADAPTER)
    assert not involves(Region.IO_CHANNEL, Region.ADAPTER)
    assert not involves(Region.ADAPTER, Region.ADAPTER)


def test_dma_transfer_duration_and_callback():
    sim = Simulator()
    engine = DMAEngine(sim, cpu=None, name="tr-dma", ns_per_byte=1000)
    done_at = []
    engine.transfer(2000, Region.IO_CHANNEL, Region.ADAPTER, lambda: done_at.append(sim.now))
    sim.run()
    assert done_at == [2000 * US]
    assert engine.stats_bytes == 2000


def test_dma_transfers_queue_fifo():
    sim = Simulator()
    engine = DMAEngine(sim, cpu=None, name="dma", ns_per_byte=100)
    order = []
    engine.transfer(10, Region.ADAPTER, Region.IO_CHANNEL, lambda: order.append(("a", sim.now)))
    engine.transfer(20, Region.ADAPTER, Region.IO_CHANNEL, lambda: order.append(("b", sim.now)))
    sim.run()
    assert order == [("a", 1000), ("b", 3000)]


def test_sysmem_dma_registers_cpu_contention():
    sim = Simulator()
    cpu = CPU(sim, irq_entry_overhead=0, context_switch_cost=0)
    cpu.interference_per_source = 1.0  # work runs at half speed under DMA
    engine = DMAEngine(sim, cpu=cpu, name="dma", ns_per_byte=1000)
    finish = []

    def body():
        yield Exec(100 * US)
        finish.append(sim.now)

    cpu.spawn_base(body())
    engine.transfer(50, Region.SYSTEM, Region.ADAPTER)  # 50us of DMA
    sim.run()
    # 50us at half speed = 25us of work done, then 75us at full speed.
    assert finish == [125 * US]


def test_iocm_dma_does_not_touch_cpu():
    sim = Simulator()
    cpu = CPU(sim, irq_entry_overhead=0, context_switch_cost=0)
    cpu.interference_per_source = 1.0
    engine = DMAEngine(sim, cpu=cpu, name="dma", ns_per_byte=1000)
    finish = []

    def body():
        yield Exec(100 * US)
        finish.append(sim.now)

    cpu.spawn_base(body())
    engine.transfer(50, Region.IO_CHANNEL, Region.ADAPTER)
    sim.run()
    assert finish == [100 * US]
    assert engine.stats_contending_transfers == 0


def test_zero_byte_dma_rejected():
    sim = Simulator()
    engine = DMAEngine(sim, cpu=None, name="dma", ns_per_byte=100)
    with pytest.raises(ValueError):
        engine.transfer(0, Region.SYSTEM, Region.SYSTEM)
