"""Tests for the VCA interrupt source and the parallel measurement port."""

import statistics

from repro.hardware import calibration
from repro.hardware.cpu import CPU, Exec
from repro.hardware.machine import Machine
from repro.hardware.parallel_port import ParallelPort
from repro.hardware.vca import VoiceCommunicationsAdapter
from repro.sim import MS, SEC, Simulator, US
from repro.sim.rng import RandomStreams


def make_vca(jitter=calibration.VCA_INTERRUPT_JITTER):
    sim = Simulator()
    cpu = CPU(sim, irq_entry_overhead=0, context_switch_cost=0)
    vca = VoiceCommunicationsAdapter(
        sim, cpu.raise_irq, RandomStreams(3), jitter=jitter
    )
    return sim, cpu, vca


def test_vca_period_is_12ms_within_500ns():
    sim, cpu, vca = make_vca()
    edges = []
    vca.irq_listeners.append(edges.append)
    vca.start()
    sim.run(until=1 * SEC)
    assert len(edges) == 83  # floor(1s / 12ms)
    intervals = [b - a for a, b in zip(edges, edges[1:])]
    # Paper: second pulse varies "on the order of 500 nanoseconds from 12ms".
    assert all(abs(iv - 12 * MS) <= 2 * calibration.VCA_INTERRUPT_JITTER for iv in intervals)
    # Jitter is phase noise, not drift: edge N stays near N*12ms.
    assert abs(edges[-1] - 83 * 12 * MS) <= calibration.VCA_INTERRUPT_JITTER


def test_vca_without_jitter_is_exact():
    sim, cpu, vca = make_vca(jitter=0)
    edges = []
    vca.irq_listeners.append(edges.append)
    vca.start()
    sim.run(until=120 * MS)
    assert edges == [i * 12 * MS for i in range(1, 11)]


def test_vca_raises_host_interrupt():
    sim, cpu, vca = make_vca(jitter=0)
    entries = []

    def handler():
        entries.append(sim.now)
        yield Exec(10 * US)

    vca.attach_handler(handler)
    vca.start()
    sim.run(until=40 * MS)
    assert entries == [12 * MS, 24 * MS, 36 * MS]
    assert vca.stats_interrupts == 3


def test_vca_stop_halts_interrupts():
    sim, cpu, vca = make_vca(jitter=0)
    edges = []
    vca.irq_listeners.append(edges.append)
    vca.start()
    sim.run(until=30 * MS)
    vca.stop()
    sim.run(until=100 * MS)
    assert len(edges) == 2


def test_vca_buffer_is_2k_by_16_bits():
    sim, cpu, vca = make_vca()
    assert vca.buffer.capacity == 4096


def test_parallel_port_delivers_latched_value_on_strobe():
    sim = Simulator()
    port = ParallelPort(sim)
    got = []
    port.sink = lambda t, v: got.append((t, v))
    port.write(0x7F)
    sim.run(until=5 * US)
    assert got == []  # write alone does not present data
    port.strobe()
    assert got == [(5 * US, 0x7F)]


def test_parallel_port_masks_to_8_bits():
    sim = Simulator()
    port = ParallelPort(sim)
    got = []
    port.sink = lambda t, v: got.append(v)
    port.emit(0x1FF)
    assert got == [0xFF]


def test_parallel_port_without_sink_is_safe():
    sim = Simulator()
    port = ParallelPort(sim)
    port.emit(1)
    assert port.stats_strobes == 1


def test_machine_assembles_and_forks_rng():
    sim = Simulator()
    m1 = Machine(sim, "transmitter", RandomStreams(1))
    m2 = Machine(sim, "receiver", RandomStreams(1))
    assert m1.rng.get("x").random() != m2.rng.get("x").random()
    m1.add_adapter("tr0", object())
    try:
        m1.add_adapter("tr0", object())
        raise AssertionError("duplicate slot accepted")
    except ValueError:
        pass


def test_machine_without_iocm_card():
    sim = Simulator()
    machine = Machine(sim, "stock", has_io_channel_memory=False)
    assert not machine.memory.has_io_channel_memory
