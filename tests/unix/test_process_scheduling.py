"""Tests for user-process scheduling details the baseline depends on."""

import pytest

from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.hardware import calibration
from repro.sim.units import MS, SEC, US
from repro.unix.process import UserProcess


def build_host(seed=7, multiprogramming=False):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    host = bed.add_host(
        HostConfig(name="host", multiprogramming=multiprogramming)
    )
    bed.add_host(HostConfig(name="anchor"))
    return bed, host


def test_sleep_timeout_wakes_on_clock_tick_boundaries():
    """BSD timed wakeups happen from softclock at the next tick."""
    bed, host = build_host()
    wake_times = []

    def body(proc):
        for request in (3 * MS, 7 * MS, 25 * MS):
            yield from proc.sleep_timeout(request)
            wake_times.append(bed.sim.now)

    UserProcess(host.kernel, "sleeper").start(body)
    bed.run(200 * MS)
    tick = calibration.CLOCK_TICK
    assert len(wake_times) == 3
    # The wakeup fires on the tick; the process then pays dispatch and
    # context-switch costs before its first instruction runs.
    for t in wake_times:
        assert t % tick <= 500 * US, t


def test_sleep_ns_wakes_exactly():
    bed, host = build_host()
    wake_times = []

    def body(proc):
        yield from proc.sleep_ns(3 * MS + 7 * US)
        wake_times.append(bed.sim.now)

    UserProcess(host.kernel, "sleeper").start(body)
    bed.run(100 * MS)
    # Exact wake (the process still waits for the CPU afterwards, but the
    # timestamp here is taken as its first instruction runs).
    assert wake_times[0] >= 3 * MS + 7 * US
    assert wake_times[0] < 4 * MS


def test_round_robin_shares_cpu_between_two_hogs():
    bed, host = build_host()
    progress = {"a": 0, "b": 0}

    def hog(tag):
        def body(proc):
            while True:
                yield from proc.compute(1 * MS)
                progress[tag] += 1

        return body

    UserProcess(host.kernel, "a").start(hog("a"))
    UserProcess(host.kernel, "b").start(hog("b"))
    bed.run(2 * SEC)
    total = progress["a"] + progress["b"]
    assert total > 1000  # most of 2 seconds went to useful work
    share = progress["a"] / total
    assert 0.4 < share < 0.6  # fair to within the quantum


def test_interactive_process_not_starved_by_hog():
    """A process that sleeps and wakes still gets CPU against a hog."""
    bed, host = build_host()
    iterations = []

    def hog(proc):
        while True:
            yield from proc.compute(5 * MS)

    def interactive(proc):
        while True:
            yield from proc.sleep_ns(12 * MS)
            yield from proc.compute(1 * MS)
            iterations.append(bed.sim.now)

    UserProcess(host.kernel, "hog").start(hog)
    UserProcess(host.kernel, "ia").start(interactive)
    bed.run(1 * SEC)
    # ~83 periods; each needs a wakeup + up to a quantum of queueing.
    assert len(iterations) > 35


def test_syscall_counts_accumulate():
    bed, host = build_host()

    class Null:
        def dev_read(self, proc, n):
            yield from iter(())
            return n

    host.kernel.register_device("null", Null())
    proc = UserProcess(host.kernel, "p")

    def body(p):
        for _ in range(5):
            yield from p.read("null", 10)

    proc.start(body)
    bed.run(100 * MS)
    assert proc.stats_syscalls == 5


def test_kernel_noise_rates_by_mode():
    bed_a, host_a = build_host(multiprogramming=False)
    bed_b, host_b = build_host(multiprogramming=True)
    bed_a.run(2 * SEC)
    bed_b.run(2 * SEC)
    assert host_b.kernel.stats_noise_sections > host_a.kernel.stats_noise_sections
    # Stand-alone mode's calibrated 20/s.
    assert host_a.kernel.stats_noise_sections == pytest.approx(40, rel=0.5)
