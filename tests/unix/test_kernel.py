"""Tests for the kernel: clock, sleep/wakeup, noise, copy ledger, processes."""

import pytest

from repro.hardware import calibration
from repro.hardware.cpu import Exec
from repro.hardware.machine import Machine
from repro.hardware.memory import Region
from repro.sim import MS, SEC, Simulator, US
from repro.sim.rng import RandomStreams
from repro.unix.copy import CopyLedger, cpu_copy
from repro.unix.kernel import Kernel
from repro.unix.process import UserProcess


def make_kernel(multiprogramming=False, noise=None):
    sim = Simulator()
    machine = Machine(sim, "host", RandomStreams(5))
    kernel = Kernel(machine, multiprogramming=multiprogramming, noise_rate_per_sec=noise)
    return sim, machine, kernel


def test_clock_ticks_at_hz_100():
    sim, machine, kernel = make_kernel(noise=0)
    kernel.start()
    sim.run(until=1 * SEC)
    assert kernel.stats_clock_ticks == 100


def test_clock_drives_round_robin_between_processes():
    sim, machine, kernel = make_kernel(noise=0)
    kernel.start()
    finish = {}

    def hog(tag):
        yield Exec(25 * MS)
        finish[tag] = sim.now

    kernel.spawn_process(hog("a"), name="a")
    kernel.spawn_process(hog("b"), name="b")
    sim.run(until=200 * MS)
    # Without round-robin, a would finish at ~25ms and b at ~50ms; with the
    # 10ms quantum they interleave and finish within one quantum of each
    # other.
    assert abs(finish["a"] - finish["b"]) < 12 * MS


def test_sleep_wakeup():
    sim, machine, kernel = make_kernel(noise=0)
    kernel.start()
    log = []

    def sleeper(proc):
        value = yield from kernel.sleep("vca-buffer")
        log.append((sim.now, value))

    proc = UserProcess(kernel, "sleeper")
    proc.start(sleeper)
    sim.schedule(30 * MS, kernel.wakeup, "vca-buffer", "data-ready")
    sim.run(until=100 * MS)
    assert len(log) == 1
    t, value = log[0]
    assert value == "data-ready"
    assert t >= 30 * MS


def test_wakeup_wakes_all_sleepers():
    sim, machine, kernel = make_kernel(noise=0)
    kernel.start()
    woken = []

    def sleeper(tag):
        yield from kernel.sleep("chan")
        woken.append(tag)

    kernel.spawn_process(sleeper("x"), name="x")
    kernel.spawn_process(sleeper("y"), name="y")
    sim.run(until=5 * MS)
    assert kernel.wakeup("chan") == 2
    sim.run(until=10 * MS)
    assert sorted(woken) == ["x", "y"]


def test_wakeup_empty_channel_is_harmless():
    sim, machine, kernel = make_kernel(noise=0)
    assert kernel.wakeup("nobody") == 0


def test_kernel_noise_delays_interrupt_entry():
    """Protected sections must add interrupt-entry jitter under load."""
    latencies_quiet = _measure_irq_latencies(noise_rate=0.0)
    latencies_noisy = _measure_irq_latencies(noise_rate=400.0)
    assert max(latencies_noisy) > max(latencies_quiet)
    # Paper bound: even under load the variation stays under ~440us beyond
    # the base entry cost.
    base = calibration.IRQ_ENTRY_OVERHEAD
    assert max(latencies_noisy) - base <= 600 * US


def _measure_irq_latencies(noise_rate):
    sim, machine, kernel = make_kernel(noise=noise_rate)
    kernel.start()
    latencies = []

    def fire():
        raised_at = sim.now

        def handler():
            latencies.append(sim.now - raised_at)
            yield Exec(10 * US)

        machine.cpu.raise_irq(calibration.SPL_VCA, handler, name="probe")

    for i in range(200):
        sim.schedule((i + 1) * 12 * MS, fire)
    sim.run(until=3 * SEC)
    return latencies


def test_copy_ledger_records_and_charges():
    sim, machine, kernel = make_kernel(noise=0)
    kernel.start()
    done = []

    def body():
        yield from cpu_copy(kernel.ledger, Region.SYSTEM, Region.IO_CHANNEL, 2000)
        done.append(sim.now)

    machine.cpu.spawn_base(body())
    sim.run(until=50 * MS)
    # The paper's 1 us/byte constant: 2000 bytes -> 2000 us (plus the
    # context-switch cost of dispatching the frame).
    assert done == [2000 * US + calibration.CONTEXT_SWITCH_COST]
    assert kernel.ledger.cpu_copy_count() == 1
    assert kernel.ledger.cpu_bytes() == 2000


def test_copy_ledger_per_packet_summary():
    ledger = CopyLedger()
    for _ in range(10):
        ledger.record_cpu(Region.SYSTEM, Region.SYSTEM, 2000)
        ledger.record_cpu(Region.SYSTEM, Region.IO_CHANNEL, 2000)
        ledger.record_dma(Region.IO_CHANNEL, Region.ADAPTER, 2000)
    cpu_per, dma_per = ledger.copies_per_packet(10)
    assert cpu_per == 2.0
    assert dma_per == 1.0
    assert len(list(ledger.edges())) == 3


def test_zero_length_copy_is_free():
    ledger = CopyLedger()
    steps = list(cpu_copy(ledger, Region.SYSTEM, Region.SYSTEM, 0))
    assert steps == []
    assert ledger.cpu_copy_count() == 0


def test_negative_copy_rejected():
    ledger = CopyLedger()
    with pytest.raises(ValueError):
        list(cpu_copy(ledger, Region.SYSTEM, Region.SYSTEM, -1))


def test_device_registry():
    sim, machine, kernel = make_kernel()
    dev = object()
    kernel.register_device("vca0", dev)
    assert kernel.device("vca0") is dev
    with pytest.raises(ValueError):
        kernel.register_device("vca0", object())


def test_process_syscall_overhead_charged():
    sim, machine, kernel = make_kernel(noise=0)
    kernel.start()

    class NullDevice:
        def dev_read(self, proc, nbytes):
            yield Exec(0)
            return nbytes

    kernel.register_device("null", NullDevice())
    times = []

    def body(proc):
        got = yield from proc.read("null", 100)
        times.append((sim.now, got))

    proc = UserProcess(kernel, "reader")
    proc.start(body)
    sim.run(until=10 * MS)
    t, got = times[0]
    assert got == 100
    assert t >= calibration.SYSCALL_OVERHEAD + calibration.CONTEXT_SWITCH_COST
    assert proc.stats_syscalls == 1


def test_multiprogramming_default_noise_is_higher():
    _, _, quiet = make_kernel(multiprogramming=False)
    _, _, busy = make_kernel(multiprogramming=True)
    assert busy.noise_rate_per_sec > quiet.noise_rate_per_sec
