"""Tests for the mbuf pool, including the paper's exhaustion behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.unix.mbuf import (
    CLUSTER_DATA_BYTES,
    MBUF_DATA_BYTES,
    Mbuf,
    MbufChain,
    MbufExhausted,
    MbufPool,
)


def test_alloc_and_free_round_trip():
    pool = MbufPool(Simulator(), small_count=2, cluster_count=1)
    m = pool.try_alloc()
    assert pool.small_in_use == 1
    m.free()
    assert pool.small_in_use == 0


def test_exhaustion_raises_for_nowait():
    pool = MbufPool(Simulator(), small_count=1, cluster_count=0)
    pool.try_alloc()
    with pytest.raises(MbufExhausted):
        pool.try_alloc()
    assert pool.stats_failures == 1


def test_double_free_is_an_error():
    pool = MbufPool(Simulator(), small_count=1, cluster_count=0)
    m = pool.try_alloc()
    m.free()
    with pytest.raises(RuntimeError):
        m.free()


def test_alloc_wait_parks_until_release():
    sim = Simulator()
    pool = MbufPool(sim, small_count=1, cluster_count=0)
    first = pool.try_alloc()
    ev = pool.alloc_wait()
    assert not ev.triggered
    assert pool.stats_waits == 1
    first.free()
    assert ev.triggered
    assert isinstance(ev.value, Mbuf)
    # The buffer went straight to the waiter, never back to the free list.
    assert pool.small_in_use == 1


def test_alloc_wait_succeeds_immediately_when_available():
    pool = MbufPool(Simulator(), small_count=1, cluster_count=0)
    ev = pool.alloc_wait()
    assert ev.triggered


def test_waiters_are_type_matched():
    sim = Simulator()
    pool = MbufPool(sim, small_count=1, cluster_count=1)
    small = pool.try_alloc()
    cluster = pool.try_alloc(is_cluster=True)
    cluster_waiter = pool.alloc_wait(is_cluster=True)
    small.free()  # frees a small buffer; cluster waiter must stay parked
    assert not cluster_waiter.triggered
    cluster.free()
    assert cluster_waiter.triggered


def test_chain_for_2000_bytes_uses_two_clusters_and_a_tail():
    pool = MbufPool(Simulator())
    chain = pool.try_alloc_chain(2000)
    assert chain.length == 2000
    kinds = [m.is_cluster for m in chain.mbufs]
    assert kinds == [True, True]  # 1024 + 976 fits in two clusters
    chain.free()
    assert pool.small_in_use == 0 and pool.cluster_in_use == 0


def test_chain_small_payload_uses_single_mbuf():
    pool = MbufPool(Simulator())
    chain = pool.try_alloc_chain(60)
    assert [m.is_cluster for m in chain.mbufs] == [False]
    chain.free()


def test_chain_allocation_is_all_or_nothing():
    pool = MbufPool(Simulator(), small_count=4, cluster_count=1)
    with pytest.raises(MbufExhausted):
        pool.try_alloc_chain(4096)  # needs 4 clusters
    assert pool.cluster_in_use == 0  # rolled back


def test_chain_append_beyond_capacity_rejected():
    pool = MbufPool(Simulator())
    chain = pool.try_alloc_chain(100)
    with pytest.raises(ValueError):
        chain.append_data(CLUSTER_DATA_BYTES * 10)
    chain.free()


def test_peak_accounting():
    pool = MbufPool(Simulator())
    chains = [pool.try_alloc_chain(2000) for _ in range(3)]
    for c in chains:
        c.free()
    assert pool.cluster_in_use == 0
    assert pool.peak_cluster_in_use == 6
    assert pool.peak_bytes_in_use() == 6 * CLUSTER_DATA_BYTES


@given(st.integers(min_value=1, max_value=20_000))
def test_chain_capacity_invariant(nbytes):
    pool = MbufPool(Simulator(), small_count=512, cluster_count=512)
    chain = pool.try_alloc_chain(nbytes)
    assert chain.length == nbytes
    capacity = sum(m.capacity for m in chain.mbufs)
    assert capacity >= nbytes
    # Never wastes a whole extra cluster.
    assert capacity - nbytes < CLUSTER_DATA_BYTES
    chain.free()
    assert pool.bytes_in_use() == 0


@given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=30))
def test_pool_conservation_under_alloc_free_sequences(sizes):
    pool = MbufPool(Simulator(), small_count=1024, cluster_count=1024)
    chains = []
    for n in sizes:
        chains.append(pool.try_alloc_chain(n))
    in_use = pool.small_in_use + pool.cluster_in_use
    assert in_use == sum(len(c.mbufs) for c in chains)
    for c in chains:
        c.free()
    assert pool.small_in_use == 0
    assert pool.cluster_in_use == 0


def test_buffers_needed_matches_actual_allocation():
    pool = MbufPool(Simulator(), small_count=64, cluster_count=64)
    for n in (1, 112, 113, 1024, 1025, 2000, 2048, 5000):
        chain = pool.try_alloc_chain(n)
        assert len(chain.mbufs) == MbufPool.buffers_needed(n), n
        chain.free()
