"""Tests for the stream invariant monitor."""

from repro.core.presentation import PresentationMachine
from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.faults import FaultInjector, FaultPlan, StreamInvariantMonitor
from repro.faults.invariants import (
    INTER_ARRIVAL,
    LOSS_FRACTION,
    THROUGHPUT,
)
from repro.sim.units import MS, SEC


def monitored_bed(seed=17, **monitor_kwargs):
    bed = _Testbed(seed=seed)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    monitor = StreamInvariantMonitor(bed, session, **monitor_kwargs).start()
    return bed, session, monitor


def test_healthy_stream_holds_every_invariant():
    bed, _session, monitor = monitored_bed(
        min_throughput_bytes_per_sec=150_000.0
    )
    bed.run(3 * SEC)
    assert monitor.finish() == []
    assert monitor.ok()


def test_sustained_outage_trips_inter_arrival_while_stalled():
    bed, _session, monitor = monitored_bed()
    FaultInjector(
        bed,
        FaultPlan().frame_loss(1 * SEC, duration_ns=400 * MS, protocol="ctmsp"),
    ).arm()
    bed.run(3 * SEC)
    monitor.finish()
    assert INTER_ARRIVAL in monitor.violated()
    [violation] = [v for v in monitor.violations if v.invariant == INTER_ARRIVAL]
    # Tripped *during* the stall (in-progress gap), not after recovery.
    assert violation.at_ns < 1 * SEC + 400 * MS + 50 * MS
    assert violation.snapshot["delivered"] > 0
    assert "gap" in violation.detail


def test_first_violation_is_recorded_once_per_invariant():
    bed, _session, monitor = monitored_bed()
    FaultInjector(
        bed,
        FaultPlan()
        .frame_loss(1 * SEC, duration_ns=400 * MS, protocol="ctmsp")
        .frame_loss(2 * SEC, duration_ns=400 * MS, protocol="ctmsp"),
    ).arm()
    bed.run(4 * SEC)
    monitor.finish()
    names = monitor.violated()
    assert len(names) == len(set(names))


def test_loss_grace_tolerates_the_papers_single_packets():
    bed, session, monitor = monitored_bed()
    # A brief outage eats a packet or three -- the loss level the paper
    # decided it could "safely ignore".
    FaultInjector(
        bed, FaultPlan().frame_loss(1 * SEC, duration_ns=30 * MS)
    ).arm()
    bed.run(4 * SEC)
    monitor.finish()
    assert 0 < session.sink_tracker.lost_packets <= monitor.loss_grace_packets
    assert LOSS_FRACTION not in monitor.violated()


def test_heavy_loss_trips_the_fraction():
    bed, session, monitor = monitored_bed()
    FaultInjector(
        bed,
        FaultPlan().frame_loss(1 * SEC, duration_ns=500 * MS, protocol="ctmsp"),
    ).arm()
    bed.run(3 * SEC)
    monitor.finish()
    assert session.sink_tracker.lost_packets > monitor.loss_grace_packets
    assert LOSS_FRACTION in monitor.violated()


def test_throughput_checked_at_finish():
    bed, _session, monitor = monitored_bed(
        min_throughput_bytes_per_sec=10_000_000.0  # unreachable
    )
    bed.run(2 * SEC)
    violations = monitor.finish()
    assert THROUGHPUT in [v.invariant for v in violations]


def test_playout_underrun_invariant_watches_the_presentation():
    bed = _Testbed(seed=17)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    player = PresentationMachine(
        bed.sim,
        rate_bytes_per_sec=2000 / 0.012,
        prefill_bytes=6000,
        capacity_bytes=40000,
    )
    player.attach_to_vca(rx.vca_driver)
    monitor = StreamInvariantMonitor(bed, session, presentation=player).start()
    FaultInjector(
        bed,
        FaultPlan().frame_loss(1 * SEC, duration_ns=500 * MS, protocol="ctmsp"),
    ).arm()
    bed.run(3 * SEC)
    monitor.finish()
    assert "playout_underrun" in monitor.violated()
    [violation] = [
        v for v in monitor.violations if v.invariant == "playout_underrun"
    ]
    assert violation.snapshot["playout_glitches"] >= 1
