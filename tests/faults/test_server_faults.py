"""Tests for the media-server fault kinds: crash and stall."""

import pytest

from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import FaultEvent
from repro.sim.units import MS, SEC


def streaming_bed(seed=11):
    bed = _Testbed(seed=seed)
    tx = bed.add_host(HostConfig(name="server"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    return bed, tx, rx, session


def test_server_crash_stops_delivery_permanently():
    bed, tx, _rx, session = streaming_bed()
    FaultInjector(bed, FaultPlan().server_crash(1 * SEC, host="server")).arm()
    bed.run(4 * SEC)
    assert tx.crashed
    # Every arrival predates the crash; the sink never hears from the
    # server again.
    assert session.stats.last_arrival < 1 * SEC + 50 * MS
    delivered_at_crash = session.sink_tracker.delivered
    bed.run(SEC)
    assert session.sink_tracker.delivered == delivered_at_crash


def test_server_stall_pauses_then_resumes():
    bed, tx, _rx, session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().server_stall(1 * SEC, duration_ns=500 * MS, host="server"),
    ).arm()
    bed.run(3 * SEC)
    assert not getattr(tx, "crashed", False)
    # The stream went silent for the stall window but came back: arrivals
    # exist on both sides of it, and nothing was lost (the source paused,
    # it did not drop).
    arrivals = session.stats.arrival_times
    assert any(t < 1 * SEC for t in arrivals)
    assert any(t > 2 * SEC for t in arrivals)
    assert not any(1100 * MS < t < 1500 * MS for t in arrivals)
    assert session.sink_tracker.lost_packets == 0


def test_stall_resumes_on_a_rebased_grid_without_a_burst():
    bed, _tx, _rx, session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().server_stall(1 * SEC, duration_ns=500 * MS, host="server"),
    ).arm()
    bed.run(3 * SEC)
    arrivals = [t for t in session.stats.arrival_times if t > 1500 * MS]
    # No catch-up burst: post-resume inter-arrivals stay near the 12 ms
    # period rather than collapsing to back-to-back packets.
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert gaps and min(gaps) > 6 * MS


def test_crash_during_stall_wins():
    bed, tx, _rx, session = streaming_bed()
    plan = FaultPlan()
    plan.server_stall(1 * SEC, duration_ns=SEC, host="server")
    plan.server_crash(1500 * MS, host="server")
    FaultInjector(bed, plan).arm()
    bed.run(4 * SEC)
    assert tx.crashed
    # The stall's scheduled resume must not restart a dead server.
    assert session.stats.last_arrival < 1 * SEC + 50 * MS


def test_server_kinds_require_a_host():
    for kind in ("server_crash", "server_stall"):
        event = FaultEvent(at_ns=0, kind=kind, params={"duration_ns": SEC})
        with pytest.raises(ValueError, match="host"):
            event.validate()


def test_unknown_host_is_ignored_not_fatal():
    bed, _tx, _rx, session = streaming_bed()
    FaultInjector(
        bed, FaultPlan().server_crash(1 * SEC, host="no-such-host")
    ).arm()
    bed.run(2 * SEC)
    assert session.sink_tracker.lost_packets == 0
    assert session.stats.last_arrival > 1 * SEC
